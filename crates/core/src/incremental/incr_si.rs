//! Incremental scale independence (Section 5).
//!
//! A query `Q` is incrementally scale-independent in `D` w.r.t. `(M, k)` when
//! for every update `∆D` with `|∆D| ≤ k` the maintenance queries can be
//! answered by accessing at most `M` tuples of `D`.  This module provides
//!
//! * [`IncrementalBoundedEvaluator`] — the constructive side: it maintains
//!   `Q(a̅, D)` under updates by running *bounded* plans for the maintenance
//!   work, touching `O(|∆D|)` base tuples per update (Example 1.1(b): three
//!   fetches per inserted `visit` tuple);
//! * [`maintenance_is_bounded`] — the Corollary 5.3 / Proposition 5.5 check:
//!   are the maintenance queries controlled (bounded-plannable) under the
//!   access schema once the updated relation's tuple is given?
//! * [`decide_delta_qsi_for_update`] / [`decide_delta_qsi`] — exact (and
//!   therefore exponential) decision procedures for ∆QSI on small instances,
//!   used by the complexity experiments.

use crate::bounded::{execute_bounded, BoundedPlan, BoundedPlanner};
use crate::error::CoreError;
use crate::qdsi::SearchLimits;
use crate::si::AnyQuery;
use si_access::{AccessError, AccessIndexedDatabase, AccessSource};
use si_data::{Database, Delta, MeterSnapshot, Tuple, Value};
use si_query::binding::{Binding, VarId, VarTable};
use si_query::{Atom, ConjunctiveQuery, Term, Var};
use std::collections::{BTreeSet, HashMap};

/// Per-atom cache of maintenance sub-queries (the query minus one atom),
/// shared by the tuples of one update.
type RestCache = HashMap<usize, ConjunctiveQuery>;
/// Per-atom cache of (given variables, plan, output slot ids) for the
/// maintenance sub-queries — the planner search runs once per atom, not
/// once per delta tuple.
type RestPlanCache = HashMap<usize, (Vec<Var>, BoundedPlan, Vec<VarId>)>;

/// Is the insertion/deletion maintenance work for `query` bounded under
/// `access` when updates target `relation` and the parameters `params` are
/// fixed?
///
/// For every occurrence of `relation` in the query body this checks that the
/// *rest* of the query is bounded-plannable once that occurrence's variables
/// are treated as given (they come from the update tuple itself).  This is
/// the Corollary 5.3 condition specialised to CQ maintenance queries, and
/// part (1) of Proposition 5.5.
pub fn maintenance_is_bounded(
    query: &ConjunctiveQuery,
    schema: &si_data::DatabaseSchema,
    access: &si_access::AccessSchema,
    relation: &str,
    params: &[Var],
) -> Result<bool, CoreError> {
    let planner = BoundedPlanner::new(schema, access);
    for (i, atom) in query.atoms.iter().enumerate() {
        if atom.relation != relation {
            continue;
        }
        let mut rest = query.clone();
        rest.atoms.remove(i);
        restrict_head(&mut rest);
        let mut given: Vec<Var> = params.to_vec();
        for v in atom.variables() {
            if !given.contains(&v) {
                given.push(v);
            }
        }
        if rest.atoms.is_empty() {
            continue;
        }
        if planner.plan(&rest, &given).is_err() {
            return Ok(false);
        }
    }
    // Every occurrence checked out (a query that never mentions the updated
    // relation is trivially maintainable: the update cannot change it).
    Ok(true)
}

/// Maintains `Q(a̅, D)` under updates using bounded plans for the
/// maintenance work.
#[derive(Debug)]
pub struct IncrementalBoundedEvaluator {
    query: ConjunctiveQuery,
    parameters: Vec<Var>,
    parameter_values: Vec<Value>,
    answers: BTreeSet<Tuple>,
    /// Access cost of the initial (offline) computation.
    initial_cost: MeterSnapshot,
    /// The query's variables, numbered once at construction time.
    vars: VarTable,
    /// Slot ids of `parameters`, aligned with `parameter_values`.
    param_ids: Vec<VarId>,
    /// Slot ids of the output (head minus parameter) variables.
    output_ids: Vec<VarId>,
}

impl IncrementalBoundedEvaluator {
    /// Computes the initial answer `Q(a̅, D)` with a bounded plan over any
    /// [`AccessSource`], falling back to naive evaluation if the full query
    /// is not plannable — the paper's setting where `Q(D)` is computed "once
    /// and offline".  The fallback needs the source to expose its full
    /// instance ([`AccessSource::full_instance`]); sources that cannot (e.g.
    /// a pinned [`si_access::SnapshotAccess`] version) propagate the planner
    /// error instead.
    pub fn new<S: AccessSource>(
        query: ConjunctiveQuery,
        parameters: Vec<Var>,
        parameter_values: Vec<Value>,
        source: &S,
    ) -> Result<Self, CoreError> {
        let planner = BoundedPlanner::new(source.db_schema(), source.access_schema());
        let before = source.meter_snapshot();
        let answers: BTreeSet<Tuple> = match planner.plan(&query, &parameters) {
            Ok(plan) => execute_bounded(&plan, &parameter_values, source)?
                .answers
                .into_iter()
                .collect(),
            Err(plan_err) => {
                // Offline precomputation: naive evaluation over the base data.
                let Some(db) = source.full_instance() else {
                    return Err(plan_err);
                };
                let bindings: Vec<(Var, Value)> = parameters
                    .iter()
                    .cloned()
                    .zip(parameter_values.iter().cloned())
                    .collect();
                si_query::evaluate_cq(&query.bind(&bindings), db, None)?
                    .into_iter()
                    .collect()
            }
        };
        let initial_cost = source.meter_snapshot().since(&before);
        Ok(Self::from_materialized(
            query,
            parameters,
            parameter_values,
            answers,
            initial_cost,
        ))
    }

    /// Wraps answers that have *already* been computed (e.g. by a serving
    /// engine's bounded execution) into a maintenance-ready evaluator without
    /// touching any data.  The caller asserts that `answers` equals
    /// `Q(a̅, D)` for the instance version the next
    /// [`IncrementalBoundedEvaluator::maintain_across`] call will pass as
    /// `old`.
    pub fn from_materialized(
        query: ConjunctiveQuery,
        parameters: Vec<Var>,
        parameter_values: Vec<Value>,
        answers: impl IntoIterator<Item = Tuple>,
        initial_cost: MeterSnapshot,
    ) -> Self {
        // Number the variables once: parameters first, then body variables.
        let mut vars = VarTable::new();
        for p in &parameters {
            vars.intern(p);
        }
        for v in query.body_variables() {
            vars.intern(&v);
        }
        let param_ids: Vec<VarId> = parameters
            .iter()
            .map(|p| vars.id_of(p).expect("parameter interned above"))
            .collect();
        let output_ids: Vec<VarId> = query
            .head
            .iter()
            .filter(|v| !parameters.contains(v))
            .map(|v| vars.intern(v))
            .collect();
        IncrementalBoundedEvaluator {
            query,
            parameters,
            parameter_values,
            answers: answers.into_iter().collect(),
            initial_cost,
            vars,
            param_ids,
            output_ids,
        }
    }

    /// The currently materialised answers.
    pub fn answers(&self) -> Vec<Tuple> {
        self.answers.iter().cloned().collect()
    }

    /// The maintained query.
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    /// The parameter variables fixed at construction time.
    pub fn parameters(&self) -> &[Var] {
        &self.parameters
    }

    /// Access cost of the initial computation.
    pub fn initial_cost(&self) -> MeterSnapshot {
        self.initial_cost
    }

    /// Applies an update: the database inside `adb` must *not* yet contain
    /// the update — this method applies it and maintains the answers, and
    /// returns the base-data access cost of the maintenance work alone.
    pub fn apply_update(
        &mut self,
        adb: &mut AccessIndexedDatabase,
        update: &Delta,
    ) -> Result<MeterSnapshot, CoreError> {
        update.validate(adb.database())?;
        let before = adb.meter_snapshot();

        // Deletion candidates are discovered against the pre-update instance…
        let candidates = self.deletion_candidates(adb, update)?;

        // …the update lands…
        update.apply_in_place(adb.database_mut())?;

        // …and the re-check plus the insertion work run against the updated
        // instance.
        self.recheck_candidates(adb, candidates)?;
        self.insert_phase(adb, update)?;

        Ok(adb.meter_snapshot().since(&before))
    }

    /// Maintains the answers across an update applied *between two instance
    /// versions*: `old` is the version the current answers were computed
    /// against, `new` is `old ⊕ update` (e.g. two pinned
    /// [`si_access::SnapshotAccess`] versions around a snapshot-store
    /// commit).  Neither source is mutated; the returned cost sums both
    /// sources' accesses, which is the maintenance work alone.
    ///
    /// On error the evaluator's answer set may have been partially
    /// maintained and must be discarded (recompute or
    /// [`IncrementalBoundedEvaluator::from_materialized`] from fresh
    /// answers); callers like `si-engine` treat any error as a fallback to
    /// re-execution.
    pub fn maintain_across<Old, New>(
        &mut self,
        old: &Old,
        new: &New,
        update: &Delta,
    ) -> Result<MeterSnapshot, CoreError>
    where
        Old: AccessSource,
        New: AccessSource,
    {
        // Well-formedness against the *old* version (∇D ⊆ D, ∆D ∩ D = ∅),
        // resolved through the source's relation lookup.
        update.validate_relations(|name| {
            old.source_relation(name).map_err(|e| match e {
                AccessError::Data(data) => data,
                other => si_data::DataError::InvalidUpdate(other.to_string()),
            })
        })?;
        self.maintain_across_unchecked(old, new, update)
    }

    /// [`IncrementalBoundedEvaluator::maintain_across`] without the
    /// well-formedness validation of `update` — for callers that have
    /// already validated it against the `old` version (a snapshot-store
    /// commit does exactly that), so maintaining many materialized answers
    /// across one commit does not re-validate the same delta per answer.
    pub fn maintain_across_unchecked<Old, New>(
        &mut self,
        old: &Old,
        new: &New,
        update: &Delta,
    ) -> Result<MeterSnapshot, CoreError>
    where
        Old: AccessSource,
        New: AccessSource,
    {
        let before_old = old.meter_snapshot();
        let before_new = new.meter_snapshot();
        let candidates = self.deletion_candidates(old, update)?;
        self.recheck_candidates(new, candidates)?;
        self.insert_phase(new, update)?;
        Ok(old
            .meter_snapshot()
            .since(&before_old)
            .plus(&new.meter_snapshot().since(&before_new)))
    }

    /// Deletion phase 1 (against the pre-update instance): every deleted
    /// tuple seeds its atom occurrences, and bounded evaluation of the rest
    /// of the query collects the answers that *may* lose a derivation.
    fn deletion_candidates<S: AccessSource>(
        &self,
        source: &S,
        update: &Delta,
    ) -> Result<BTreeSet<Tuple>, CoreError> {
        let planner = BoundedPlanner::new(source.db_schema(), source.access_schema());
        let mut candidates: BTreeSet<Tuple> = BTreeSet::new();
        // The rest-query and its plan depend on the atom occurrence and the
        // unified variable set (fixed per atom), not on the concrete tuple:
        // computed once per atom, reused for every delta tuple.
        let mut rests: RestCache = HashMap::new();
        let mut plans: RestPlanCache = HashMap::new();
        for (relation, rd) in update.iter() {
            for tuple in &rd.deletions {
                for (i, atom) in self.query.atoms.iter().enumerate() {
                    if &atom.relation != relation {
                        continue;
                    }
                    let Some(bindings) = self.unify_atom(atom, tuple, self.seed_binding()) else {
                        continue;
                    };
                    let rest = self.rest_without_atom(&mut rests, i);
                    let affected: Vec<Tuple> = if rest.atoms.is_empty() {
                        // The whole query is the single atom: its answers are
                        // the projections of the bindings.
                        self.project_answer(&bindings).into_iter().collect()
                    } else {
                        let (given, values) = self.split_bindings(&bindings);
                        let (plan, output_ids) =
                            self.rest_plan(&planner, &mut plans, rest, i, given)?;
                        let result = execute_bounded(plan, &values, source)?;
                        // Rebuild full answers from the rest's outputs plus
                        // the bindings from the deleted tuple.
                        result
                            .answers
                            .iter()
                            .filter_map(|t| {
                                let mut extended = bindings.clone();
                                for (&id, val) in output_ids.iter().zip(t.iter()) {
                                    extended.set(id, *val);
                                }
                                self.project_answer(&extended)
                            })
                            .collect()
                    };
                    candidates.extend(affected);
                }
            }
        }
        Ok(candidates)
    }

    /// Deletion phase 2 (against the updated instance): a candidate answer
    /// survives iff it is still derivable.  This needs the query to be
    /// plannable with all head variables given (Proposition 5.5(2)).
    fn recheck_candidates<S: AccessSource>(
        &mut self,
        source: &S,
        candidates: BTreeSet<Tuple>,
    ) -> Result<(), CoreError> {
        if candidates.is_empty() {
            return Ok(());
        }
        let planner = BoundedPlanner::new(source.db_schema(), source.access_schema());
        // The plan depends only on *which* variables are given — parameters
        // plus every output variable — so it is computed once; candidates
        // differ only in the values.
        let mut given = self.parameters.clone();
        given.extend(self.output_variables());
        let plan = planner.plan(&self.query, &given)?;
        for candidate in candidates {
            let mut values = self.parameter_values.clone();
            values.extend(candidate.iter().copied());
            // With every head variable given, the plan's output is the empty
            // tuple: non-empty answers mean the candidate is still derivable.
            let still_there = !execute_bounded(&plan, &values, source)?.answers.is_empty();
            if !still_there {
                self.answers.remove(&candidate);
            }
        }
        Ok(())
    }

    /// Insertion phase (against the updated instance): each inserted tuple
    /// seeds the corresponding atom and the rest of the query is evaluated
    /// boundedly.
    fn insert_phase<S: AccessSource>(
        &mut self,
        source: &S,
        update: &Delta,
    ) -> Result<(), CoreError> {
        let planner = BoundedPlanner::new(source.db_schema(), source.access_schema());
        let mut rests: RestCache = HashMap::new();
        let mut plans: RestPlanCache = HashMap::new();
        let mut new_answers: Vec<Tuple> = Vec::new();
        for (relation, rd) in update.iter() {
            for tuple in &rd.insertions {
                for (i, atom) in self.query.atoms.iter().enumerate() {
                    if &atom.relation != relation {
                        continue;
                    }
                    let Some(bindings) = self.unify_atom(atom, tuple, self.seed_binding()) else {
                        continue;
                    };
                    let rest = self.rest_without_atom(&mut rests, i);
                    if rest.atoms.is_empty() {
                        new_answers.extend(self.project_answer(&bindings));
                        continue;
                    }
                    let (given, values) = self.split_bindings(&bindings);
                    let (plan, output_ids) =
                        self.rest_plan(&planner, &mut plans, rest, i, given)?;
                    let result = execute_bounded(plan, &values, source)?;
                    for t in &result.answers {
                        let mut extended = bindings.clone();
                        for (&id, val) in output_ids.iter().zip(t.iter()) {
                            extended.set(id, *val);
                        }
                        if self.satisfies_equalities(&extended) {
                            new_answers.extend(self.project_answer(&extended));
                        }
                    }
                }
            }
        }
        self.answers.extend(new_answers);
        Ok(())
    }

    /// The maintenance sub-query with atom `i` removed, cached per atom.
    fn rest_without_atom<'c>(&self, cache: &'c mut RestCache, i: usize) -> &'c ConjunctiveQuery {
        cache.entry(i).or_insert_with(|| {
            let mut rest = self.query.clone();
            rest.atoms.remove(i);
            restrict_head(&mut rest);
            rest
        })
    }

    /// The bounded plan (and output slot ids) for `rest` under `given`,
    /// cached per atom: the unified variable set of an atom is the same for
    /// every tuple, so later tuples reuse the first tuple's planner search
    /// (a `given` mismatch — defensive, not currently reachable — re-plans).
    fn rest_plan<'c>(
        &self,
        planner: &BoundedPlanner<'_>,
        cache: &'c mut RestPlanCache,
        rest: &ConjunctiveQuery,
        i: usize,
        given: Vec<Var>,
    ) -> Result<(&'c BoundedPlan, &'c [VarId]), CoreError> {
        let reusable = matches!(cache.get(&i), Some((names, _, _)) if *names == given);
        if !reusable {
            let plan = planner.plan(rest, &given)?;
            let output_ids = self.ids_of_outputs(&plan.output_variables());
            cache.insert(i, (given, plan, output_ids));
        }
        let (_, plan, output_ids) = cache.get(&i).expect("cached above");
        Ok((plan, output_ids))
    }

    fn output_variables(&self) -> Vec<Var> {
        self.query
            .head
            .iter()
            .filter(|v| !self.parameters.contains(v))
            .cloned()
            .collect()
    }

    fn seed_binding(&self) -> Binding {
        let mut binding = Binding::for_table(&self.vars);
        for (&id, value) in self.param_ids.iter().zip(self.parameter_values.iter()) {
            binding.set(id, *value);
        }
        binding
    }

    /// Slot ids of the named plan outputs (always query variables).
    fn ids_of_outputs(&self, outputs: &[Var]) -> Vec<VarId> {
        outputs
            .iter()
            .map(|v| self.vars.id_of(v).expect("plan output is a query variable"))
            .collect()
    }

    /// Unifies an atom of the query with a concrete tuple under an existing
    /// partial binding; returns the extended binding or `None` on mismatch.
    fn unify_atom(&self, atom: &Atom, tuple: &Tuple, seed: Binding) -> Option<Binding> {
        if atom.terms.len() != tuple.arity() {
            return None;
        }
        let mut binding = seed;
        for (term, value) in atom.terms.iter().zip(tuple.iter()) {
            match term {
                Term::Const(c) => {
                    if c != value {
                        return None;
                    }
                }
                Term::Var(v) => {
                    let id = self.vars.id_of(v)?;
                    if !binding.bind(id, *value) {
                        return None;
                    }
                }
            }
        }
        Some(binding)
    }

    fn project_answer(&self, binding: &Binding) -> Option<Tuple> {
        binding.project(&self.output_ids)
    }

    fn satisfies_equalities(&self, binding: &Binding) -> bool {
        self.query.equalities.iter().all(|(l, r)| {
            let value_of = |t: &Term| match t {
                Term::Var(v) => self.vars.id_of(v).and_then(|id| binding.get(id)),
                Term::Const(c) => Some(*c),
            };
            match (value_of(l), value_of(r)) {
                (Some(a), Some(b)) => a == b,
                _ => true,
            }
        })
    }

    /// Resolves the bound slots back to `(name, value)` lists for the planner
    /// API, which works on variable names.
    fn split_bindings(&self, binding: &Binding) -> (Vec<Var>, Vec<Value>) {
        let mut names = Vec::with_capacity(binding.bound_count());
        let mut values = Vec::with_capacity(binding.bound_count());
        for (name, value) in binding.to_named(&self.vars) {
            names.push(name);
            values.push(value);
        }
        (names, values)
    }
}

/// Drops head variables that no longer occur in the query body (used when an
/// atom is removed to form a maintenance sub-query).
fn restrict_head(query: &mut ConjunctiveQuery) {
    let body: BTreeSet<Var> = query.body_variables().into_iter().collect();
    query.head.retain(|v| body.contains(v));
}

/// Checks whether a *specific* update admits a witness of size ≤ `m`:
/// is there `D_Q ⊆ D` with `|D_Q| ≤ M` such that the change of `Q` computed
/// over `D_Q` (plus the update) equals the true change?
pub fn decide_delta_qsi_for_update(
    query: &AnyQuery,
    db: &Database,
    update: &Delta,
    m: usize,
    limits: &SearchLimits,
) -> Result<bool, CoreError> {
    update.validate(db)?;
    let old = query.answer_set(db)?;
    let updated = update.apply(db)?;
    let new = query.answer_set(&updated)?;
    let true_added: BTreeSet<Tuple> = new.difference(&old).cloned().collect();
    let true_removed: BTreeSet<Tuple> = old.difference(&new).cloned().collect();

    let facts = db.all_facts();
    let n = facts.len();
    let mut subsets: u64 = 0;
    let mut acc: u64 = 1;
    for k in 0..=m.min(n) {
        if k > 0 {
            acc = acc.saturating_mul((n - k + 1) as u64) / k as u64;
        }
        subsets = subsets.saturating_add(acc);
        if subsets > limits.max_subsets {
            return Err(CoreError::SearchSpaceTooLarge(format!(
                "∆QSI witness search over {n} facts with M = {m} exceeds {} subsets",
                limits.max_subsets
            )));
        }
    }

    let mut chosen: Vec<(String, Tuple)> = Vec::new();
    search_delta_witness(
        query,
        db,
        update,
        &old,
        &true_added,
        &true_removed,
        &facts,
        0,
        m,
        &mut chosen,
    )
}

#[allow(clippy::too_many_arguments)]
fn search_delta_witness(
    query: &AnyQuery,
    db: &Database,
    update: &Delta,
    old: &BTreeSet<Tuple>,
    true_added: &BTreeSet<Tuple>,
    true_removed: &BTreeSet<Tuple>,
    facts: &[(String, Tuple)],
    start: usize,
    remaining: usize,
    chosen: &mut Vec<(String, Tuple)>,
) -> Result<bool, CoreError> {
    // Evaluate the change over the candidate sub-instance.
    let sub = db.sub_database(chosen)?;
    // The update may delete tuples that the sub-instance does not contain;
    // restrict the update accordingly.
    let mut restricted = Delta::new();
    for (rel, d) in update.iter() {
        for t in &d.insertions {
            restricted.insert(rel.clone(), t.clone());
        }
        for t in &d.deletions {
            if sub.contains(rel, t)? {
                restricted.delete(rel.clone(), t.clone());
            }
        }
    }
    let sub_updated = restricted.apply(&sub)?;
    let before = query.answer_set(&sub)?;
    let after = query.answer_set(&sub_updated)?;
    let added: BTreeSet<Tuple> = after.difference(&before).cloned().collect();
    let removed: BTreeSet<Tuple> = before.difference(&after).cloned().collect();
    // The change computed on the sub-instance must reproduce the true new
    // answer when applied to the materialised old answer.
    let reconstructed: BTreeSet<Tuple> = old
        .iter()
        .filter(|t| !removed.contains(*t))
        .cloned()
        .chain(added.iter().cloned())
        .collect();
    let truth: BTreeSet<Tuple> = old
        .iter()
        .filter(|t| !true_removed.contains(*t))
        .cloned()
        .chain(true_added.iter().cloned())
        .collect();
    if reconstructed == truth {
        return Ok(true);
    }
    if remaining == 0 {
        return Ok(false);
    }
    for i in start..facts.len() {
        chosen.push(facts[i].clone());
        let ok = search_delta_witness(
            query,
            db,
            update,
            old,
            true_added,
            true_removed,
            facts,
            i + 1,
            remaining - 1,
            chosen,
        )?;
        chosen.pop();
        if ok {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Exact ∆QSI over all insertion-only updates of size ≤ `k` whose tuples are
/// drawn from `candidate_insertions`.  Exponential; meant for the small
/// instances of the complexity experiments.
pub fn decide_delta_qsi(
    query: &AnyQuery,
    db: &Database,
    candidate_insertions: &[(String, Tuple)],
    m: usize,
    k: usize,
    limits: &SearchLimits,
) -> Result<bool, CoreError> {
    let mut chosen: Vec<(String, Tuple)> = Vec::new();
    enumerate_updates(
        query,
        db,
        candidate_insertions,
        m,
        k,
        0,
        &mut chosen,
        limits,
    )
}

#[allow(clippy::too_many_arguments)]
fn enumerate_updates(
    query: &AnyQuery,
    db: &Database,
    pool: &[(String, Tuple)],
    m: usize,
    k: usize,
    start: usize,
    chosen: &mut Vec<(String, Tuple)>,
    limits: &SearchLimits,
) -> Result<bool, CoreError> {
    if !chosen.is_empty() {
        let mut update = Delta::new();
        for (rel, t) in chosen.iter() {
            update.insert(rel.clone(), t.clone());
        }
        if update.validate(db).is_ok()
            && !decide_delta_qsi_for_update(query, db, &update, m, limits)?
        {
            return Ok(false);
        }
    }
    if k == 0 {
        return Ok(true);
    }
    for i in start..pool.len() {
        chosen.push(pool[i].clone());
        let ok = enumerate_updates(query, db, pool, m, k - 1, i + 1, chosen, limits)?;
        chosen.pop();
        if !ok {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_access::{facebook_access_schema, AccessConstraint};
    use si_data::schema::social_schema;
    use si_data::tuple;
    use si_query::parse_cq;

    fn q2() -> ConjunctiveQuery {
        parse_cq(
            r#"Q2(p, rn) :- friend(p, id), visit(id, rid), person(id, pn, "NYC"), restr(rid, rn, "NYC", "A")"#,
        )
        .unwrap()
    }

    fn social_db() -> Database {
        let mut db = Database::empty(social_schema());
        db.insert_all(
            "person",
            vec![
                tuple![1, "ann", "NYC"],
                tuple![2, "bob", "NYC"],
                tuple![3, "cat", "LA"],
                tuple![4, "dan", "NYC"],
            ],
        )
        .unwrap();
        db.insert_all("friend", vec![tuple![1, 2], tuple![1, 3], tuple![1, 4]])
            .unwrap();
        db.insert_all(
            "restr",
            vec![
                tuple![10, "sushi", "NYC", "A"],
                tuple![11, "taco", "NYC", "B"],
                tuple![12, "ramen", "NYC", "A"],
            ],
        )
        .unwrap();
        db.insert_all("visit", vec![tuple![2, 10]]).unwrap();
        db
    }

    #[test]
    fn maintenance_boundedness_mirrors_example_11b() {
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        // Insertions into visit: the rest of Q2 (friend, person, restr) is
        // plannable once (id, rid) are given → bounded maintenance.
        assert!(maintenance_is_bounded(&q2(), &schema, &access, "visit", &["p".into()]).unwrap());
        // Insertions into friend: the rest contains visit with only id bound
        // and no constraint on visit → not bounded.
        assert!(!maintenance_is_bounded(&q2(), &schema, &access, "friend", &["p".into()]).unwrap());
        // Adding a visit-by-id constraint makes friend insertions bounded too.
        let better =
            facebook_access_schema(5000).with(AccessConstraint::new("visit", &["id"], 100, 1));
        assert!(maintenance_is_bounded(&q2(), &schema, &better, "friend", &["p".into()]).unwrap());
        // Updates to person behave like updates to friend: unbounded under
        // the plain schema, bounded once visit is indexed by id.
        assert!(!maintenance_is_bounded(&q2(), &schema, &access, "person", &["p".into()]).unwrap());
        assert!(maintenance_is_bounded(&q2(), &schema, &better, "person", &["p".into()]).unwrap());
        // A relation the query never mentions is trivially fine.
        let q_no_restr = parse_cq(r#"Q(p, id) :- friend(p, id), person(id, pn, "NYC")"#).unwrap();
        assert!(
            maintenance_is_bounded(&q_no_restr, &schema, &access, "restr", &["p".into()]).unwrap()
        );
    }

    #[test]
    fn incremental_evaluator_tracks_insertions_boundedly() {
        let access = facebook_access_schema(5000);
        let mut adb = AccessIndexedDatabase::new(social_db(), access).unwrap();
        let mut evaluator =
            IncrementalBoundedEvaluator::new(q2(), vec!["p".into()], vec![Value::int(1)], &adb)
                .unwrap();
        assert_eq!(evaluator.answers(), vec![tuple!["sushi"]]);

        // Friend 4 visits restaurant 12 (ramen, A) and 11 (taco, B);
        // friend 3 (LA) visits 10.
        let mut update = Delta::new();
        update.insert("visit", tuple![4, 12]);
        update.insert("visit", tuple![4, 11]);
        update.insert("visit", tuple![3, 10]);
        let cost = evaluator.apply_update(&mut adb, &update).unwrap();
        let mut answers = evaluator.answers();
        answers.sort();
        assert_eq!(answers, vec![tuple!["ramen"], tuple!["sushi"]]);
        // Bounded maintenance: roughly 3 probes of ≤ 1 tuple per insertion
        // (friend-edge check is via the id1 index), certainly no full scans
        // and far fewer fetches than |D|.
        assert_eq!(cost.full_scans, 0);
        assert!(cost.tuples_fetched <= 3 * update.size() as u64 + update.size() as u64);

        // The maintained result matches recomputation from scratch.
        let recomputed = si_query::evaluate_cq(
            &q2().bind(&[("p".into(), Value::int(1))]),
            adb.database(),
            None,
        )
        .unwrap();
        let mut recomputed = recomputed;
        recomputed.sort();
        assert_eq!(answers, recomputed);
    }

    #[test]
    fn incremental_evaluator_handles_deletions() {
        let access = facebook_access_schema(5000)
            .with(AccessConstraint::new("visit", &["id"], 100, 1))
            .with(AccessConstraint::new("visit", &["rid"], 100, 1));
        let mut adb = AccessIndexedDatabase::new(social_db(), access).unwrap();
        let mut evaluator =
            IncrementalBoundedEvaluator::new(q2(), vec!["p".into()], vec![Value::int(1)], &adb)
                .unwrap();
        assert_eq!(evaluator.answers(), vec![tuple!["sushi"]]);
        // Remove the only visit supporting "sushi".
        let update = Delta::deletions_from("visit", vec![tuple![2, 10]]);
        evaluator.apply_update(&mut adb, &update).unwrap();
        assert!(evaluator.answers().is_empty());
        // Re-insert and check it comes back.
        let update = Delta::insertions_into("visit", vec![tuple![2, 10]]);
        evaluator.apply_update(&mut adb, &update).unwrap();
        assert_eq!(evaluator.answers(), vec![tuple!["sushi"]]);
    }

    #[test]
    fn maintain_across_snapshot_versions_matches_recomputation() {
        use si_access::SnapshotAccess;
        use si_data::SnapshotStore;
        use std::sync::Arc;
        let access = facebook_access_schema(5000)
            .with(AccessConstraint::new("visit", &["id"], 100, 1))
            .with(AccessConstraint::new("visit", &["rid"], 100, 1));
        let mut db = social_db();
        for (relation, attrs) in access.required_indexes() {
            if !attrs.is_empty() {
                db.declare_index(&relation, &attrs).unwrap();
            }
        }
        let store = SnapshotStore::new(db);
        let access = Arc::new(access);
        let v0 = store.pin();
        let v0_view: SnapshotAccess = SnapshotAccess::new(v0.clone(), access.clone());
        let mut evaluator =
            IncrementalBoundedEvaluator::new(q2(), vec!["p".into()], vec![Value::int(1)], &v0_view)
                .unwrap();
        assert_eq!(evaluator.answers(), vec![tuple!["sushi"]]);
        assert_eq!(evaluator.parameters(), &["p".to_string()]);
        assert_eq!(evaluator.query().name, "Q2");

        // A second evaluator adopts the same answers without touching data.
        let mut adopted = IncrementalBoundedEvaluator::from_materialized(
            q2(),
            vec!["p".into()],
            vec![Value::int(1)],
            evaluator.answers(),
            MeterSnapshot::default(),
        );

        let mut update = Delta::new();
        update.insert("visit", tuple![4, 12]);
        update.delete("visit", tuple![2, 10]);
        let v1 = store.commit(&update).unwrap();
        let old_view: SnapshotAccess = SnapshotAccess::new(v0, access.clone());
        let new_view: SnapshotAccess = SnapshotAccess::new(v1.clone(), access.clone());
        let cost = evaluator
            .maintain_across(&old_view, &new_view, &update)
            .unwrap();
        adopted
            .maintain_across(&old_view, &new_view, &update)
            .unwrap();

        // Bounded maintenance: no scans, a constant handful of fetches per
        // delta tuple (the instance here is tiny, so compare against the
        // per-tuple constant rather than |D|).
        assert_eq!(cost.full_scans, 0);
        assert!(
            cost.tuples_fetched <= 8 * update.size() as u64,
            "maintenance fetched {} tuples",
            cost.tuples_fetched
        );
        // Both evaluators agree with full recomputation on the new version.
        let recomputed = si_query::evaluate_cq(
            &q2().bind(&[("p".into(), Value::int(1))]),
            &v1.to_database(),
            None,
        )
        .unwrap();
        assert_eq!(evaluator.answers(), recomputed);
        assert_eq!(adopted.answers(), evaluator.answers());
        assert_eq!(evaluator.answers(), vec![tuple!["ramen"]]);
    }

    #[test]
    fn snapshot_sources_cannot_fall_back_to_naive_evaluation() {
        use si_access::SnapshotAccess;
        use si_data::SnapshotStore;
        use std::sync::Arc;
        // Under the plain Facebook schema Q2 is not boundedly plannable (no
        // constraint on visit): the owned surface falls back to naive
        // evaluation, the snapshot surface must propagate the planner error.
        let access = facebook_access_schema(5000);
        let adb = AccessIndexedDatabase::new(social_db(), access.clone()).unwrap();
        assert!(IncrementalBoundedEvaluator::new(
            q2(),
            vec!["p".into()],
            vec![Value::int(1)],
            &adb
        )
        .is_ok());
        let store = SnapshotStore::new(social_db());
        let view: SnapshotAccess = SnapshotAccess::new(store.pin(), Arc::new(access));
        assert!(IncrementalBoundedEvaluator::new(
            q2(),
            vec!["p".into()],
            vec![Value::int(1)],
            &view
        )
        .is_err());
    }

    #[test]
    fn maintain_across_rejects_ill_formed_updates() {
        use si_access::SnapshotAccess;
        use si_data::SnapshotStore;
        use std::sync::Arc;
        let access =
            facebook_access_schema(5000).with(AccessConstraint::new("visit", &["id"], 100, 1));
        let store = SnapshotStore::new(social_db());
        let access = Arc::new(access);
        let view: SnapshotAccess = SnapshotAccess::new(store.pin(), access.clone());
        let mut evaluator =
            IncrementalBoundedEvaluator::new(q2(), vec!["p".into()], vec![Value::int(1)], &view)
                .unwrap();
        // Deleting a tuple the old version does not contain is rejected.
        let bogus = Delta::deletions_from("visit", vec![tuple![9, 9]]);
        assert!(matches!(
            evaluator.maintain_across(&view, &view, &bogus),
            Err(CoreError::Data(_))
        ));
    }

    #[test]
    fn delta_qsi_for_a_single_update_small_instance() {
        let db = {
            let mut db = Database::empty(social_schema());
            db.insert("person", tuple![2, "bob", "NYC"]).unwrap();
            db.insert("friend", tuple![1, 2]).unwrap();
            db.insert("restr", tuple![10, "sushi", "NYC", "A"]).unwrap();
            db
        };
        let q: AnyQuery = q2().bind(&[("p".into(), Value::int(1))]).into();
        let update = Delta::insertions_into("visit", vec![tuple![2, 10]]);
        // The change needs the friend, person and restr facts: 3 tuples.
        assert!(
            decide_delta_qsi_for_update(&q, &db, &update, 3, &SearchLimits::default()).unwrap()
        );
        assert!(
            !decide_delta_qsi_for_update(&q, &db, &update, 2, &SearchLimits::default()).unwrap()
        );
    }

    #[test]
    fn delta_qsi_over_all_small_updates() {
        let db = {
            let mut db = Database::empty(social_schema());
            db.insert("person", tuple![2, "bob", "NYC"]).unwrap();
            db.insert("friend", tuple![1, 2]).unwrap();
            db.insert("restr", tuple![10, "sushi", "NYC", "A"]).unwrap();
            db
        };
        let q: AnyQuery = q2().bind(&[("p".into(), Value::int(1))]).into();
        let pool = vec![
            ("visit".to_string(), tuple![2, 10]),
            ("visit".to_string(), tuple![9, 10]),
        ];
        assert!(decide_delta_qsi(&q, &db, &pool, 3, 1, &SearchLimits::default()).unwrap());
        assert!(!decide_delta_qsi(&q, &db, &pool, 2, 1, &SearchLimits::default()).unwrap());
        // k = 0 means no updates at all: trivially true.
        assert!(decide_delta_qsi(&q, &db, &pool, 0, 0, &SearchLimits::default()).unwrap());
    }

    #[test]
    fn search_guard_applies_to_delta_qsi() {
        let db = social_db();
        let q: AnyQuery = q2().bind(&[("p".into(), Value::int(1))]).into();
        let update = Delta::insertions_into("visit", vec![tuple![4, 12]]);
        let limits = SearchLimits {
            max_subsets: 2,
            max_branches: 2,
        };
        assert!(matches!(
            decide_delta_qsi_for_update(&q, &db, &update, 5, &limits),
            Err(CoreError::SearchSpaceTooLarge(_))
        ));
    }
}
