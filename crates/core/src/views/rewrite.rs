//! Conjunctive-query rewritings using views (Section 6).
//!
//! A rewriting `Q'` of `Q` using `V` is a query over the base schema extended
//! with the view relations such that `Q(D) = Q'(D, V(D))` for every `D`.
//! [`expand_rewriting`] unfolds the view atoms by their definitions, and
//! [`is_rewriting`] verifies a candidate by checking expansion-equivalence via
//! the homomorphism theorem.  [`find_rewriting`] performs a bounded search for
//! rewritings that replace sub-patterns of `Q` by view atoms, preferring
//! rewritings with as few base atoms as possible (those are the ones that can
//! be scale-independent with a small budget `M`).

use crate::bounded::CostBasedPlanner;
use crate::error::CoreError;
use crate::views::view::ViewSet;
use si_access::AccessSchema;
use si_data::stats::DatabaseStats;
use si_data::DatabaseSchema;
use si_query::hom::{apply_to_term, find_homomorphism, Homomorphism};
use si_query::{equivalent, Atom, ConjunctiveQuery, Term, Var};
use std::collections::BTreeSet;

/// Splits a rewriting into its base part `Q'_b` and view part `Q'_v`
/// (returning the atom lists).
pub fn split_rewriting<'a>(
    rewriting: &'a ConjunctiveQuery,
    views: &ViewSet,
) -> (Vec<&'a Atom>, Vec<&'a Atom>) {
    let mut base = Vec::new();
    let mut view = Vec::new();
    for atom in &rewriting.atoms {
        if views.is_view(&atom.relation) {
            view.push(atom);
        } else {
            base.push(atom);
        }
    }
    (base, view)
}

/// The size `‖Q'_b‖` of the base part of a rewriting.
pub fn base_part_size(rewriting: &ConjunctiveQuery, views: &ViewSet) -> usize {
    split_rewriting(rewriting, views).0.len()
}

/// Unfolds every view atom of `rewriting` by its definition, renaming the
/// view's existential variables apart, and returns the expansion `Q'_e`.
pub fn expand_rewriting(
    rewriting: &ConjunctiveQuery,
    views: &ViewSet,
) -> Result<ConjunctiveQuery, CoreError> {
    let mut atoms: Vec<Atom> = Vec::new();
    let mut equalities = rewriting.equalities.clone();
    let mut fresh = 0usize;
    for atom in &rewriting.atoms {
        match views.view(&atom.relation) {
            None => atoms.push(atom.clone()),
            Some(view) => {
                if view.query.head.len() != atom.terms.len() {
                    return Err(CoreError::Unsupported(format!(
                        "view atom {atom} does not match the arity of view `{}`",
                        view.name
                    )));
                }
                fresh += 1;
                // Head variable i of the view maps to the atom's i-th term;
                // every other variable gets a fresh name.
                let head_map: Vec<(&String, &Term)> =
                    view.query.head.iter().zip(atom.terms.iter()).collect();
                let rename = |t: &Term| -> Term {
                    match t {
                        Term::Const(_) => t.clone(),
                        Term::Var(v) => {
                            if let Some((_, target)) =
                                head_map.iter().find(|(hv, _)| hv.as_str() == v)
                            {
                                (*target).clone()
                            } else {
                                Term::Var(format!("{v}%{fresh}"))
                            }
                        }
                    }
                };
                for body_atom in &view.query.atoms {
                    atoms.push(Atom {
                        relation: body_atom.relation.clone(),
                        terms: body_atom.terms.iter().map(rename).collect(),
                    });
                }
                for (l, r) in &view.query.equalities {
                    equalities.push((rename(l), rename(r)));
                }
            }
        }
    }
    Ok(ConjunctiveQuery {
        name: format!("{}#expanded", rewriting.name),
        head: rewriting.head.clone(),
        atoms,
        equalities,
    })
}

/// Is `candidate` a rewriting of `query` using `views`, i.e. is its expansion
/// equivalent to `query`?
pub fn is_rewriting(
    query: &ConjunctiveQuery,
    views: &ViewSet,
    candidate: &ConjunctiveQuery,
) -> Result<bool, CoreError> {
    let expansion = expand_rewriting(candidate, views)?;
    Ok(equivalent(&expansion, query))
}

/// Searches for rewritings of `query` using `views`, returning all verified
/// rewritings found, ordered by the size of their base part (fewest base
/// atoms first).  The search replaces, for each view and each homomorphism
/// from the view's body into the query's body, the covered atoms by a single
/// view atom; combinations of views are explored greedily up to
/// `max_candidates` candidates.
pub fn find_rewritings(
    query: &ConjunctiveQuery,
    views: &ViewSet,
    max_candidates: usize,
) -> Result<Vec<ConjunctiveQuery>, CoreError> {
    let mut candidates: Vec<ConjunctiveQuery> = vec![query.clone()];
    // Iteratively try to apply each view to each candidate.
    let mut frontier = vec![query.clone()];
    while let Some(current) = frontier.pop() {
        if candidates.len() >= max_candidates {
            break;
        }
        for view in views.views() {
            for application in view_applications(&current, view)? {
                if candidates.iter().any(|c| c == &application) {
                    continue;
                }
                candidates.push(application.clone());
                frontier.push(application);
                if candidates.len() >= max_candidates {
                    break;
                }
            }
        }
    }

    let mut verified: Vec<ConjunctiveQuery> = Vec::new();
    for mut c in candidates {
        c.name = format!("{}#rw{}", query.name, verified.len());
        if is_rewriting(query, views, &c)? {
            verified.push(c);
        }
    }
    verified.sort_by_key(|c| base_part_size(c, views));
    Ok(verified)
}

/// Finds the best (fewest base atoms) verified rewriting, if any.
pub fn find_rewriting(
    query: &ConjunctiveQuery,
    views: &ViewSet,
) -> Result<Option<ConjunctiveQuery>, CoreError> {
    Ok(find_rewritings(query, views, 64)?.into_iter().next())
}

/// Finds the verified rewriting whose *base part* is cheapest to fetch,
/// using the same cost estimates as the bounded planner.
///
/// Counting base atoms (as [`find_rewriting`] does) treats every atom as
/// equally expensive; this variant instead plans each rewriting's base part
/// with the statistics-driven [`CostBasedPlanner`] — view atoms are answered
/// from materialised views and cost nothing, exactly as in
/// [`crate::views::vqsi::execute_with_views`] — and returns the rewriting
/// with the smallest expected number of base tuples fetched, together with
/// that estimate.  Rewritings whose base part is not bounded-plannable once
/// `params` and the view-provided variables are given are skipped; `None`
/// means no candidate was plannable at all.
pub fn find_cheapest_rewriting(
    query: &ConjunctiveQuery,
    views: &ViewSet,
    schema: &DatabaseSchema,
    access: &AccessSchema,
    stats: &DatabaseStats,
    params: &[Var],
    max_candidates: usize,
) -> Result<Option<(ConjunctiveQuery, f64)>, CoreError> {
    let planner = CostBasedPlanner::new(schema, access, stats);
    let mut best: Option<(ConjunctiveQuery, f64)> = None;
    for rewriting in find_rewritings(query, views, max_candidates)? {
        let (base_atoms, view_atoms) = split_rewriting(&rewriting, views);
        let cost = if base_atoms.is_empty() {
            0.0
        } else {
            // The base part is planned with the parameters plus every
            // variable the (cached) view part can supply, keeping the
            // equalities whose terms live in the base part — they seed bound
            // variables for the planner (e.g. `p = 1`).
            let in_base = |t: &Term| match t {
                Term::Var(v) => base_atoms
                    .iter()
                    .any(|a| a.variables().iter().any(|x| x == v)),
                Term::Const(_) => true,
            };
            let base_query = ConjunctiveQuery {
                name: format!("{}#base", rewriting.name),
                head: Vec::new(),
                atoms: base_atoms.iter().map(|a| (*a).clone()).collect(),
                equalities: rewriting
                    .equalities
                    .iter()
                    .filter(|(l, r)| in_base(l) && in_base(r))
                    .cloned()
                    .collect(),
            };
            let base_vars = base_query.body_variables();
            let mut given: Vec<Var> = params.to_vec();
            for atom in &view_atoms {
                for v in atom.variables() {
                    if !given.contains(&v) {
                        given.push(v);
                    }
                }
            }
            let given: Vec<Var> = given
                .into_iter()
                .filter(|v| base_vars.contains(v))
                .collect();
            match planner.plan_costed(&base_query, &given, None) {
                Ok(costed) => costed.estimated_tuples,
                Err(CoreError::NotBoundedPlannable { .. }) => continue,
                Err(e) => return Err(e),
            }
        };
        if best.as_ref().map(|(_, c)| cost < *c).unwrap_or(true) {
            best = Some((rewriting, cost));
        }
    }
    Ok(best)
}

/// All ways of replacing a sub-pattern of `query` by one atom of `view`:
/// for each homomorphism from the view's body into the query's body, remove
/// the covered atoms (when safe) and add the view atom over the mapped head.
fn view_applications(
    query: &ConjunctiveQuery,
    view: &crate::views::view::ViewDef,
) -> Result<Vec<ConjunctiveQuery>, CoreError> {
    let mut out = Vec::new();
    // A homomorphism from the view body into the query body: reuse the CQ
    // homomorphism machinery by treating both as Boolean queries (heads are
    // handled separately because the view's head need not match the query's).
    let view_as_boolean = ConjunctiveQuery {
        name: view.query.name.clone(),
        head: Vec::new(),
        atoms: view.query.atoms.clone(),
        equalities: view.query.equalities.clone(),
    };
    let query_as_boolean = ConjunctiveQuery {
        name: query.name.clone(),
        head: Vec::new(),
        atoms: query.atoms.clone(),
        equalities: query.equalities.clone(),
    };
    let Some(h): Option<Homomorphism> = find_homomorphism(&view_as_boolean, &query_as_boolean)
    else {
        return Ok(out);
    };
    // Which query atoms are covered by the image of the view body?
    let image: BTreeSet<Atom> = view
        .query
        .atoms
        .iter()
        .map(|a| si_query::hom::apply_to_atom(&h, a))
        .collect();
    let covered: Vec<usize> = query
        .atoms
        .iter()
        .enumerate()
        .filter(|(_, a)| image.contains(*a))
        .map(|(i, _)| i)
        .collect();
    if covered.is_empty() {
        return Ok(out);
    }
    // The view atom over the mapped head terms.
    let view_atom = Atom {
        relation: view.name.clone(),
        terms: view
            .query
            .head
            .iter()
            .map(|v| apply_to_term(&h, &Term::Var(v.clone())))
            .collect(),
    };
    // Candidate: drop the covered atoms, add the view atom.  (Soundness is
    // re-checked by expansion-equivalence in the caller, so we do not need
    // the full safety conditions here.)
    let mut rewritten = query.clone();
    let covered_set: BTreeSet<usize> = covered.iter().copied().collect();
    rewritten.atoms = rewritten
        .atoms
        .into_iter()
        .enumerate()
        .filter(|(i, _)| !covered_set.contains(i))
        .map(|(_, a)| a)
        .collect();
    rewritten.atoms.push(view_atom);
    out.push(rewritten);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::views::view::ViewDef;
    use si_query::parse_cq;

    fn views() -> ViewSet {
        ViewSet::new()
            .with(ViewDef::new(
                "v1",
                parse_cq(r#"V1(rid, rn, rating) :- restr(rid, rn, "NYC", rating)"#).unwrap(),
            ))
            .with(ViewDef::new(
                "v2",
                parse_cq(r#"V2(id, rid) :- visit(id, rid), person(id, pn, "NYC")"#).unwrap(),
            ))
    }

    fn q2() -> ConjunctiveQuery {
        parse_cq(
            r#"Q2(p, rn) :- friend(p, id), visit(id, rid), person(id, pn, "NYC"), restr(rid, rn, "NYC", "A")"#,
        )
        .unwrap()
    }

    /// The paper's rewriting Q'2(p, rn) = ∃id, rid (friend(p,id) ∧ V2(id,rid) ∧ V1(rid,rn,"A")).
    fn q2_prime() -> ConjunctiveQuery {
        parse_cq(r#"Q2p(p, rn) :- friend(p, id), v2(id, rid), v1(rid, rn, "A")"#).unwrap()
    }

    #[test]
    fn expansion_unfolds_view_definitions() {
        let expansion = expand_rewriting(&q2_prime(), &views()).unwrap();
        let relations: Vec<&str> = expansion
            .atoms
            .iter()
            .map(|a| a.relation.as_str())
            .collect();
        assert!(relations.contains(&"friend"));
        assert!(relations.contains(&"visit"));
        assert!(relations.contains(&"person"));
        assert!(relations.contains(&"restr"));
        assert!(!relations.contains(&"v1"));
        // The expansion has 1 + 2 + 1 = 4 base atoms.
        assert_eq!(expansion.atoms.len(), 4);
    }

    #[test]
    fn the_papers_rewriting_verifies() {
        assert!(is_rewriting(&q2(), &views(), &q2_prime()).unwrap());
        // Dropping the friend atom breaks equivalence.
        let broken =
            parse_cq(r#"Qx(p, rn) :- v2(id, rid), v1(rid, rn, "A"), friend(p, q)"#).unwrap();
        assert!(!is_rewriting(&q2(), &views(), &broken).unwrap());
    }

    #[test]
    fn base_and_view_parts_are_split() {
        let q = q2_prime();
        let vs = views();
        let (base, view) = split_rewriting(&q, &vs);
        assert_eq!(base.len(), 1);
        assert_eq!(base[0].relation, "friend");
        assert_eq!(view.len(), 2);
        assert_eq!(base_part_size(&q, &vs), 1);
        assert_eq!(base_part_size(&q2(), &vs), 4);
    }

    #[test]
    fn rewriting_search_finds_the_view_based_plan() {
        let found = find_rewriting(&q2(), &views()).unwrap().expect("rewriting");
        // The best rewriting uses both views, leaving only friend as a base atom.
        assert_eq!(base_part_size(&found, &views()), 1);
        assert!(is_rewriting(&q2(), &views(), &found).unwrap());
        // And the original query itself is always among the rewritings.
        let all = find_rewritings(&q2(), &views(), 64).unwrap();
        assert!(all.iter().any(|c| base_part_size(c, &views()) == 4));
        assert!(all.len() >= 2);
    }

    #[test]
    fn cheapest_rewriting_is_ranked_by_planner_estimates() {
        use si_access::facebook_access_schema;
        use si_data::schema::social_schema;
        use si_data::{tuple, Database};

        let schema = social_schema();
        let access = facebook_access_schema(5000);
        let mut db = Database::empty(schema.clone());
        db.insert_all(
            "person",
            vec![tuple![1, "ann", "NYC"], tuple![2, "bob", "NYC"]],
        )
        .unwrap();
        db.insert_all("friend", vec![tuple![1, 2], tuple![2, 1]])
            .unwrap();
        db.insert_all("restr", vec![tuple![10, "sushi", "NYC", "A"]])
            .unwrap();
        db.insert_all("visit", vec![tuple![2, 10]]).unwrap();
        let stats = db.statistics();

        // Q2's original form has an unconstrained visit atom, so only the
        // view-based rewriting has a plannable base part — and its cost is
        // the expected friend fanout, not the atom count.
        let best =
            find_cheapest_rewriting(&q2(), &views(), &schema, &access, &stats, &["p".into()], 64)
                .unwrap()
                .expect("a plannable rewriting exists");
        assert_eq!(base_part_size(&best.0, &views()), 1);
        assert!(best.1 <= 2.0);
        assert!(is_rewriting(&q2(), &views(), &best.0).unwrap());

        // Without parameters nothing is plannable: no rewriting is returned.
        let none =
            find_cheapest_rewriting(&q2(), &views(), &schema, &access, &stats, &[], 64).unwrap();
        assert!(none.is_none());

        // An equality to a constant seeds the base part instead of a
        // parameter: the (here trivial) rewriting must keep its equalities
        // when its base part is planned, or it is wrongly deemed unplannable.
        let fixed =
            parse_cq(r#"Q1f(name) :- friend(p, id), person(id, name, "NYC"), p = 1"#).unwrap();
        let best = find_cheapest_rewriting(&fixed, &views(), &schema, &access, &stats, &[], 64)
            .unwrap()
            .expect("the constant equality makes the base part plannable");
        assert_eq!(base_part_size(&best.0, &views()), 2);
    }

    #[test]
    fn arity_mismatched_view_atoms_are_rejected() {
        let bad = parse_cq("Qx(p) :- v1(p)").unwrap();
        assert!(matches!(
            expand_rewriting(&bad, &views()),
            Err(CoreError::Unsupported(_))
        ));
    }

    #[test]
    fn queries_not_coverable_by_views_yield_only_the_trivial_rewriting() {
        let q = parse_cq("Q(a, b) :- friend(a, b)").unwrap();
        let all = find_rewritings(&q, &views(), 16).unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(base_part_size(&all[0], &views()), 1);
    }
}
