//! Conjunctive-query rewritings using views (Section 6).
//!
//! A rewriting `Q'` of `Q` using `V` is a query over the base schema extended
//! with the view relations such that `Q(D) = Q'(D, V(D))` for every `D`.
//! [`expand_rewriting`] unfolds the view atoms by their definitions, and
//! [`is_rewriting`] verifies a candidate by checking expansion-equivalence via
//! the homomorphism theorem.  [`find_rewriting`] performs a bounded search for
//! rewritings that replace sub-patterns of `Q` by view atoms, preferring
//! rewritings with as few base atoms as possible (those are the ones that can
//! be scale-independent with a small budget `M`).

use crate::error::CoreError;
use crate::views::view::ViewSet;
use si_query::hom::{apply_to_term, find_homomorphism, Homomorphism};
use si_query::{equivalent, Atom, ConjunctiveQuery, Term};
use std::collections::BTreeSet;

/// Splits a rewriting into its base part `Q'_b` and view part `Q'_v`
/// (returning the atom lists).
pub fn split_rewriting<'a>(
    rewriting: &'a ConjunctiveQuery,
    views: &ViewSet,
) -> (Vec<&'a Atom>, Vec<&'a Atom>) {
    let mut base = Vec::new();
    let mut view = Vec::new();
    for atom in &rewriting.atoms {
        if views.is_view(&atom.relation) {
            view.push(atom);
        } else {
            base.push(atom);
        }
    }
    (base, view)
}

/// The size `‖Q'_b‖` of the base part of a rewriting.
pub fn base_part_size(rewriting: &ConjunctiveQuery, views: &ViewSet) -> usize {
    split_rewriting(rewriting, views).0.len()
}

/// Unfolds every view atom of `rewriting` by its definition, renaming the
/// view's existential variables apart, and returns the expansion `Q'_e`.
pub fn expand_rewriting(
    rewriting: &ConjunctiveQuery,
    views: &ViewSet,
) -> Result<ConjunctiveQuery, CoreError> {
    let mut atoms: Vec<Atom> = Vec::new();
    let mut equalities = rewriting.equalities.clone();
    let mut fresh = 0usize;
    for atom in &rewriting.atoms {
        match views.view(&atom.relation) {
            None => atoms.push(atom.clone()),
            Some(view) => {
                if view.query.head.len() != atom.terms.len() {
                    return Err(CoreError::Unsupported(format!(
                        "view atom {atom} does not match the arity of view `{}`",
                        view.name
                    )));
                }
                fresh += 1;
                // Head variable i of the view maps to the atom's i-th term;
                // every other variable gets a fresh name.
                let head_map: Vec<(&String, &Term)> =
                    view.query.head.iter().zip(atom.terms.iter()).collect();
                let rename = |t: &Term| -> Term {
                    match t {
                        Term::Const(_) => t.clone(),
                        Term::Var(v) => {
                            if let Some((_, target)) =
                                head_map.iter().find(|(hv, _)| hv.as_str() == v)
                            {
                                (*target).clone()
                            } else {
                                Term::Var(format!("{v}%{fresh}"))
                            }
                        }
                    }
                };
                for body_atom in &view.query.atoms {
                    atoms.push(Atom {
                        relation: body_atom.relation.clone(),
                        terms: body_atom.terms.iter().map(rename).collect(),
                    });
                }
                for (l, r) in &view.query.equalities {
                    equalities.push((rename(l), rename(r)));
                }
            }
        }
    }
    Ok(ConjunctiveQuery {
        name: format!("{}#expanded", rewriting.name),
        head: rewriting.head.clone(),
        atoms,
        equalities,
    })
}

/// Is `candidate` a rewriting of `query` using `views`, i.e. is its expansion
/// equivalent to `query`?
pub fn is_rewriting(
    query: &ConjunctiveQuery,
    views: &ViewSet,
    candidate: &ConjunctiveQuery,
) -> Result<bool, CoreError> {
    let expansion = expand_rewriting(candidate, views)?;
    Ok(equivalent(&expansion, query))
}

/// Searches for rewritings of `query` using `views`, returning all verified
/// rewritings found, ordered by the size of their base part (fewest base
/// atoms first).  The search replaces, for each view and each homomorphism
/// from the view's body into the query's body, the covered atoms by a single
/// view atom; combinations of views are explored greedily up to
/// `max_candidates` candidates.
pub fn find_rewritings(
    query: &ConjunctiveQuery,
    views: &ViewSet,
    max_candidates: usize,
) -> Result<Vec<ConjunctiveQuery>, CoreError> {
    let mut candidates: Vec<ConjunctiveQuery> = vec![query.clone()];
    // Iteratively try to apply each view to each candidate.
    let mut frontier = vec![query.clone()];
    while let Some(current) = frontier.pop() {
        if candidates.len() >= max_candidates {
            break;
        }
        for view in views.views() {
            for application in view_applications(&current, view)? {
                if candidates.iter().any(|c| c == &application) {
                    continue;
                }
                candidates.push(application.clone());
                frontier.push(application);
                if candidates.len() >= max_candidates {
                    break;
                }
            }
        }
    }

    let mut verified: Vec<ConjunctiveQuery> = Vec::new();
    for mut c in candidates {
        c.name = format!("{}#rw{}", query.name, verified.len());
        if is_rewriting(query, views, &c)? {
            verified.push(c);
        }
    }
    verified.sort_by_key(|c| base_part_size(c, views));
    Ok(verified)
}

/// Finds the best (fewest base atoms) verified rewriting, if any.
pub fn find_rewriting(
    query: &ConjunctiveQuery,
    views: &ViewSet,
) -> Result<Option<ConjunctiveQuery>, CoreError> {
    Ok(find_rewritings(query, views, 64)?.into_iter().next())
}

/// All ways of replacing a sub-pattern of `query` by one atom of `view`:
/// for each homomorphism from the view's body into the query's body, remove
/// the covered atoms (when safe) and add the view atom over the mapped head.
fn view_applications(
    query: &ConjunctiveQuery,
    view: &crate::views::view::ViewDef,
) -> Result<Vec<ConjunctiveQuery>, CoreError> {
    let mut out = Vec::new();
    // A homomorphism from the view body into the query body: reuse the CQ
    // homomorphism machinery by treating both as Boolean queries (heads are
    // handled separately because the view's head need not match the query's).
    let view_as_boolean = ConjunctiveQuery {
        name: view.query.name.clone(),
        head: Vec::new(),
        atoms: view.query.atoms.clone(),
        equalities: view.query.equalities.clone(),
    };
    let query_as_boolean = ConjunctiveQuery {
        name: query.name.clone(),
        head: Vec::new(),
        atoms: query.atoms.clone(),
        equalities: query.equalities.clone(),
    };
    let Some(h): Option<Homomorphism> = find_homomorphism(&view_as_boolean, &query_as_boolean)
    else {
        return Ok(out);
    };
    // Which query atoms are covered by the image of the view body?
    let image: BTreeSet<Atom> = view
        .query
        .atoms
        .iter()
        .map(|a| si_query::hom::apply_to_atom(&h, a))
        .collect();
    let covered: Vec<usize> = query
        .atoms
        .iter()
        .enumerate()
        .filter(|(_, a)| image.contains(*a))
        .map(|(i, _)| i)
        .collect();
    if covered.is_empty() {
        return Ok(out);
    }
    // The view atom over the mapped head terms.
    let view_atom = Atom {
        relation: view.name.clone(),
        terms: view
            .query
            .head
            .iter()
            .map(|v| apply_to_term(&h, &Term::Var(v.clone())))
            .collect(),
    };
    // Candidate: drop the covered atoms, add the view atom.  (Soundness is
    // re-checked by expansion-equivalence in the caller, so we do not need
    // the full safety conditions here.)
    let mut rewritten = query.clone();
    let covered_set: BTreeSet<usize> = covered.iter().copied().collect();
    rewritten.atoms = rewritten
        .atoms
        .into_iter()
        .enumerate()
        .filter(|(i, _)| !covered_set.contains(i))
        .map(|(_, a)| a)
        .collect();
    rewritten.atoms.push(view_atom);
    out.push(rewritten);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::views::view::ViewDef;
    use si_query::parse_cq;

    fn views() -> ViewSet {
        ViewSet::new()
            .with(ViewDef::new(
                "v1",
                parse_cq(r#"V1(rid, rn, rating) :- restr(rid, rn, "NYC", rating)"#).unwrap(),
            ))
            .with(ViewDef::new(
                "v2",
                parse_cq(r#"V2(id, rid) :- visit(id, rid), person(id, pn, "NYC")"#).unwrap(),
            ))
    }

    fn q2() -> ConjunctiveQuery {
        parse_cq(
            r#"Q2(p, rn) :- friend(p, id), visit(id, rid), person(id, pn, "NYC"), restr(rid, rn, "NYC", "A")"#,
        )
        .unwrap()
    }

    /// The paper's rewriting Q'2(p, rn) = ∃id, rid (friend(p,id) ∧ V2(id,rid) ∧ V1(rid,rn,"A")).
    fn q2_prime() -> ConjunctiveQuery {
        parse_cq(r#"Q2p(p, rn) :- friend(p, id), v2(id, rid), v1(rid, rn, "A")"#).unwrap()
    }

    #[test]
    fn expansion_unfolds_view_definitions() {
        let expansion = expand_rewriting(&q2_prime(), &views()).unwrap();
        let relations: Vec<&str> = expansion
            .atoms
            .iter()
            .map(|a| a.relation.as_str())
            .collect();
        assert!(relations.contains(&"friend"));
        assert!(relations.contains(&"visit"));
        assert!(relations.contains(&"person"));
        assert!(relations.contains(&"restr"));
        assert!(!relations.contains(&"v1"));
        // The expansion has 1 + 2 + 1 = 4 base atoms.
        assert_eq!(expansion.atoms.len(), 4);
    }

    #[test]
    fn the_papers_rewriting_verifies() {
        assert!(is_rewriting(&q2(), &views(), &q2_prime()).unwrap());
        // Dropping the friend atom breaks equivalence.
        let broken =
            parse_cq(r#"Qx(p, rn) :- v2(id, rid), v1(rid, rn, "A"), friend(p, q)"#).unwrap();
        assert!(!is_rewriting(&q2(), &views(), &broken).unwrap());
    }

    #[test]
    fn base_and_view_parts_are_split() {
        let q = q2_prime();
        let vs = views();
        let (base, view) = split_rewriting(&q, &vs);
        assert_eq!(base.len(), 1);
        assert_eq!(base[0].relation, "friend");
        assert_eq!(view.len(), 2);
        assert_eq!(base_part_size(&q, &vs), 1);
        assert_eq!(base_part_size(&q2(), &vs), 4);
    }

    #[test]
    fn rewriting_search_finds_the_view_based_plan() {
        let found = find_rewriting(&q2(), &views()).unwrap().expect("rewriting");
        // The best rewriting uses both views, leaving only friend as a base atom.
        assert_eq!(base_part_size(&found, &views()), 1);
        assert!(is_rewriting(&q2(), &views(), &found).unwrap());
        // And the original query itself is always among the rewritings.
        let all = find_rewritings(&q2(), &views(), 64).unwrap();
        assert!(all.iter().any(|c| base_part_size(c, &views()) == 4));
        assert!(all.len() >= 2);
    }

    #[test]
    fn arity_mismatched_view_atoms_are_rejected() {
        let bad = parse_cq("Qx(p) :- v1(p)").unwrap();
        assert!(matches!(
            expand_rewriting(&bad, &views()),
            Err(CoreError::Unsupported(_))
        ));
    }

    #[test]
    fn queries_not_coverable_by_views_yield_only_the_trivial_rewriting() {
        let q = parse_cq("Q(a, b) :- friend(a, b)").unwrap();
        let all = find_rewritings(&q, &views(), 16).unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(base_part_size(&all[0], &views()), 1);
    }
}
