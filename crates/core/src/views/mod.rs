//! Scale independence using views (Section 6): view definitions and
//! materialisation, rewriting search and verification, constrained-variable
//! analysis, the VQSI decision procedure and the view-based bounded executor.

pub mod constrained;
pub mod rewrite;
pub mod view;
pub mod vqsi;

pub use constrained::{constrained_variables, is_unconstrained, unconstrained_variables};
pub use rewrite::{
    base_part_size, expand_rewriting, find_cheapest_rewriting, find_rewriting, find_rewritings,
    is_rewriting, split_rewriting,
};
pub use view::{ViewDef, ViewSet};
pub use vqsi::{decide_vqsi_cq, execute_with_views, is_scale_independent_using_views, VqsiOutcome};
