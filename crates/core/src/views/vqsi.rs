//! Scale independence using views: the VQSI decision procedure and the
//! view-based bounded executor (Section 6).
//!
//! * [`decide_vqsi_cq`] implements the NP characterisation from the proof of
//!   Theorem 6.1: a data-selecting CQ `Q` is scale-independent w.r.t. `M`
//!   using `V` iff it has a rewriting `Q'` in which every distinguished
//!   variable is constrained and whose base part has at most `M` atoms; for
//!   Boolean queries the base-part condition alone suffices.
//! * [`is_scale_independent_using_views`] is the Corollary 6.2 sufficient
//!   condition: a rewriting whose base part is x̄-controlled under the access
//!   schema, with x̄ covering the unconstrained distinguished variables.
//! * [`execute_with_views`] evaluates a rewriting by running a bounded plan
//!   for its base part (counting base-data accesses) and joining the result
//!   with the materialised views (assumed cached, hence free), returning the
//!   same [`BoundedAnswer`] shape as the other executors.

use crate::bounded::{execute_bounded, BoundedAnswer, BoundedPlanner};
use crate::error::CoreError;
use crate::si::Witness;
use crate::views::constrained::unconstrained_variables;
use crate::views::rewrite::{base_part_size, find_rewritings, split_rewriting};
use crate::views::view::ViewSet;
use si_access::{AccessIndexedDatabase, AccessSchema};
use si_data::{Database, DatabaseSchema, Value};
use si_query::{evaluate_cq, ConjunctiveQuery, Var};

/// Outcome of a VQSI decision.
#[derive(Debug, Clone, PartialEq)]
pub struct VqsiOutcome {
    /// Whether `Q ∈ VSQ(V, M)`.
    pub scale_independent: bool,
    /// A rewriting witnessing the positive answer, when one was found.
    pub rewriting: Option<ConjunctiveQuery>,
    /// Number of candidate rewritings examined.
    pub candidates_examined: usize,
}

/// Decides whether the CQ `query` is scale-independent w.r.t. `m` using
/// `views` (Theorem 6.1 characterisation), searching up to `max_candidates`
/// rewritings.
pub fn decide_vqsi_cq(
    query: &ConjunctiveQuery,
    views: &ViewSet,
    m: usize,
    max_candidates: usize,
) -> Result<VqsiOutcome, CoreError> {
    let rewritings = find_rewritings(query, views, max_candidates)?;
    let examined = rewritings.len();
    for rewriting in rewritings {
        let base_size = base_part_size(&rewriting, views);
        if base_size > m {
            continue;
        }
        if query.is_boolean() || unconstrained_variables(&rewriting, views).is_empty() {
            return Ok(VqsiOutcome {
                scale_independent: true,
                rewriting: Some(rewriting),
                candidates_examined: examined,
            });
        }
    }
    Ok(VqsiOutcome {
        scale_independent: false,
        rewriting: None,
        candidates_examined: examined,
    })
}

/// Corollary 6.2 sufficient condition: is `query` x̄-scale-independent under
/// `access` using `views`, for `x̄ = params`?  Returns the witnessing
/// rewriting when the answer is positive.
pub fn is_scale_independent_using_views(
    query: &ConjunctiveQuery,
    views: &ViewSet,
    schema: &DatabaseSchema,
    access: &AccessSchema,
    params: &[Var],
    max_candidates: usize,
) -> Result<Option<ConjunctiveQuery>, CoreError> {
    let planner = BoundedPlanner::new(schema, access);
    for rewriting in find_rewritings(query, views, max_candidates)? {
        // (a) the parameters must cover the unconstrained distinguished
        //     variables of the rewriting;
        let unconstrained = unconstrained_variables(&rewriting, views);
        if !unconstrained.iter().all(|v| params.contains(v)) {
            continue;
        }
        // (b) the base part must be controlled (bounded-plannable) under A
        //     once the parameters and the view part's shared variables are
        //     supplied.
        let (base_atoms, view_atoms) = split_rewriting(&rewriting, views);
        if base_atoms.is_empty() {
            return Ok(Some(rewriting));
        }
        let mut given: Vec<Var> = params.to_vec();
        for atom in &view_atoms {
            for v in atom.variables() {
                if !given.contains(&v) {
                    given.push(v);
                }
            }
        }
        let base_query = ConjunctiveQuery {
            name: format!("{}#base", rewriting.name),
            head: Vec::new(),
            atoms: base_atoms.iter().map(|a| (*a).clone()).collect(),
            equalities: Vec::new(),
        };
        // Restrict the given variables to those appearing in the base part —
        // planning only needs (and only accepts) variables of the query.
        let base_vars = base_query.body_variables();
        let given: Vec<Var> = given
            .into_iter()
            .filter(|v| base_vars.contains(v))
            .collect();
        if planner.plan(&base_query, &given).is_ok() {
            return Ok(Some(rewriting));
        }
    }
    Ok(None)
}

/// Executes a rewriting: the base part runs as a bounded plan over `adb`
/// (its accesses are the reported cost), the view part is answered from the
/// materialised views `materialized` (reads of cached views are free, per the
/// paper's assumption).  `params`/`values` fix the rewriting's parameters.
pub fn execute_with_views(
    rewriting: &ConjunctiveQuery,
    views: &ViewSet,
    params: &[Var],
    values: &[Value],
    adb: &AccessIndexedDatabase,
    materialized: &Database,
) -> Result<BoundedAnswer, CoreError> {
    let (base_atoms, _) = split_rewriting(rewriting, views);
    let schema = adb.database().schema().clone();
    let planner = BoundedPlanner::new(&schema, adb.access_schema());

    // 1. Bounded evaluation of the base part, keeping *all* its variables as
    //    the output so the view part can be joined afterwards.
    let (base_witness, base_accesses, restricted_base) = if base_atoms.is_empty() {
        (
            Witness::empty(),
            adb.meter_snapshot().since(&adb.meter_snapshot()),
            Database::empty(schema.clone()),
        )
    } else {
        let base_query = ConjunctiveQuery {
            name: format!("{}#base", rewriting.name),
            head: Vec::new(),
            atoms: base_atoms.iter().map(|a| (*a).clone()).collect(),
            equalities: rewriting
                .equalities
                .iter()
                .filter(|(l, r)| {
                    let in_base = |t: &si_query::Term| match t {
                        si_query::Term::Var(v) => base_atoms
                            .iter()
                            .any(|a| a.variables().iter().any(|x| x == v)),
                        si_query::Term::Const(_) => true,
                    };
                    in_base(l) && in_base(r)
                })
                .cloned()
                .collect(),
        };
        let base_vars = base_query.body_variables();
        let given: Vec<Var> = params
            .iter()
            .filter(|v| base_vars.contains(*v))
            .cloned()
            .collect();
        let given_values: Vec<Value> = params
            .iter()
            .zip(values.iter())
            .filter(|(v, _)| base_vars.contains(*v))
            .map(|(_, val)| *val)
            .collect();
        let plan = planner.plan(&base_query, &given)?;
        let result = execute_bounded(&plan, &given_values, adb)?;
        // The fetched base facts are D_Q: build a restricted base database
        // containing exactly them, for the final join.
        let restricted = result.witness.to_database(adb.database())?;
        (result.witness, result.accesses, restricted)
    };

    // 2. Combine: a database holding the restricted base relations plus the
    //    materialised view extents, then evaluate the rewriting (with the
    //    parameters bound) over it with the ordinary CQ evaluator — no
    //    further base accesses are charged because the restricted base is the
    //    already-fetched D_Q.
    let combined_schema = views.extended_schema(&schema)?;
    let mut combined = Database::empty(combined_schema);
    for relation in restricted_base.relations() {
        for t in relation.iter() {
            combined.insert(relation.name(), t.clone())?;
        }
    }
    for view in views.views() {
        if let Ok(rel) = materialized.relation(&view.name) {
            for t in rel.iter() {
                combined.insert(&view.name, t.clone())?;
            }
        }
    }
    let bindings: Vec<(Var, Value)> = params.iter().cloned().zip(values.iter().cloned()).collect();
    let answers = evaluate_cq(&rewriting.bind(&bindings), &combined, None)?;

    Ok(BoundedAnswer {
        answers,
        witness: base_witness,
        accesses: base_accesses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::views::view::ViewDef;
    use si_access::facebook_access_schema;
    use si_data::schema::social_schema;
    use si_data::tuple;
    use si_query::parse_cq;

    fn views() -> ViewSet {
        ViewSet::new()
            .with(ViewDef::new(
                "v1",
                parse_cq(r#"V1(rid, rn, rating) :- restr(rid, rn, "NYC", rating)"#).unwrap(),
            ))
            .with(ViewDef::new(
                "v2",
                parse_cq(r#"V2(id, rid) :- visit(id, rid), person(id, pn, "NYC")"#).unwrap(),
            ))
    }

    fn q2() -> ConjunctiveQuery {
        parse_cq(
            r#"Q2(p, rn) :- friend(p, id), visit(id, rid), person(id, pn, "NYC"), restr(rid, rn, "NYC", "A")"#,
        )
        .unwrap()
    }

    fn db() -> Database {
        let mut db = Database::empty(social_schema());
        db.insert_all(
            "person",
            vec![
                tuple![1, "ann", "NYC"],
                tuple![2, "bob", "NYC"],
                tuple![3, "cat", "LA"],
                tuple![4, "dan", "NYC"],
            ],
        )
        .unwrap();
        db.insert_all(
            "friend",
            vec![tuple![1, 2], tuple![1, 3], tuple![1, 4], tuple![2, 4]],
        )
        .unwrap();
        db.insert_all(
            "restr",
            vec![
                tuple![10, "sushi", "NYC", "A"],
                tuple![11, "taco", "NYC", "B"],
                tuple![12, "pasta", "LA", "A"],
            ],
        )
        .unwrap();
        db.insert_all(
            "visit",
            vec![tuple![2, 10], tuple![4, 10], tuple![4, 11], tuple![3, 12]],
        )
        .unwrap();
        db
    }

    #[test]
    fn vqsi_decision_follows_theorem_61() {
        // Data-selecting Q2 with free p and rn: the best rewriting has one
        // base atom, but rn (and p) stay unconstrained, so the query is NOT
        // in VSQ(V, M) for any M under the characterisation…
        let out = decide_vqsi_cq(&q2(), &views(), 10, 64).unwrap();
        assert!(!out.scale_independent);
        assert!(out.candidates_examined >= 2);
        // …whereas the Boolean version only needs the base part to be small.
        let boolean = ConjunctiveQuery {
            name: "Q2bool".into(),
            head: vec![],
            atoms: q2().atoms.clone(),
            equalities: q2().equalities.clone(),
        };
        let out = decide_vqsi_cq(&boolean, &views(), 1, 64).unwrap();
        assert!(out.scale_independent);
        assert_eq!(base_part_size(out.rewriting.as_ref().unwrap(), &views()), 1);
        let out = decide_vqsi_cq(&boolean, &views(), 0, 64).unwrap();
        assert!(!out.scale_independent);
        // Fixing p by a constant constrains it; rn remains unconstrained →
        // still no (rn is connected to friend through the views).
        let fixed = parse_cq(
            r#"Q2f(rn) :- friend(1, id), visit(id, rid), person(id, pn, "NYC"), restr(rid, rn, "NYC", "A")"#,
        )
        .unwrap();
        let out = decide_vqsi_cq(&fixed, &views(), 10, 64).unwrap();
        assert!(!out.scale_independent);
    }

    #[test]
    fn corollary_62_accepts_q2_with_p_fixed() {
        // Example 6.3: under the 5000-friend access schema, Q2 is
        // p-scale-independent using V1, V2.
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        let rewriting = is_scale_independent_using_views(
            &q2(),
            &views(),
            &schema,
            &access,
            &["p".into(), "rn".into()],
            64,
        )
        .unwrap();
        // rn is unconstrained, so it must be among the parameters; with both
        // p and rn given the rewriting's base part (friend) is p-controlled.
        assert!(rewriting.is_some());
        // Without the views, Q2 itself is not p-scale-independent under A
        // (visit has no constraint).
        let planner = BoundedPlanner::new(&schema, &access);
        assert!(planner.plan(&q2(), &["p".into(), "rn".into()]).is_err());
        // And without any parameters the condition fails (p unconstrained).
        assert!(
            is_scale_independent_using_views(&q2(), &views(), &schema, &access, &[], 64)
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn execute_with_views_touches_only_the_friend_tuples() {
        let schema_db = db();
        let vs = views();
        let access = facebook_access_schema(5000);
        let materialized = vs.materialize_views_only(&schema_db).unwrap();
        let adb = AccessIndexedDatabase::new(schema_db, access).unwrap();
        let rewriting =
            parse_cq(r#"Q2p(p, rn) :- friend(p, id), v2(id, rid), v1(rid, rn, "A")"#).unwrap();

        let result = execute_with_views(
            &rewriting,
            &vs,
            &["p".into()],
            &[Value::int(1)],
            &adb,
            &materialized,
        )
        .unwrap();
        let mut answers = result.answers.clone();
        answers.sort();
        assert_eq!(answers, vec![tuple!["sushi"]]);
        // Only the friend tuples of p were fetched from the base data.
        assert_eq!(result.accesses.tuples_fetched, 3);
        assert_eq!(result.accesses.full_scans, 0);
        assert_eq!(result.witness.size(), 3);

        // The answers agree with evaluating the original Q2 directly.
        let direct = evaluate_cq(
            &q2().bind(&[("p".into(), Value::int(1))]),
            adb.database(),
            None,
        )
        .unwrap();
        assert_eq!(answers, direct);
    }

    #[test]
    fn complete_rewritings_need_no_base_access() {
        // A query fully answerable from V2 alone.
        let q = parse_cq(r#"Q(id, rid) :- visit(id, rid), person(id, pn, "NYC")"#).unwrap();
        let vs = views();
        let schema_db = db();
        let materialized = vs.materialize_views_only(&schema_db).unwrap();
        let adb = AccessIndexedDatabase::new(schema_db, facebook_access_schema(5000)).unwrap();
        let rewriting = parse_cq("Qc(id, rid) :- v2(id, rid)").unwrap();
        assert!(crate::views::rewrite::is_rewriting(&q, &vs, &rewriting).unwrap());
        let result = execute_with_views(&rewriting, &vs, &[], &[], &adb, &materialized).unwrap();
        assert_eq!(result.accesses.tuples_fetched, 0);
        assert_eq!(result.answers.len(), 3);
        // Theorem 6.1: a complete rewriting means VQSI holds with M = 0 for
        // the Boolean version; the data-selecting version additionally has
        // all head variables constrained (no base atoms at all).
        let out = decide_vqsi_cq(&q, &vs, 0, 64).unwrap();
        assert!(out.scale_independent);
    }
}
