//! Constrained and unconstrained distinguished variables of a rewriting.
//!
//! The NP characterisation of VQSI (proof of Theorem 6.1) hinges on which
//! distinguished (head) variables of a rewriting `Q'` are *constrained*: a
//! head variable `x` is constrained when it is instantiated to a constant or
//! when it is **not** connected to a base relation atom through a chain of
//! joins `S1, …, Sl` with `S1, …, S_{l−1}` view atoms, `Sl` a base atom,
//! `x ∈ v̄1` and consecutive atoms sharing a variable.  Unconstrained head
//! variables force the rewriting to read base data proportional to the data
//! size, which is what the budget `M` must cover.

use crate::views::view::ViewSet;
use si_query::{ConjunctiveQuery, Term, Var};
use std::collections::BTreeSet;

/// The distinguished variables of `rewriting` that are **unconstrained**
/// (connected to a base atom via a chain of view atoms).
pub fn unconstrained_variables(rewriting: &ConjunctiveQuery, views: &ViewSet) -> Vec<Var> {
    rewriting
        .head
        .iter()
        .filter(|x| is_unconstrained(rewriting, views, x))
        .cloned()
        .collect()
}

/// The distinguished variables of `rewriting` that are constrained.
pub fn constrained_variables(rewriting: &ConjunctiveQuery, views: &ViewSet) -> Vec<Var> {
    rewriting
        .head
        .iter()
        .filter(|x| !is_unconstrained(rewriting, views, x))
        .cloned()
        .collect()
}

/// Is the head variable `x` unconstrained in `rewriting`?
pub fn is_unconstrained(rewriting: &ConjunctiveQuery, views: &ViewSet, x: &str) -> bool {
    // A head variable equated to a constant is constrained.
    let equated_to_constant = rewriting.equalities.iter().any(|(l, r)| {
        matches!((l, r), (Term::Var(v), Term::Const(_)) if v == x)
            || matches!((l, r), (Term::Const(_), Term::Var(v)) if v == x)
    });
    if equated_to_constant {
        return false;
    }
    // BFS over atoms containing reachable variables, travelling only through
    // view atoms; reaching any base atom makes x unconstrained.
    let start_atoms: Vec<usize> = rewriting
        .atoms
        .iter()
        .enumerate()
        .filter(|(_, a)| a.variables().iter().any(|v| v == x))
        .map(|(i, _)| i)
        .collect();
    let mut visited: BTreeSet<usize> = BTreeSet::new();
    let mut queue: Vec<usize> = start_atoms;
    while let Some(i) = queue.pop() {
        if !visited.insert(i) {
            continue;
        }
        let atom = &rewriting.atoms[i];
        if !views.is_view(&atom.relation) {
            // Reached a base atom.
            return true;
        }
        // Continue through atoms sharing a variable with this view atom.
        let vars: BTreeSet<Var> = atom.variables().into_iter().collect();
        for (j, other) in rewriting.atoms.iter().enumerate() {
            if visited.contains(&j) {
                continue;
            }
            if other.variables().iter().any(|v| vars.contains(v)) {
                queue.push(j);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::views::view::ViewDef;
    use si_query::parse_cq;

    fn views() -> ViewSet {
        ViewSet::new()
            .with(ViewDef::new(
                "v1",
                parse_cq(r#"V1(rid, rn, rating) :- restr(rid, rn, "NYC", rating)"#).unwrap(),
            ))
            .with(ViewDef::new(
                "v2",
                parse_cq(r#"V2(id, rid) :- visit(id, rid), person(id, pn, "NYC")"#).unwrap(),
            ))
    }

    #[test]
    fn rn_is_unconstrained_in_the_papers_rewriting() {
        // Q'2(p, rn): rn connects to the base relation friend via the chain
        // V1 – V2 – friend, as observed in the paper.
        let q2_prime =
            parse_cq(r#"Q2p(p, rn) :- friend(p, id), v2(id, rid), v1(rid, rn, "A")"#).unwrap();
        let vs = views();
        assert!(is_unconstrained(&q2_prime, &vs, "rn"));
        assert!(is_unconstrained(&q2_prime, &vs, "p"));
        assert_eq!(unconstrained_variables(&q2_prime, &vs).len(), 2);
        assert!(constrained_variables(&q2_prime, &vs).is_empty());
    }

    #[test]
    fn variables_only_touching_views_are_constrained() {
        // A rewriting with no base atoms at all: every head variable is
        // constrained (a complete rewriting; M = 0 suffices).
        let complete = parse_cq(r#"Q(id, rn) :- v2(id, rid), v1(rid, rn, "A")"#).unwrap();
        let vs = views();
        assert!(!is_unconstrained(&complete, &vs, "id"));
        assert!(!is_unconstrained(&complete, &vs, "rn"));
        assert_eq!(constrained_variables(&complete, &vs).len(), 2);
    }

    #[test]
    fn constants_constrain_variables() {
        let q =
            parse_cq(r#"Q(p, rn) :- friend(p, id), v2(id, rid), v1(rid, rn, "A"), p = 1"#).unwrap();
        let vs = views();
        assert!(!is_unconstrained(&q, &vs, "p"));
        assert!(is_unconstrained(&q, &vs, "rn"));
        assert_eq!(unconstrained_variables(&q, &vs), vec!["rn".to_string()]);
    }

    #[test]
    fn disconnected_view_components_do_not_reach_base_atoms() {
        // rn only occurs in a view atom that shares no variables with the
        // base atom: constrained.
        let q = parse_cq(r#"Q(p, rn) :- friend(p, id), v1(rid, rn, "A")"#).unwrap();
        let vs = views();
        assert!(!is_unconstrained(&q, &vs, "rn"));
        assert!(is_unconstrained(&q, &vs, "p"));
    }
}
