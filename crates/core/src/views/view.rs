//! View definitions and materialisation.
//!
//! Section 6 of the paper assumes a set `V` of views defined over the base
//! schema, whose extents `V(D)` are materialised and cheap to access ("cached
//! in memory").  A [`ViewDef`] is a named conjunctive query; a [`ViewSet`]
//! can extend the database schema with one relation per view, materialise the
//! extents, and produce the access constraints under which the materialised
//! views are efficiently retrievable.

use crate::error::CoreError;
use si_access::{AccessConstraint, AccessSchema};
use si_data::{Database, DatabaseSchema, RelationSchema};
use si_query::{evaluate_cq, ConjunctiveQuery};

/// A named view defined by a conjunctive query; the view relation's
/// attributes are the query's head variables.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewDef {
    /// The view (relation) name.
    pub name: String,
    /// The defining query.
    pub query: ConjunctiveQuery,
}

impl ViewDef {
    /// Creates a view definition.
    pub fn new(name: impl Into<String>, query: ConjunctiveQuery) -> Self {
        ViewDef {
            name: name.into(),
            query,
        }
    }

    /// The schema of the view relation.
    pub fn relation_schema(&self) -> RelationSchema {
        let attrs: Vec<&str> = self.query.head.iter().map(String::as_str).collect();
        RelationSchema::new(self.name.clone(), &attrs)
    }
}

/// A set of views over a common base schema.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ViewSet {
    views: Vec<ViewDef>,
}

impl ViewSet {
    /// Creates an empty view set.
    pub fn new() -> Self {
        ViewSet::default()
    }

    /// Adds a view (builder style).
    pub fn with(mut self, view: ViewDef) -> Self {
        self.views.push(view);
        self
    }

    /// The views.
    pub fn views(&self) -> &[ViewDef] {
        &self.views
    }

    /// Looks up a view by name.
    pub fn view(&self, name: &str) -> Option<&ViewDef> {
        self.views.iter().find(|v| v.name == name)
    }

    /// True iff `name` is one of the views.
    pub fn is_view(&self, name: &str) -> bool {
        self.view(name).is_some()
    }

    /// The base schema extended with one relation per view.
    pub fn extended_schema(&self, base: &DatabaseSchema) -> Result<DatabaseSchema, CoreError> {
        let mut relations: Vec<RelationSchema> = base.relations().cloned().collect();
        for v in &self.views {
            relations.push(v.relation_schema());
        }
        Ok(DatabaseSchema::from_relations(relations)?)
    }

    /// Materialises every view over `db`, returning a database over the
    /// extended schema containing the base relations *and* the view extents.
    pub fn materialize(&self, db: &Database) -> Result<Database, CoreError> {
        let schema = self.extended_schema(db.schema())?;
        let mut out = Database::empty(schema);
        for relation in db.relations() {
            for t in relation.iter() {
                out.insert(relation.name(), t.clone())?;
            }
        }
        for v in &self.views {
            let extent = evaluate_cq(&v.query, db, None)?;
            out.insert_all(&v.name, extent)?;
        }
        Ok(out)
    }

    /// Materialises only the view extents (no base relations), over a schema
    /// containing just the view relations.
    pub fn materialize_views_only(&self, db: &Database) -> Result<Database, CoreError> {
        let schema = DatabaseSchema::from_relations(
            self.views.iter().map(ViewDef::relation_schema).collect(),
        )?;
        let mut out = Database::empty(schema);
        for v in &self.views {
            let extent = evaluate_cq(&v.query, db, None)?;
            out.insert_all(&v.name, extent)?;
        }
        Ok(out)
    }

    /// Access constraints describing how the *materialised* views can be
    /// probed: the views are assumed cached, so every view is retrievable in
    /// full (`X = ∅`, bounded by `view_bound`) and by any single attribute.
    /// `view_bound` plays the role of the cache-resident view size.
    pub fn view_access_schema(&self, view_bound: usize) -> AccessSchema {
        let mut access = AccessSchema::new();
        for v in &self.views {
            access.add(AccessConstraint::new(&v.name, &[], view_bound, 1));
            for attr in &v.query.head {
                access.add(AccessConstraint::new(
                    &v.name,
                    &[attr.as_str()],
                    view_bound,
                    1,
                ));
            }
            access.grant_full_access(&v.name);
        }
        access
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_data::schema::social_schema;
    use si_data::tuple;
    use si_query::parse_cq;

    /// V1: all A-rated? — no, per Example 1.1(c): V1 = restaurants in NYC,
    /// V2 = visits by NYC residents.
    pub fn v1() -> ViewDef {
        ViewDef::new(
            "v1",
            parse_cq(r#"V1(rid, rn, rating) :- restr(rid, rn, "NYC", rating)"#).unwrap(),
        )
    }

    pub fn v2() -> ViewDef {
        ViewDef::new(
            "v2",
            parse_cq(r#"V2(id, rid) :- visit(id, rid), person(id, pn, "NYC")"#).unwrap(),
        )
    }

    fn db() -> Database {
        let mut db = Database::empty(social_schema());
        db.insert_all(
            "person",
            vec![
                tuple![1, "ann", "NYC"],
                tuple![2, "bob", "NYC"],
                tuple![3, "cat", "LA"],
            ],
        )
        .unwrap();
        db.insert_all("friend", vec![tuple![1, 2], tuple![1, 3]])
            .unwrap();
        db.insert_all(
            "restr",
            vec![
                tuple![10, "sushi", "NYC", "A"],
                tuple![11, "pasta", "LA", "A"],
            ],
        )
        .unwrap();
        db.insert_all("visit", vec![tuple![2, 10], tuple![3, 11], tuple![3, 10]])
            .unwrap();
        db
    }

    #[test]
    fn view_schema_uses_head_variables() {
        let v = v1();
        let schema = v.relation_schema();
        assert_eq!(schema.name(), "v1");
        assert_eq!(schema.attributes(), &["rid", "rn", "rating"]);
    }

    #[test]
    fn extended_schema_and_lookup() {
        let views = ViewSet::new().with(v1()).with(v2());
        let schema = views.extended_schema(&social_schema()).unwrap();
        assert!(schema.has_relation("v1"));
        assert!(schema.has_relation("friend"));
        assert!(views.is_view("v2"));
        assert!(!views.is_view("friend"));
        assert_eq!(views.views().len(), 2);
        assert!(views.view("v1").is_some());
    }

    #[test]
    fn materialisation_computes_view_extents() {
        let views = ViewSet::new().with(v1()).with(v2());
        let full = views.materialize(&db()).unwrap();
        // V1: NYC restaurants → only sushi.
        assert_eq!(full.relation("v1").unwrap().len(), 1);
        assert!(full.contains("v1", &tuple![10, "sushi", "A"]).unwrap());
        // V2: visits by NYC residents → visit(2, 10) only.
        assert_eq!(full.relation("v2").unwrap().len(), 1);
        assert!(full.contains("v2", &tuple![2, 10]).unwrap());
        // Base relations are carried over.
        assert_eq!(full.relation("friend").unwrap().len(), 2);

        let only = views.materialize_views_only(&db()).unwrap();
        assert_eq!(only.size(), 2);
        assert!(only.relation("friend").is_err());
    }

    #[test]
    fn view_access_schema_grants_cached_access() {
        let views = ViewSet::new().with(v1()).with(v2());
        let access = views.view_access_schema(100_000);
        assert!(access.has_full_access("v1"));
        assert!(access.constraints_on("v2").count() >= 3);
        // Name clash with duplicated view names would be a schema error.
        let dup = ViewSet::new().with(v1()).with(v1());
        assert!(dup.extended_schema(&social_schema()).is_err());
    }
}
