//! Scale independence: definitions and the witness problem.
//!
//! Section 3 of the paper: a query `Q` is *scale-independent in `D`
//! w.r.t. `M`* when there exists `D_Q ⊆ D` with `|D_Q| ≤ M` and
//! `Q(D_Q) = Q(D)`.  `D_Q` is a *witness*.  The *witness problem* — given a
//! candidate `D' ⊆ D`, does `Q(D') = Q(D)` hold? — is the inner check of all
//! the decision procedures in [`crate::qdsi`].

use crate::error::CoreError;
use si_data::{Database, Tuple};
use si_query::{evaluate_cq, evaluate_fo, evaluate_ucq, ConjunctiveQuery, FoQuery, UnionQuery};
use std::collections::BTreeSet;
use std::fmt;

/// A query in one of the three languages studied by the paper.
///
/// Keeping the concrete representation (rather than converting everything to
/// FO) lets the decision procedures exploit the CQ/UCQ fast paths of
/// Corollary 3.2 and Theorem 3.3.
#[derive(Debug, Clone, PartialEq)]
pub enum AnyQuery {
    /// A conjunctive query.
    Cq(ConjunctiveQuery),
    /// A union of conjunctive queries.
    Ucq(UnionQuery),
    /// A first-order query.
    Fo(FoQuery),
}

impl AnyQuery {
    /// The query's name.
    pub fn name(&self) -> &str {
        match self {
            AnyQuery::Cq(q) => &q.name,
            AnyQuery::Ucq(q) => &q.name,
            AnyQuery::Fo(q) => &q.name,
        }
    }

    /// Number of output variables.
    pub fn arity(&self) -> usize {
        match self {
            AnyQuery::Cq(q) => q.arity(),
            AnyQuery::Ucq(q) => q.arity(),
            AnyQuery::Fo(q) => q.arity(),
        }
    }

    /// True iff the query is Boolean (a sentence).
    pub fn is_boolean(&self) -> bool {
        self.arity() == 0
    }

    /// True for CQ and UCQ, which are monotone: `D' ⊆ D ⇒ Q(D') ⊆ Q(D)`.
    /// The decision procedures use this to prune the witness search.
    pub fn is_monotone(&self) -> bool {
        matches!(self, AnyQuery::Cq(_) | AnyQuery::Ucq(_))
    }

    /// The tableau size `‖Q‖` for CQ/UCQ (Section 3); `None` for FO.
    pub fn tableau_size(&self) -> Option<usize> {
        match self {
            AnyQuery::Cq(q) => Some(q.tableau_size()),
            AnyQuery::Ucq(q) => Some(q.tableau_size()),
            AnyQuery::Fo(_) => None,
        }
    }

    /// Evaluates the query over `db`, returning the answer set.
    ///
    /// Boolean queries return `[()]`(the empty tuple) when true and `[]`
    /// when false, uniformly across languages.
    pub fn answers(&self, db: &Database) -> Result<Vec<Tuple>, CoreError> {
        let out = match self {
            AnyQuery::Cq(q) => {
                if q.is_boolean() {
                    if si_query::evaluate_boolean_cq(q, db, None)? {
                        vec![Tuple::empty()]
                    } else {
                        vec![]
                    }
                } else {
                    evaluate_cq(q, db, None)?
                }
            }
            AnyQuery::Ucq(q) => {
                if q.is_boolean() {
                    let any = q
                        .disjuncts
                        .iter()
                        .map(|d| si_query::evaluate_boolean_cq(d, db, None))
                        .collect::<Result<Vec<bool>, _>>()?
                        .into_iter()
                        .any(|b| b);
                    if any {
                        vec![Tuple::empty()]
                    } else {
                        vec![]
                    }
                } else {
                    evaluate_ucq(q, db, None)?
                }
            }
            AnyQuery::Fo(q) => evaluate_fo(q, db)?,
        };
        Ok(out)
    }

    /// Evaluates the query and returns the answers as a set.
    pub fn answer_set(&self, db: &Database) -> Result<BTreeSet<Tuple>, CoreError> {
        Ok(self.answers(db)?.into_iter().collect())
    }
}

impl From<ConjunctiveQuery> for AnyQuery {
    fn from(q: ConjunctiveQuery) -> Self {
        AnyQuery::Cq(q)
    }
}

impl From<UnionQuery> for AnyQuery {
    fn from(q: UnionQuery) -> Self {
        AnyQuery::Ucq(q)
    }
}

impl From<FoQuery> for AnyQuery {
    fn from(q: FoQuery) -> Self {
        AnyQuery::Fo(q)
    }
}

impl fmt::Display for AnyQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnyQuery::Cq(q) => write!(f, "{q}"),
            AnyQuery::Ucq(q) => write!(f, "{q}"),
            AnyQuery::Fo(q) => write!(f, "{q}"),
        }
    }
}

/// A witness `D_Q ⊆ D` for scale independence: the list of facts retained.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Witness {
    /// The retained `(relation, tuple)` facts.
    pub facts: Vec<(String, Tuple)>,
}

impl Witness {
    /// An empty witness.
    pub fn empty() -> Self {
        Witness::default()
    }

    /// Creates a witness from facts, deduplicating.
    pub fn from_facts(facts: Vec<(String, Tuple)>) -> Self {
        let mut seen = BTreeSet::new();
        let facts = facts
            .into_iter()
            .filter(|f| seen.insert(f.clone()))
            .collect();
        Witness { facts }
    }

    /// Number of facts, `|D_Q|`.
    pub fn size(&self) -> usize {
        self.facts.len()
    }

    /// Materialises the witness as a sub-database of `db`.
    pub fn to_database(&self, db: &Database) -> Result<Database, CoreError> {
        Ok(db.sub_database(&self.facts)?)
    }
}

impl fmt::Display for Witness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "witness[{} facts]", self.size())
    }
}

/// The *witness problem*: does the sub-instance `candidate ⊆ db` satisfy
/// `Q(candidate) = Q(db)`?
pub fn is_witness(
    query: &AnyQuery,
    db: &Database,
    candidate: &Database,
) -> Result<bool, CoreError> {
    if !db.contains_database(candidate) {
        return Err(CoreError::Invariant(
            "candidate witness is not a sub-instance of the base database".into(),
        ));
    }
    Ok(query.answer_set(candidate)? == query.answer_set(db)?)
}

/// Checks a [`Witness`] (fact list form) against the definition.
pub fn check_witness(
    query: &AnyQuery,
    db: &Database,
    witness: &Witness,
    m: usize,
) -> Result<bool, CoreError> {
    if witness.size() > m {
        return Ok(false);
    }
    let sub = witness.to_database(db)?;
    is_witness(query, db, &sub)
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_data::schema::social_schema;
    use si_data::tuple;
    use si_query::ast::{c, v, Atom};
    use si_query::Formula;

    fn db() -> Database {
        let mut db = Database::empty(social_schema());
        db.insert_all(
            "person",
            vec![
                tuple![1, "ann", "NYC"],
                tuple![2, "bob", "NYC"],
                tuple![3, "cat", "LA"],
            ],
        )
        .unwrap();
        db.insert_all("friend", vec![tuple![1, 2], tuple![1, 3], tuple![2, 3]])
            .unwrap();
        db
    }

    fn q1_bound() -> ConjunctiveQuery {
        ConjunctiveQuery::new(
            "Q1",
            vec!["name".into()],
            vec![
                Atom::new("friend", vec![c(1), v("id")]),
                Atom::new("person", vec![v("id"), v("name"), c("NYC")]),
            ],
        )
    }

    #[test]
    fn any_query_dispatch() {
        let q: AnyQuery = q1_bound().into();
        assert_eq!(q.name(), "Q1");
        assert_eq!(q.arity(), 1);
        assert!(!q.is_boolean());
        assert!(q.is_monotone());
        assert_eq!(q.tableau_size(), Some(2));
        assert_eq!(q.answers(&db()).unwrap(), vec![tuple!["bob"]]);
        assert!(q.to_string().contains("Q1"));
    }

    #[test]
    fn boolean_cq_and_fo_answers_are_uniform() {
        let boolean_cq: AnyQuery =
            ConjunctiveQuery::new("B", vec![], vec![Atom::new("friend", vec![v("x"), v("y")])])
                .into();
        assert_eq!(boolean_cq.answers(&db()).unwrap(), vec![Tuple::empty()]);

        let boolean_fo: AnyQuery = FoQuery::boolean(
            "B",
            Formula::exists(
                vec!["x".into(), "y".into()],
                Formula::Atom(Atom::new("friend", vec![v("x"), v("y")])),
            ),
        )
        .into();
        assert!(!boolean_fo.is_monotone());
        assert_eq!(boolean_fo.tableau_size(), None);
        assert_eq!(boolean_fo.answers(&db()).unwrap(), vec![Tuple::empty()]);

        let false_cq: AnyQuery = ConjunctiveQuery::new(
            "B",
            vec![],
            vec![Atom::new("person", vec![v("x"), v("n"), c("Tokyo")])],
        )
        .into();
        assert!(false_cq.answers(&db()).unwrap().is_empty());
    }

    #[test]
    fn ucq_queries_dispatch() {
        let u = UnionQuery::new(
            "U",
            vec![
                ConjunctiveQuery::new(
                    "a",
                    vec!["n".into()],
                    vec![Atom::new("person", vec![v("x"), v("n"), c("LA")])],
                ),
                ConjunctiveQuery::new(
                    "b",
                    vec!["n".into()],
                    vec![Atom::new("person", vec![v("x"), v("n"), c("Tokyo")])],
                ),
            ],
        )
        .unwrap();
        let q: AnyQuery = u.into();
        assert!(q.is_monotone());
        assert_eq!(q.answers(&db()).unwrap(), vec![tuple!["cat"]]);

        let bool_u = UnionQuery::new(
            "U",
            vec![ConjunctiveQuery::new(
                "a",
                vec![],
                vec![Atom::new("person", vec![v("x"), v("n"), c("LA")])],
            )],
        )
        .unwrap();
        let q: AnyQuery = bool_u.into();
        assert!(q.is_boolean());
        assert_eq!(q.answers(&db()).unwrap(), vec![Tuple::empty()]);
    }

    #[test]
    fn witness_checking_accepts_the_provenance_facts() {
        let q: AnyQuery = q1_bound().into();
        let d = db();
        // The two facts used by the only answer form a witness.
        let w = Witness::from_facts(vec![
            ("friend".into(), tuple![1, 2]),
            ("person".into(), tuple![2, "bob", "NYC"]),
        ]);
        assert_eq!(w.size(), 2);
        assert!(check_witness(&q, &d, &w, 2).unwrap());
        assert!(!check_witness(&q, &d, &w, 1).unwrap(), "budget too small");
        // An unrelated fact is not a witness.
        let w = Witness::from_facts(vec![("friend".into(), tuple![2, 3])]);
        assert!(!check_witness(&q, &d, &w, 10).unwrap());
        // The empty witness is not a witness here (answer is non-empty)…
        assert!(!check_witness(&q, &d, &Witness::empty(), 10).unwrap());
    }

    #[test]
    fn empty_witness_works_for_false_boolean_monotone_queries() {
        let q: AnyQuery = ConjunctiveQuery::new(
            "B",
            vec![],
            vec![Atom::new("person", vec![v("x"), v("n"), c("Tokyo")])],
        )
        .into();
        assert!(check_witness(&q, &db(), &Witness::empty(), 0).unwrap());
    }

    #[test]
    fn is_witness_rejects_non_subinstances() {
        let q: AnyQuery = q1_bound().into();
        let d = db();
        let mut other = Database::empty(social_schema());
        other.insert("friend", tuple![9, 9]).unwrap();
        assert!(matches!(
            is_witness(&q, &d, &other),
            Err(CoreError::Invariant(_))
        ));
    }

    #[test]
    fn witness_deduplicates_facts() {
        let w = Witness::from_facts(vec![
            ("friend".into(), tuple![1, 2]),
            ("friend".into(), tuple![1, 2]),
        ]);
        assert_eq!(w.size(), 1);
        assert!(w.to_string().contains("1 facts"));
    }

    #[test]
    fn full_database_is_always_a_witness() {
        // Q ∈ SQ_L(D, |D|) for every Q and D (Section 3 remark).
        let q: AnyQuery = q1_bound().into();
        let d = db();
        let w = Witness::from_facts(d.all_facts());
        assert!(check_witness(&q, &d, &w, d.size()).unwrap());
    }
}
