//! Cross-crate integration tests live under tests/.
