//! Property tests for the Section-5 change-propagation rules
//! (`si_core::incremental::delta_rules`): on randomly generated relational
//! algebra expressions and random mixed insert/delete updates,
//!
//! * `propagate`-then-`maintain` must equal full recomputation
//!   (`E(D ⊕ ∆D) = (E(D) − E∇) ∪ E∆`),
//! * the paper's invariants must hold: `E∇ ⊆ E(D)` and `E∆ ∩ E(D) = ∅`,
//! * and the empty update and delete-then-reinsert sequences must be fixed
//!   points (answers return to where they started).
//!
//! The expression generator covers every operator — selections,
//! projections, renames, natural joins, and the set operations (whose right
//! operands are derived from the left so attribute signatures always
//! align) — to depth 3; updates mix polarities over all four social
//! relations.  Deterministic seeded loops stand in for proptest (offline
//! build).

use si_core::incremental::{maintain, propagate};
use si_data::schema::social_schema;
use si_data::{Database, Delta, ShardedSnapshotStore, SnapshotStore, Tuple, Value};
use si_query::algebra_eval::{evaluate_ra, RaEvaluator};
use si_query::{Condition, RaExpr};
use si_workload::rng::SplitMix64;
use si_workload::{SocialConfig, SocialGenerator};
use std::collections::BTreeSet;

fn small_db(seed: u64) -> Database {
    SocialGenerator::new(SocialConfig {
        persons: 10 + (seed as usize % 4) * 3,
        restaurants: 4 + (seed as usize % 3),
        avg_friends: 3,
        avg_visits: 2,
        seed,
        ..SocialConfig::default()
    })
    .generate()
}

fn leaf(rng: &mut SplitMix64) -> RaExpr {
    let name = ["person", "friend", "restr", "visit"][rng.gen_range(0..4usize)];
    RaExpr::relation(name)
}

/// A type-plausible constant for an attribute (mismatches would only make
/// selections trivially empty, which tests nothing).
fn const_for(rng: &mut SplitMix64, attribute: &str) -> Value {
    match attribute {
        a if a.contains("city") => Value::str(["NYC", "LA"][rng.gen_range(0..2usize)]),
        a if a.contains("rating") => Value::str(["A", "B"][rng.gen_range(0..2usize)]),
        a if a.contains("name") => Value::str(["p1", "p2", "r1"][rng.gen_range(0..3usize)]),
        _ => Value::int(rng.gen_range(0..8usize) as i64),
    }
}

/// Generates a random expression of the given depth; every operator can
/// appear, and attribute choices are driven by the (schema-checked)
/// attribute list of the subexpression, so generated expressions are always
/// well formed.
fn gen_expr(rng: &mut SplitMix64, depth: usize) -> RaExpr {
    let schema = social_schema();
    if depth == 0 {
        return leaf(rng);
    }
    let inner = gen_expr(rng, depth - 1);
    let attrs = inner
        .attributes(&schema)
        .expect("generated exprs are valid");
    match rng.gen_range(0..8u8) {
        0 => leaf(rng),
        1 => {
            let a = attrs[rng.gen_range(0..attrs.len())].clone();
            let v = const_for(rng, &a);
            inner.select(vec![Condition::EqConst(a, v)])
        }
        2 => {
            // Non-empty random subset, order preserved.
            let keep: Vec<&str> = attrs
                .iter()
                .enumerate()
                .filter(|(i, _)| (rng.next_u64() >> i) & 1 == 1)
                .map(|(_, a)| a.as_str())
                .collect();
            if keep.is_empty() {
                inner.project(&[attrs[0].as_str()])
            } else {
                inner.project(&keep)
            }
        }
        3 => {
            let a = attrs[rng.gen_range(0..attrs.len())].clone();
            let fresh = format!("{a}_r");
            if attrs.contains(&fresh) {
                inner
            } else {
                inner.rename(&[(a.as_str(), fresh.as_str())])
            }
        }
        4 => inner.join(gen_expr(rng, depth - 1)),
        op => {
            // Set operations: derive the right operand from the left so the
            // attribute signatures agree by construction.
            let right = if rng.gen_range(0..2usize) == 0 {
                inner.clone()
            } else {
                let a = attrs[rng.gen_range(0..attrs.len())].clone();
                let v = const_for(rng, &a);
                inner.clone().select(vec![Condition::EqConst(a, v)])
            };
            match op {
                5 => inner.union(right),
                6 => inner.diff(right),
                _ => inner.intersect(right),
            }
        }
    }
}

/// A random mixed update, valid against `db`: fresh insertions and existing
/// deletions over all four relations.
fn gen_delta(rng: &mut SplitMix64, db: &Database, fresh: &mut usize) -> Delta {
    let mut delta = Delta::new();
    let mut planned: BTreeSet<(String, Tuple)> = BTreeSet::new();
    let tuples = 1 + rng.gen_range(0..4usize);
    for _ in 0..tuples {
        let relation = ["person", "friend", "restr", "visit"][rng.gen_range(0..4usize)];
        if rng.gen_range(0..2usize) == 0 {
            // Deletion of an existing tuple.
            let rel = db.relation(relation).unwrap();
            if rel.is_empty() {
                continue;
            }
            let i = rng.gen_range(0..rel.len());
            let Some(t) = rel.iter().nth(i).cloned() else {
                continue;
            };
            if planned.insert((relation.to_string(), t.clone())) {
                delta.delete(relation, t);
            }
        } else {
            // Insertion of a fresh tuple (fresh ids guarantee disjointness
            // from D; the planned-set guards within the delta).
            *fresh += 1;
            let t: Tuple = match relation {
                "person" => vec![
                    Value::from(*fresh),
                    Value::str(format!("n{fresh}")),
                    Value::str(["NYC", "LA"][rng.gen_range(0..2usize)]),
                ],
                "friend" => vec![Value::from(rng.gen_range(0..12usize)), Value::from(*fresh)],
                "restr" => vec![
                    Value::from(*fresh),
                    Value::str(format!("r{fresh}")),
                    Value::str(["NYC", "LA"][rng.gen_range(0..2usize)]),
                    Value::str(["A", "B"][rng.gen_range(0..2usize)]),
                ],
                _ => vec![Value::from(rng.gen_range(0..12usize)), Value::from(*fresh)],
            }
            .into();
            if planned.insert((relation.to_string(), t.clone())) {
                delta.insert(relation, t);
            }
        }
    }
    delta
}

/// The fundamental check: propagation invariants plus maintain ≡ recompute.
fn check_propagation(expr: &RaExpr, db: &Database, delta: &Delta, context: &str) {
    let old = evaluate_ra(expr, db).unwrap();
    let updated = delta.apply(db).unwrap();
    let expected = evaluate_ra(expr, &updated).unwrap();

    let changes = propagate(expr).unwrap();
    let evaluator = RaEvaluator::new(db).with_delta(delta);
    let removed = evaluator.evaluate(&changes.nabla).unwrap();
    let added = evaluator.evaluate(&changes.delta).unwrap();
    let old_set: BTreeSet<Tuple> = old.tuples.iter().cloned().collect();
    for t in &removed.align_to(&old.attributes).unwrap().tuples {
        assert!(
            old_set.contains(t),
            "{context}: E∇ ⊄ E(D) at {t} for {expr}"
        );
    }
    for t in &added.align_to(&old.attributes).unwrap().tuples {
        assert!(
            !old_set.contains(t),
            "{context}: E∆ ∩ E(D) ∋ {t} for {expr}"
        );
    }

    let maintained = maintain(expr, &old, db, delta).unwrap();
    let mut got = maintained.tuples;
    let mut want = expected.align_to(&maintained.attributes).unwrap().tuples;
    got.sort();
    want.sort();
    assert_eq!(got, want, "{context}: maintenance ≠ recompute for {expr}");
}

#[test]
fn maintain_equals_recompute_on_random_expressions_and_updates() {
    for seed in 0..60u64 {
        let db = small_db(seed);
        let mut rng = SplitMix64::seed_from_u64(0xA1_5E_ED ^ seed);
        let mut fresh = 900_000usize;
        for case in 0..3 {
            let expr = gen_expr(&mut rng, 1 + (case + seed as usize) % 3);
            let delta = gen_delta(&mut rng, &db, &mut fresh);
            if delta.is_empty() {
                continue;
            }
            check_propagation(&expr, &db, &delta, &format!("seed {seed} case {case}"));
        }
    }
}

#[test]
fn empty_updates_are_a_fixed_point() {
    for seed in 0..12u64 {
        let db = small_db(seed);
        let mut rng = SplitMix64::seed_from_u64(seed);
        let expr = gen_expr(&mut rng, 2);
        let empty = Delta::new();
        check_propagation(&expr, &db, &empty, &format!("seed {seed}"));
        // And explicitly: maintenance of the empty update changes nothing.
        let old = evaluate_ra(&expr, &db).unwrap();
        let maintained = maintain(&expr, &old, &db, &empty).unwrap();
        assert_eq!(maintained.tuples, old.tuples);
    }
}

/// A random batch of deltas, each valid against the instance as evolved by
/// its predecessors — with an extra tail delta that *reinserts* tuples
/// deleted earlier in the batch (the cross-delta cancellation case) —
/// together with the sequential final state.
fn gen_batch(rng: &mut SplitMix64, db: &Database, len: usize) -> (Vec<Delta>, Database) {
    let mut fresh = 900_000usize;
    let mut evolving = db.clone();
    let mut batch: Vec<Delta> = Vec::with_capacity(len + 1);
    for _ in 0..len {
        let delta = gen_delta(rng, &evolving, &mut fresh);
        if delta.is_empty() {
            continue;
        }
        delta.apply_in_place(&mut evolving).unwrap();
        batch.push(delta);
    }
    // Delete-then-reinsert across the batch: bring back some tuples an
    // earlier delta removed (they are absent from `evolving`, so the
    // reinsertion is valid — and must cancel against the earlier deletion
    // when the batch folds to its net effect).
    let mut reinsert = Delta::new();
    let mut planned: BTreeSet<(String, Tuple)> = BTreeSet::new();
    for delta in &batch {
        for (relation, rd) in delta.iter() {
            for t in &rd.deletions {
                if !evolving.relation(relation).unwrap().contains(t)
                    && planned.insert((relation.clone(), t.clone()))
                    && rng.gen_range(0..2usize) == 0
                {
                    reinsert.insert(relation.clone(), t.clone());
                }
            }
        }
    }
    if !reinsert.is_empty() {
        reinsert.apply_in_place(&mut evolving).unwrap();
        batch.push(reinsert);
    }
    (batch, evolving)
}

#[test]
fn merged_batch_applied_once_equals_batch_applied_delta_by_delta() {
    for seed in 0..25u64 {
        let db = small_db(seed);
        let mut rng = SplitMix64::seed_from_u64(0xBA7C4 ^ seed);
        let (batch, sequential) = gen_batch(&mut rng, &db, 2 + seed as usize % 5);
        if batch.is_empty() {
            continue;
        }

        // The merged delta applied ONCE equals the sequential chain.
        let merged = Delta::merge(&db, &batch).unwrap();
        let at_once = merged.apply(&db).unwrap();
        assert_eq!(at_once.size(), sequential.size(), "seed {seed}");
        assert!(at_once.contains_database(&sequential), "seed {seed}");

        // Same through an epoch-versioned snapshot store: one commit of the
        // merged delta lands on the same final state as N commits.
        let one_by_one = SnapshotStore::new(db.clone());
        for delta in &batch {
            one_by_one.commit(delta).unwrap();
        }
        let grouped = SnapshotStore::new(db.clone());
        grouped.commit(&merged).unwrap();
        assert_eq!(grouped.epoch(), 1);
        assert_eq!(one_by_one.epoch(), batch.len() as u64);
        let a = one_by_one.pin().to_database();
        let b = grouped.pin().to_database();
        assert_eq!(a.size(), b.size(), "seed {seed}");
        assert!(a.contains_database(&b), "seed {seed}");

        // And on a hash-partitioned sharded store, where the merged delta
        // additionally validates against the pinned sharded view itself.
        for shards in [2usize, 3] {
            let partition = si_workload::social_partition_map();
            let one_by_one =
                ShardedSnapshotStore::new(db.clone(), partition.clone(), shards).unwrap();
            for delta in &batch {
                one_by_one.commit(delta).unwrap();
            }
            let grouped = ShardedSnapshotStore::new(db.clone(), partition, shards).unwrap();
            let remerged = Delta::merge(&*grouped.pin(), &batch).unwrap();
            assert_eq!(remerged, merged, "seed {seed} shards {shards}");
            grouped.commit(&remerged).unwrap();
            let a = one_by_one.pin().to_database();
            let b = grouped.pin().to_database();
            assert_eq!(a.size(), b.size(), "seed {seed} shards {shards}");
            assert!(a.contains_database(&b), "seed {seed} shards {shards}");
            assert_eq!(b.size(), sequential.size());
        }
    }
}

#[test]
fn delete_then_reinsert_round_trips() {
    for seed in 0..20u64 {
        let db = small_db(seed);
        let mut rng = SplitMix64::seed_from_u64(0xDE1E7E ^ seed);
        let expr = gen_expr(&mut rng, 1 + seed as usize % 3);
        // Pick an existing tuple from a base relation the expression uses.
        let relations = expr.base_relations();
        let relation = relations[rng.gen_range(0..relations.len())].clone();
        let rel = db.relation(&relation).unwrap();
        if rel.is_empty() {
            continue;
        }
        let t = rel
            .iter()
            .nth(rng.gen_range(0..rel.len()))
            .cloned()
            .unwrap();

        let original = evaluate_ra(&expr, &db).unwrap();
        // Step 1: delete; maintenance must match the shrunken instance.
        let deletion = Delta::deletions_from(&relation, vec![t.clone()]);
        check_propagation(&expr, &db, &deletion, &format!("seed {seed} delete"));
        let after_delete = maintain(&expr, &original, &db, &deletion).unwrap();
        let shrunk = deletion.apply(&db).unwrap();
        // Step 2: reinsert the same tuple; the maintained answers must
        // return to the original answers (as a set).
        let reinsertion = Delta::insertions_into(&relation, vec![t]);
        check_propagation(
            &expr,
            &shrunk,
            &reinsertion,
            &format!("seed {seed} reinsert"),
        );
        let restored = maintain(&expr, &after_delete, &shrunk, &reinsertion).unwrap();
        let mut got: Vec<Tuple> = restored.tuples;
        let mut want: Vec<Tuple> = original.align_to(&restored.attributes).unwrap().tuples;
        got.sort();
        want.sort();
        assert_eq!(
            got, want,
            "seed {seed}: delete-then-reinsert must round-trip for {expr}"
        );
    }
}
