//! Differential suite for the serving engine's maintenance path: an engine
//! **with** the materialized answer cache, an engine **without** it, an
//! engine over a **3-shard hash-partitioned store** (materialization on, so
//! its maintenance runs per shard-local delta), a **batched** engine
//! (group-commit path plus shared-fetch request batching: queries between
//! commits are served through `execute_batch`, so identical hot requests
//! group onto one shared fetch), a **durable** engine (every commit logged
//! to a write-ahead log on a simulated disk; the engine is repeatedly
//! dropped — "killed" — between commit rounds and rebuilt with
//! `Engine::recover`, resuming at the same epoch with a cold materialized
//! cache that re-warms), a **subscribing** engine (the reactive plane:
//! every shape × hot-parameter pair is held as a live `ObservableQuery`,
//! and its answers are never queried — they are *replayed* purely from the
//! pushed update stream, the fenced initial `Resync` plus per-commit
//! `ChangeSet`s; a third of the seeds run one-slot subscriber queues and
//! drain only every third commit, so the stream is carried through
//! overflow resyncs instead), and a naive single-threaded oracle database
//! must produce identical answers for every query at every epoch of every
//! seeded schedule — and the batched arm's epochs, materialized flags and
//! materialized-hit counts must match the unbatched materializing arm
//! exactly.
//!
//! Each seed deterministically generates the whole scenario — the instance
//! (a seeded social database of varying size/fanout), the access
//! constraints (plain Facebook, serving, or serving plus an extra `visit`
//! rid-constraint — plan spaces differ across variants), the CQ shape pool
//! (Q1, an alpha/constant variant, Q2, and a two-atom visit query; only
//! shapes plannable under the variant), and the commit batches (mixed
//! insert/delete `visit`/`friend`/`person` deltas valid against the
//! evolving instance).  The schedule interleaves commits with repeated hot
//! queries, so materialized answers are admitted, *maintained* across both
//! update polarities (including delete-then-reinsert sequences), evicted
//! and re-admitted — while the plan-only engine and the oracle advance
//! through exactly the same epochs.
//!
//! CI runs this suite in `--release` as well (like the snapshot-isolation
//! suite): the maintenance path is lock-heavy and release mode is where
//! ordering bugs surface.

use si_access::{AccessConstraint, AccessSchema};
use si_data::{Database, Delta, Tuple, Value};
use si_durability::SimDisk;
use si_engine::{AnswerUpdate, Engine, EngineConfig, ObservableQuery, Request};
use si_query::{evaluate_cq, parse_cq, ConjunctiveQuery};
use si_workload::rng::SplitMix64;
use si_workload::{serving_access_schema, social_partition_map, SocialConfig, SocialGenerator};
use std::collections::BTreeSet;

const SEEDS: u64 = 120;
const OPS_PER_SEED: usize = 32;

fn q1() -> ConjunctiveQuery {
    si_workload::q1()
}

fn q1_la() -> ConjunctiveQuery {
    parse_cq(r#"Z(a, b) :- friend(a, i), person(i, b, "LA")"#).unwrap()
}

fn q2() -> ConjunctiveQuery {
    si_workload::q2()
}

fn qv() -> ConjunctiveQuery {
    parse_cq("Qv(p, rid) :- friend(p, id), visit(id, rid)").unwrap()
}

/// The per-seed scenario: instance, access constraints, plannable shapes.
fn scenario(seed: u64) -> (Database, AccessSchema, Vec<(ConjunctiveQuery, String)>) {
    let db = SocialGenerator::new(SocialConfig {
        persons: 24 + (seed as usize % 5) * 8,
        restaurants: 6 + (seed as usize % 3) * 4,
        avg_friends: 4 + (seed as usize % 4),
        avg_visits: 2 + (seed as usize % 3),
        seed,
        ..SocialConfig::default()
    })
    .generate();
    let full = vec![
        (q1(), "p".to_string()),
        (q1_la(), "a".to_string()),
        (q2(), "p".to_string()),
        (qv(), "p".to_string()),
    ];
    let (access, shapes) = match seed % 4 {
        // Plain Facebook constraints: Q2/Qv are not plannable (no visit
        // constraint), so the pool shrinks to the person-joining shapes.
        0 => (
            si_access::facebook_access_schema(5_000),
            vec![(q1(), "p".to_string()), (q1_la(), "a".to_string())],
        ),
        // Serving constraints plus an extra rid-keyed visit constraint: the
        // planner has more access paths to choose from.
        1 => (
            serving_access_schema(5_000).with(AccessConstraint::new("visit", &["rid"], 200, 1)),
            full,
        ),
        // Serving constraints with varying caps (static bounds differ).
        _ => (serving_access_schema(200 + (seed as usize % 7) * 100), full),
    };
    (db, access, shapes)
}

/// One valid update batch against the current oracle state: 1–3 tuples of
/// mixed polarity over `visit`, `friend` and (insert-only) `person`.
/// `restaurant_ids` are the *actual* ids from the `restr` relation's first
/// column, so insertions onto existing restaurants really join `restr` (and
/// can grow Q2 answers through the insertion-maintenance path).
fn gen_delta(
    rng: &mut SplitMix64,
    oracle: &Database,
    restaurant_ids: &[Value],
    fresh: &mut usize,
) -> Delta {
    let mut delta = Delta::new();
    let mut planned: BTreeSet<(String, Tuple)> = BTreeSet::new();
    let persons = oracle
        .relation("person")
        .map(|r| r.len())
        .unwrap_or(1)
        .max(1);
    let tuples = 1 + rng.gen_range(0..3usize);
    for _ in 0..tuples {
        let kind = rng.gen_range(0..100u8);
        if kind < 30 {
            // visit insertion (half onto existing restaurants).
            let id = Value::from(rng.gen_range(0..persons));
            let rid = if !restaurant_ids.is_empty() && rng.gen_range(0..2usize) == 0 {
                restaurant_ids[rng.gen_range(0..restaurant_ids.len())]
            } else {
                *fresh += 1;
                Value::from(*fresh)
            };
            let t: Tuple = vec![id, rid].into();
            if !oracle.contains("visit", &t).unwrap()
                && planned.insert(("visit".to_string(), t.clone()))
            {
                delta.insert("visit", t);
            }
        } else if kind < 50 {
            // visit deletion.
            let rel = oracle.relation("visit").unwrap();
            if !rel.is_empty() {
                let i = rng.gen_range(0..rel.len());
                if let Some(t) = rel.iter().nth(i).cloned() {
                    if planned.insert(("visit".to_string(), t.clone())) {
                        delta.delete("visit", t);
                    }
                }
            }
        } else if kind < 75 {
            // friend insertion.
            let a = Value::from(rng.gen_range(0..persons));
            let b = Value::from(rng.gen_range(0..persons));
            let t: Tuple = vec![a, b].into();
            if !oracle.contains("friend", &t).unwrap()
                && planned.insert(("friend".to_string(), t.clone()))
            {
                delta.insert("friend", t);
            }
        } else if kind < 90 {
            // friend deletion.
            let rel = oracle.relation("friend").unwrap();
            if !rel.is_empty() {
                let i = rng.gen_range(0..rel.len());
                if let Some(t) = rel.iter().nth(i).cloned() {
                    if planned.insert(("friend".to_string(), t.clone())) {
                        delta.delete("friend", t);
                    }
                }
            }
        } else {
            // person insertion with a fresh id.
            *fresh += 1;
            let city = if rng.gen_range(0..2usize) == 0 {
                "NYC"
            } else {
                "LA"
            };
            let t: Tuple = vec![
                Value::from(*fresh),
                Value::str(format!("p{fresh}")),
                Value::str(city),
            ]
            .into();
            delta.insert("person", t);
        }
    }
    delta
}

fn naive_answers(query: &ConjunctiveQuery, parameter: &str, p: i64, db: &Database) -> Vec<Tuple> {
    let bound = query.bind(&[(parameter.to_string(), Value::int(p))]);
    let mut answers = evaluate_cq(&bound, db, None).unwrap();
    answers.sort();
    answers
}

/// One subscription the subscribing arm replays: the live handle, the
/// answer state rebuilt purely from its update stream, and what it
/// subscribed to (for the oracle check).
struct ReplayedSubscription {
    handle: ObservableQuery,
    state: Vec<Tuple>,
    last_epoch: u64,
    query: ConjunctiveQuery,
    parameter: String,
    p: i64,
}

/// Subscribes `engine` to every shape at every hot parameter and replays
/// each fenced initial `Resync` into the starting state — which must equal
/// the cold answer on the un-updated oracle.
fn subscribe_all(
    engine: &Engine,
    shapes: &[(ConjunctiveQuery, String)],
    hot: i64,
    oracle: &Database,
    seed: u64,
) -> Vec<ReplayedSubscription> {
    let mut subs = Vec::new();
    for (query, parameter) in shapes {
        for p in 0..hot {
            let request = Request::new(query.clone(), vec![parameter.clone()], vec![Value::int(p)]);
            let handle = engine.subscribe(&request).unwrap_or_else(|e| {
                panic!(
                    "subscribe failed: seed {seed} query {} p {p}: {e:?}",
                    query.name
                )
            });
            let mut sub = ReplayedSubscription {
                handle,
                state: Vec::new(),
                last_epoch: 0,
                query: query.clone(),
                parameter: parameter.clone(),
                p,
            };
            let (changes, resyncs) = drain_replay(&mut sub, oracle, seed, 0);
            assert_eq!(resyncs, 1, "registration queues exactly one resync");
            assert_eq!(changes, 0, "no change-set can precede registration");
            subs.push(sub);
        }
    }
    subs
}

/// Drains one subscriber's queue into its replayed state and checks the
/// replay invariant: epochs never regress, and the rebuilt state equals
/// the cold answer on the oracle.  Returns (change-sets, resyncs) drained.
fn drain_replay(
    sub: &mut ReplayedSubscription,
    oracle: &Database,
    seed: u64,
    op: usize,
) -> (u64, u64) {
    let mut changes = 0u64;
    let mut resyncs = 0u64;
    for update in sub.handle.drain() {
        assert!(
            update.epoch() >= sub.last_epoch,
            "subscription epoch regressed: seed {seed} op {op} query {} p {}",
            sub.query.name,
            sub.p
        );
        sub.last_epoch = update.epoch();
        match &update {
            AnswerUpdate::Changes(_) => changes += 1,
            AnswerUpdate::Resync { .. } => resyncs += 1,
        }
        update.apply_to(&mut sub.state);
    }
    let expected = naive_answers(&sub.query, &sub.parameter, sub.p, oracle);
    assert_eq!(
        sub.state, expected,
        "subscribing arm replay diverged: seed {seed} op {op} query {} p {}",
        sub.query.name, sub.p
    );
    (changes, resyncs)
}

/// One query the batched arm still owes: the request plus everything the
/// unbatched materializing arm observed when it served the same op (expected
/// answers, epoch, materialized flag).
struct PendingBatched {
    op: usize,
    request: Request,
    expected: Vec<Tuple>,
    epoch: u64,
    materialized: bool,
}

/// Serve every buffered query through one `execute_batch` call (identical
/// requests in the run group onto a shared fetch) and check each response
/// against what the unbatched arm produced for the same op.
fn drain_batched(engine: &Engine, pending: &mut Vec<PendingBatched>, seed: u64) {
    if pending.is_empty() {
        return;
    }
    let requests: Vec<Request> = pending.iter().map(|p| p.request.clone()).collect();
    let responses = engine.execute_batch(&requests);
    for (check, response) in pending.drain(..).zip(responses) {
        let op = check.op;
        let response = response.unwrap_or_else(|e| {
            panic!("batched engine errored: seed {seed} op {op}: {e:?}");
        });
        let mut got = response.answers.clone();
        got.sort();
        assert_eq!(
            got, check.expected,
            "batched engine diverged: seed {seed} op {op}"
        );
        assert_eq!(
            response.epoch, check.epoch,
            "batched epoch diverged: seed {seed} op {op}"
        );
        assert_eq!(
            response.materialized, check.materialized,
            "batched materialized flag diverged: seed {seed} op {op}"
        );
    }
}

#[test]
fn engines_with_and_without_materialization_agree_with_the_oracle() {
    let mut queries_checked = 0u64;
    let mut materialized_hits = 0u64;
    let mut sharded_materialized_hits = 0u64;
    let mut sharded_maintenance_runs = 0u64;
    let mut maintenance_runs = 0u64;
    let mut maintenance_fallbacks = 0u64;
    let mut evictions = 0u64;
    let mut batched_group_members = 0u64;
    let mut batched_shared_fetches = 0u64;
    let mut recoveries = 0u64;
    let mut durable_materialized_hits = 0u64;
    let mut traced_requests = 0u64;
    let mut subscription_changes = 0u64;
    let mut streamed_resyncs = 0u64;
    let mut subscription_deliveries = 0u64;
    let mut subscription_overflows = 0u64;

    for seed in 0..SEEDS {
        let (db, access, shapes) = scenario(seed);
        let with = Engine::new(
            db.clone(),
            access.clone(),
            EngineConfig {
                workers: 1,
                materialize_capacity: 32,
                materialize_after: 1 + seed % 2,
                stats_drift_threshold: 0.1,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let without = Engine::new(
            db.clone(),
            access.clone(),
            EngineConfig {
                workers: 1,
                stats_drift_threshold: 0.1,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        // Seventh arm: identical config to `with` but with request tracing
        // on at sample rate 1 — the observability plane must not perturb
        // answers, epochs, or materialization, and every served request
        // must emit a trace.
        let traced = Engine::new(
            db.clone(),
            access.clone(),
            EngineConfig {
                workers: 1,
                materialize_capacity: 32,
                materialize_after: 1 + seed % 2,
                stats_drift_threshold: 0.1,
                trace_sample_every: 1,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        // Eighth arm: a subscribing engine — same materialization config,
        // but every shape × hot-parameter pair holds a live
        // `ObservableQuery`.  Its answers are never queried; they are
        // replayed from the push stream and checked against the oracle
        // after every drain.  A third of the seeds run a one-slot
        // subscriber queue and drain only every third commit, so the
        // stream must survive overflow (drop-to-resync) to stay exact.
        let tight_queue = seed % 3 == 0;
        let subscribing = Engine::new(
            db.clone(),
            access.clone(),
            EngineConfig {
                workers: 1,
                materialize_capacity: 32,
                materialize_after: 1 + seed % 2,
                stats_drift_threshold: 0.1,
                subscriber_queue_capacity: if tight_queue { 1 } else { 64 },
                ..EngineConfig::default()
            },
        )
        .unwrap();
        // Fifth arm: the same schedule and materialization config as `with`,
        // but runs of consecutive queries are buffered and served through
        // `execute_batch` (shared-fetch grouping), and commits go through
        // the group-commit path as batches of one — epochs stay aligned.
        let batched = Engine::new(
            db.clone(),
            access.clone(),
            EngineConfig {
                workers: 1,
                materialize_capacity: 32,
                materialize_after: 1 + seed % 2,
                stats_drift_threshold: 0.1,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        // Fourth arm: the same schedule over a 3-shard hash-partitioned
        // store, with materialization on — every commit splits by route and
        // maintained answers propagate per shard-local delta.
        let sharded = Engine::new_sharded(
            db.clone(),
            access.clone(),
            social_partition_map(),
            3,
            EngineConfig {
                workers: 1,
                materialize_capacity: 32,
                materialize_after: 1 + seed % 2,
                stats_drift_threshold: 0.1,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        // Sixth arm: a durable engine over a simulated disk.  Every commit
        // is logged write-ahead; between commit rounds the engine is
        // dropped and recovered from the disk, and must resume at the same
        // epoch with identical answers.  Its materialized cache restarts
        // cold on every recovery (derived state is never trusted from
        // disk), so only answers and epochs — not materialized flags — are
        // compared against the other arms.
        let durable_config = EngineConfig {
            workers: 1,
            materialize_capacity: 32,
            materialize_after: 1 + seed % 2,
            stats_drift_threshold: 0.1,
            ..EngineConfig::default()
        };
        let disk = SimDisk::new();
        let mut durable = Engine::new_durable(
            db.clone(),
            access.clone(),
            Box::new(disk.clone()),
            durable_config.clone(),
        )
        .unwrap();
        // Kill decisions come from their own stream so the shared schedule
        // rng stays byte-for-byte what the other arms consume.
        let mut kill_rng = SplitMix64::seed_from_u64(0xDEAD_D15C ^ seed);
        let mut oracle = db;
        let mut rng = SplitMix64::seed_from_u64(0xD1FF_E4E0 ^ seed);
        let mut fresh = 5_000_000usize;
        let hot = 4i64;
        // The actual restaurant ids (column 0 of `restr` — the generator
        // offsets them, so row indices would never join).
        let restaurant_ids: Vec<Value> = oracle
            .relation("restr")
            .map(|r| r.iter().filter_map(|t| t.get(0).copied()).collect())
            .unwrap_or_default();

        let mut pending: Vec<PendingBatched> = Vec::new();
        let mut subs = subscribe_all(&subscribing, &shapes, hot, &oracle, seed);
        let mut commits_since_drain = 0usize;

        for op in 0..OPS_PER_SEED {
            if rng.gen_range(0..100u8) < 35 {
                let delta = gen_delta(&mut rng, &oracle, &restaurant_ids, &mut fresh);
                if delta.is_empty() {
                    continue;
                }
                // The batched arm must serve its buffered queries against the
                // pre-commit snapshot, or its epochs drift from the others.
                drain_batched(&batched, &mut pending, seed);
                let epoch_with = with.commit(&delta).unwrap();
                let epoch_without = without.commit(&delta).unwrap();
                let epoch_sharded = sharded.commit(&delta).unwrap();
                let epoch_batched = batched.commit(&delta).unwrap();
                let epoch_durable = durable.commit(&delta).unwrap();
                let epoch_traced = traced.commit(&delta).unwrap();
                let epoch_subscribing = subscribing.commit(&delta).unwrap();
                assert_eq!(epoch_with, epoch_without, "seed {seed} op {op}");
                assert_eq!(epoch_with, epoch_traced, "seed {seed} op {op}");
                assert_eq!(epoch_with, epoch_sharded, "seed {seed} op {op}");
                assert_eq!(epoch_with, epoch_batched, "seed {seed} op {op}");
                assert_eq!(epoch_with, epoch_durable, "seed {seed} op {op}");
                assert_eq!(epoch_with, epoch_subscribing, "seed {seed} op {op}");
                delta.apply_in_place(&mut oracle).unwrap();

                // The subscribing arm replays its streams: after every
                // commit on roomy queues, only every third commit on the
                // one-slot seeds — whose queues must stay bounded (and
                // overflow into resyncs) in between.
                commits_since_drain += 1;
                if tight_queue {
                    for sub in &subs {
                        assert!(
                            sub.handle.queue_len() <= 1,
                            "bounded queue exceeded its capacity: seed {seed} op {op}"
                        );
                    }
                }
                if !tight_queue || commits_since_drain >= 3 {
                    commits_since_drain = 0;
                    for sub in subs.iter_mut() {
                        let (changes, resyncs) = drain_replay(sub, &oracle, seed, op);
                        subscription_changes += changes;
                        streamed_resyncs += resyncs;
                    }
                }

                // Kill the durable arm between commit rounds (~every third
                // commit): drop the engine, recover from the disk, and the
                // recovered engine must sit at the same epoch with an empty
                // (correctly cold) materialized cache.
                if kill_rng.gen_range(0..3u8) == 0 {
                    durable = {
                        drop(durable);
                        Engine::recover(
                            Box::new(disk.clone()),
                            access.clone(),
                            durable_config.clone(),
                        )
                        .unwrap_or_else(|e| panic!("recovery failed: seed {seed} op {op}: {e:?}"))
                    };
                    recoveries += 1;
                    assert_eq!(
                        durable.epoch(),
                        epoch_with,
                        "recovered epoch diverged: seed {seed} op {op}"
                    );
                    assert_eq!(
                        durable.metrics().materialized_entries,
                        0,
                        "recovered cache must start cold: seed {seed} op {op}"
                    );
                }
            } else {
                let (query, parameter) = &shapes[rng.gen_range(0..shapes.len())];
                let p = rng.gen_range(0..hot as usize) as i64;
                let request =
                    Request::new(query.clone(), vec![parameter.clone()], vec![Value::int(p)]);
                let a = with.execute(&request).unwrap();
                let b = without.execute(&request).unwrap();
                let c = sharded.execute(&request).unwrap();
                let d = durable.execute(&request).unwrap();
                let t = traced.execute(&request).unwrap();
                let expected = naive_answers(query, parameter, p, &oracle);
                let mut got_a = a.answers.clone();
                got_a.sort();
                let mut got_b = b.answers.clone();
                got_b.sort();
                let mut got_c = c.answers.clone();
                got_c.sort();
                assert_eq!(
                    got_a, expected,
                    "materializing engine diverged: seed {seed} op {op} \
                     query {} p {p} epoch {} (materialized: {})",
                    query.name, a.epoch, a.materialized
                );
                assert_eq!(
                    got_b, expected,
                    "plan-path engine diverged: seed {seed} op {op} query {} p {p} epoch {}",
                    query.name, b.epoch
                );
                assert_eq!(
                    got_c, expected,
                    "3-shard engine diverged: seed {seed} op {op} query {} p {p} epoch {} \
                     (materialized: {})",
                    query.name, c.epoch, c.materialized
                );
                let mut got_d = d.answers.clone();
                got_d.sort();
                assert_eq!(
                    got_d, expected,
                    "durable engine diverged: seed {seed} op {op} query {} p {p} epoch {} \
                     (materialized: {})",
                    query.name, d.epoch, d.materialized
                );
                assert_eq!(a.epoch, b.epoch, "seed {seed} op {op}");
                assert_eq!(a.epoch, c.epoch, "seed {seed} op {op}");
                assert_eq!(a.epoch, d.epoch, "seed {seed} op {op}");
                let mut got_t = t.answers.clone();
                got_t.sort();
                assert_eq!(
                    got_t, expected,
                    "traced engine diverged: seed {seed} op {op} query {} p {p} epoch {}",
                    query.name, t.epoch
                );
                assert_eq!(a.epoch, t.epoch, "seed {seed} op {op}");
                assert_eq!(
                    a.materialized, t.materialized,
                    "traced materialized flag diverged: seed {seed} op {op}"
                );
                if d.materialized {
                    durable_materialized_hits += 1;
                }
                // The sharded arm's access accounting mirrors the plan-path
                // engine whenever neither was served from maintained answers
                // (materialized hits touch zero base data by design).
                if !c.materialized {
                    assert_eq!(
                        c.accesses, b.accesses,
                        "sharded accounting diverged: seed {seed} op {op}"
                    );
                }
                queries_checked += 1;
                if a.materialized {
                    materialized_hits += 1;
                }
                if c.materialized {
                    sharded_materialized_hits += 1;
                }
                pending.push(PendingBatched {
                    op,
                    request,
                    expected,
                    epoch: a.epoch,
                    materialized: a.materialized,
                });
            }
        }
        drain_batched(&batched, &mut pending, seed);
        // Final drain: whatever the last commits queued must still replay
        // to the oracle's final state.
        for sub in subs.iter_mut() {
            let (changes, resyncs) = drain_replay(sub, &oracle, seed, OPS_PER_SEED);
            subscription_changes += changes;
            streamed_resyncs += resyncs;
        }
        let msub = subscribing.metrics();
        assert_eq!(
            msub.subscribers,
            subs.len() as u64,
            "every subscription handle is still registered: seed {seed}"
        );
        assert_eq!(
            msub.subscription_queue_depth, 0,
            "nothing left queued after the final drain: seed {seed}"
        );
        subscription_deliveries += msub.subscription_deliveries;
        subscription_overflows += msub.subscription_overflows;
        let mb = batched.metrics();
        assert_eq!(
            mb.materialized_hits,
            with.metrics().materialized_hits,
            "batched materialized-hit count diverged: seed {seed}"
        );
        batched_group_members += mb.batched_requests;
        batched_shared_fetches += mb.shared_fetches;
        // At sample rate 1 the traced arm accounts for 100% of its served
        // requests: exactly one trace per request, no more, no less.
        let mt = traced.metrics();
        assert_eq!(
            mt.traces_emitted, mt.requests,
            "tracing must cover every served request: seed {seed}"
        );
        traced_requests += mt.requests;
        let m = with.metrics();
        maintenance_runs += m.maintenance_runs;
        maintenance_fallbacks += m.maintenance_fallbacks;
        evictions += m.materialized_evictions;
        sharded_maintenance_runs += sharded.metrics().maintenance_runs;
        assert_eq!(
            without.metrics().materialized_hits,
            0,
            "the control engine must never materialize"
        );
        assert_eq!(
            sharded.metrics().maintenance_accesses.full_scans,
            0,
            "sharded maintenance must stay bounded"
        );
    }

    // The suite only means something if the interesting paths actually ran.
    assert!(
        queries_checked > 1_500,
        "only {queries_checked} queries checked"
    );
    assert!(
        materialized_hits > 200,
        "only {materialized_hits} materialized hits across the suite"
    );
    assert!(
        maintenance_runs > 500,
        "only {maintenance_runs} maintenance runs across the suite"
    );
    // The sharded arm's maintenance path really ran: materialized hits were
    // served after shard-split deltas propagated into admitted answers.
    assert!(
        sharded_materialized_hits > 200,
        "only {sharded_materialized_hits} sharded materialized hits across the suite"
    );
    assert!(
        sharded_maintenance_runs > 500,
        "only {sharded_maintenance_runs} sharded maintenance runs across the suite"
    );
    // The batched arm really grouped requests: hot parameters repeat within
    // runs of consecutive queries, so shared fetches must have happened.
    assert!(
        batched_group_members > 100,
        "only {batched_group_members} batched group members across the suite"
    );
    assert!(
        batched_shared_fetches > 20,
        "only {batched_shared_fetches} shared fetches across the suite"
    );
    // The durable arm really was killed and its cache really re-warmed:
    // recoveries happened throughout, and materialized answers were
    // re-admitted and served again after restarting cold.
    assert!(recoveries > 100, "only {recoveries} recoveries ran");
    assert!(
        durable_materialized_hits > 100,
        "only {durable_materialized_hits} durable materialized hits across the suite"
    );
    // The traced arm really served (and traced) the full schedule.
    assert!(
        traced_requests > 1_500,
        "only {traced_requests} traced requests across the suite"
    );
    // The subscribing arm really streamed: incremental change-sets carried
    // most epochs, and the one-slot seeds really overflowed — replay
    // stayed exact through both delivery modes.
    assert!(
        subscription_changes > 300,
        "only {subscription_changes} streamed change-sets across the suite"
    );
    // (The heavy overflow floor lives in
    // `overflowed_subscribers_replay_to_the_exact_answer`; here the
    // schedule only has to reach the path at all.)
    assert!(
        subscription_overflows > 0,
        "the one-slot seeds never overflowed a subscriber queue"
    );
    assert!(
        streamed_resyncs > 0,
        "overflows must surface as resync markers in the drained streams"
    );
    println!(
        "differential: {queries_checked} queries checked, 0 divergent \
         ({materialized_hits} materialized hits, {maintenance_runs} maintenance runs, \
         {maintenance_fallbacks} fallbacks, {evictions} evictions; 3-shard arm: \
         {sharded_materialized_hits} materialized hits, {sharded_maintenance_runs} \
         maintenance runs; batched arm: {batched_group_members} grouped requests, \
         {batched_shared_fetches} shared fetches; durable arm: {recoveries} recoveries, \
         {durable_materialized_hits} materialized hits after cold restarts; traced arm: \
         {traced_requests} requests, every one traced; subscribing arm: \
         {subscription_changes} change-sets replayed, {streamed_resyncs} resyncs, \
         {subscription_overflows} overflows, {subscription_deliveries} deliveries)"
    );
}

/// Property: a subscriber's bounded queue never exceeds its capacity under
/// a commit storm with no draining, and however many overflows collapse
/// the stream, replaying what the subscriber *does* receive reconstructs
/// the exact cold answer — a slow subscriber loses granularity, never
/// correctness.
#[test]
fn overflowed_subscribers_replay_to_the_exact_answer() {
    let mut overflows = 0u64;
    for seed in 0..40u64 {
        let (db, access, shapes) = scenario(seed);
        let engine = Engine::new(
            db.clone(),
            access,
            EngineConfig {
                workers: 1,
                materialize_capacity: 32,
                materialize_after: 1,
                stats_drift_threshold: 0.1,
                subscriber_queue_capacity: 2,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let mut oracle = db;
        let restaurant_ids: Vec<Value> = oracle
            .relation("restr")
            .map(|r| r.iter().filter_map(|t| t.get(0).copied()).collect())
            .unwrap_or_default();
        let mut subs = subscribe_all(&engine, &shapes, 4, &oracle, seed);
        let mut rng = SplitMix64::seed_from_u64(0x0F100D ^ seed);
        let mut fresh = 9_000_000usize;
        for op in 0..16 {
            let delta = gen_delta(&mut rng, &oracle, &restaurant_ids, &mut fresh);
            if delta.is_empty() {
                continue;
            }
            engine.commit(&delta).unwrap();
            delta.apply_in_place(&mut oracle).unwrap();
            for sub in &subs {
                assert!(
                    sub.handle.queue_len() <= 2,
                    "queue exceeded its capacity: seed {seed} op {op}"
                );
            }
        }
        // One drain at the end of the storm replays to the final answer.
        for sub in subs.iter_mut() {
            drain_replay(sub, &oracle, seed, 16);
        }
        overflows += engine.metrics().subscription_overflows;
    }
    assert!(
        overflows > 5,
        "only {overflows} overflows across the storm suite"
    );
    println!("overflow property: {overflows} overflows, every replay exact");
}
