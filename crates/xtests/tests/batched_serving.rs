//! Acceptance suite for batched serving: group-commit writes and
//! shared-fetch request batching (the two halves of the batching layer).
//!
//! Twin engines with identical configuration serve identical workloads —
//! one through the batched paths ([`Engine::commit_group`],
//! [`Engine::commit_async`], [`Engine::execute_batch`]), one through the
//! one-at-a-time paths — and every observable output (answers, final store
//! state, epochs-after-the-fact) must agree exactly.  The batched engine
//! must then be *measurably cheaper* on the axes batching targets: one
//! epoch bump and one maintenance pass for a whole commit storm (with at
//! least a 3× reduction in maintenance work), and one executed fetch for a
//! burst of identical requests (with at least a 4× reduction in tuple
//! accesses).
//!
//! CI runs this suite in `--release` as well: the commit queue and the
//! shared-fetch grouping are concurrency machinery, and release mode is
//! where ordering bugs surface.

use si_data::{Database, MeterSnapshot, Value};
use si_engine::{Engine, EngineConfig, Request};
use si_query::{evaluate_cq, parse_cq, ConjunctiveQuery};
use si_workload::{
    burst_requests, serving_access_schema, small_commit_storm, SocialConfig, SocialGenerator,
};
use std::time::Duration;

fn social_db(seed: u64) -> Database {
    SocialGenerator::new(SocialConfig {
        persons: 64,
        restaurants: 12,
        avg_friends: 6,
        avg_visits: 3,
        seed,
        ..SocialConfig::default()
    })
    .generate()
}

/// The two-atom visit query: its answers depend on `visit`, the relation a
/// [`small_commit_storm`] toggles, so materialized `Qv` answers are what
/// the maintenance passes of the storm tests actually have to maintain.
fn qv() -> ConjunctiveQuery {
    parse_cq("Qv(p, rid) :- friend(p, id), visit(id, rid)").unwrap()
}

fn qv_request(p: i64) -> Request {
    Request::new(qv(), vec!["p".into()], vec![Value::int(p)])
}

fn naive_qv(p: i64, db: &Database) -> Vec<si_data::Tuple> {
    let bound = qv().bind(&[("p".to_string(), Value::int(p))]);
    let mut answers = evaluate_cq(&bound, db, None).unwrap();
    answers.sort();
    answers
}

/// A materializing engine warmed on `Qv(p)` for the hot persons, so commit
/// maintenance has admitted answers to propagate deltas into.
fn warmed_engine(db: &Database, hot: i64) -> Engine {
    let engine = Engine::new(
        db.clone(),
        serving_access_schema(5_000),
        EngineConfig {
            workers: 1,
            materialize_capacity: 32,
            materialize_after: 1,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    for p in 0..hot {
        engine.execute(&qv_request(p)).unwrap();
    }
    assert!(
        engine.metrics().materialized_entries >= hot as u64,
        "warmup must admit the hot answers"
    );
    engine
}

/// The tentpole acceptance check for group commit: a storm of 64
/// single-tuple commits, applied as ONE group on one engine and
/// one-at-a-time on its twin.  The group pays one epoch bump, one commit
/// pass and one maintenance pass over the (cancelled-down) merged delta —
/// at least 3× less maintenance work than the twin's 64 passes — and both
/// engines end in the identical store state serving identical answers.
#[test]
fn a_64_commit_storm_coalesces_into_one_epoch_bump_and_one_maintenance_pass() {
    let db = social_db(41);
    // 64 toggles over 3 hot facts: 22/21/21 toggles each, so the merged
    // delta cancels down to the 2 odd-count facts — non-empty, which keeps
    // the grouped maintenance pass honest (it really runs, over ≤ 3 tuples).
    let storm = small_commit_storm(&db, 64, 3, 41);
    let hot = 8i64;
    let grouped = warmed_engine(&db, hot);
    let individual = warmed_engine(&db, hot);

    let outcomes = grouped.commit_group(&storm);
    assert_eq!(outcomes.len(), 64);
    for outcome in &outcomes {
        // Every delta lands in the same merged commit: epoch 1 for all.
        assert_eq!(*outcome.as_ref().unwrap(), 1);
    }
    for (i, delta) in storm.iter().enumerate() {
        assert_eq!(individual.commit(delta).unwrap(), (i + 1) as u64);
    }

    let mg = grouped.metrics();
    let mi = individual.metrics();
    // One epoch bump and one commit pass for the whole storm.
    assert_eq!(mg.snapshot_epoch, 1);
    assert_eq!(mg.group_commits, 1);
    assert_eq!(mg.commits, 64);
    assert_eq!(mg.deltas_coalesced, 64);
    assert_eq!(mi.snapshot_epoch, 64);
    assert_eq!(mi.group_commits, 64);
    assert_eq!(mi.deltas_coalesced, 0);
    // One maintenance pass over the merged delta: each of the hot admitted
    // answers is maintained once, not 64 times.  (The twin maintains fewer
    // than 64 × hot: its repeated keep-warm passes accumulate enough cost
    // that the set's cost-based eviction drops hot answers mid-storm —
    // exactly the economics one coalesced pass avoids.)
    assert_eq!(mg.maintenance_runs, hot as u64);
    assert!(
        mi.maintenance_runs > 8 * mg.maintenance_runs,
        "the twin must pay a maintenance pass per commit, ran {}",
        mi.maintenance_runs
    );
    assert_eq!(mg.materialized_evictions, 0);
    assert_eq!(
        mg.materialized_entries, hot as u64,
        "one cheap pass keeps every hot answer warm"
    );
    assert!(
        mi.materialized_evictions > 0,
        "per-commit keep-warm cost must evict some hot answers on the twin"
    );
    // The batched write path is ≥ 3× cheaper on maintenance work (in
    // practice far more: 1 pass over ≤ 3 tuples vs 64 passes over 1 each).
    let grouped_work =
        mg.maintenance_accesses.tuples_fetched + mg.maintenance_accesses.index_probes;
    let individual_work =
        mi.maintenance_accesses.tuples_fetched + mi.maintenance_accesses.index_probes;
    assert!(individual_work > 0, "the twin's maintenance must do work");
    assert!(
        individual_work >= 3 * grouped_work.max(1),
        "group commit saved too little maintenance work: \
         grouped {grouped_work} vs individual {individual_work}"
    );

    // Zero divergence: identical final store state, identical answers.
    let a = grouped.snapshot().to_database();
    let b = individual.snapshot().to_database();
    assert_eq!(a.size(), b.size());
    assert!(a.contains_database(&b));
    let mut oracle = db;
    for delta in &storm {
        delta.apply_in_place(&mut oracle).unwrap();
    }
    for p in 0..hot {
        let expected = naive_qv(p, &oracle);
        for engine in [&grouped, &individual] {
            let response = engine.execute(&qv_request(p)).unwrap();
            let mut got = response.answers.clone();
            got.sort();
            assert_eq!(got, expected, "post-storm answers diverged for p {p}");
        }
    }
}

/// The same storm driven through [`Engine::commit_async`] with a generous
/// linger: the committer thread gathers everything the writers enqueued
/// into one pass, and every ticket resolves to the same epoch.
#[test]
fn an_async_storm_coalesces_under_the_committers_linger() {
    let db = social_db(43);
    let storm = small_commit_storm(&db, 16, 2, 43);
    let engine = Engine::new(
        db,
        serving_access_schema(5_000),
        EngineConfig {
            workers: 1,
            commit_batch_max: 64,
            commit_linger: Duration::from_millis(400),
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let tickets: Vec<_> = storm
        .into_iter()
        .map(|delta| engine.commit_async(delta).unwrap())
        .collect();
    for ticket in tickets {
        assert_eq!(ticket.wait().unwrap(), 1, "every delta shares the epoch");
    }
    let m = engine.metrics();
    assert_eq!(m.commits, 16);
    assert_eq!(m.group_commits, 1, "the linger must gather the whole storm");
    assert_eq!(m.deltas_coalesced, 16);
    assert_eq!(m.snapshot_epoch, 1);
}

/// The tentpole acceptance check for shared-fetch batching: 16 identical
/// concurrent requests served as one batch execute the fetch ONCE, touch at
/// least 4× fewer tuples than the twin serving them one at a time, return
/// bit-identical responses, and the per-response attributed shares sum
/// exactly to what the engine charged globally.
#[test]
fn a_burst_of_identical_requests_shares_one_fetch_with_exact_accounting() {
    let db = social_db(47);
    // A person who verifiably has friends, so the shared fetch is non-empty
    // and the 4× access comparison is meaningful.
    let p = db
        .relation("friend")
        .unwrap()
        .iter()
        .next()
        .and_then(|t| t.get(0).copied())
        .unwrap();
    let p = match p {
        Value::Int(p) => p,
        other => panic!("friend ids are ints, got {other:?}"),
    };
    let requests: Vec<Request> = (0..16).map(|_| qv_request(p)).collect();

    let batched = Engine::new(
        db.clone(),
        serving_access_schema(5_000),
        EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let twin = Engine::new(
        db,
        serving_access_schema(5_000),
        EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        },
    )
    .unwrap();

    let responses: Vec<_> = batched
        .execute_batch(&requests)
        .into_iter()
        .map(|r| r.unwrap())
        .collect();
    let singles: Vec<_> = requests.iter().map(|r| twin.execute(r).unwrap()).collect();

    // Bit-identical responses, against the twin and among themselves.
    for (batch, single) in responses.iter().zip(&singles) {
        assert_eq!(batch.answers, single.answers);
        assert_eq!(batch.epoch, single.epoch);
    }
    assert!(!responses[0].answers.is_empty(), "the burst answer is real");

    let mb = batched.metrics();
    let mt = twin.metrics();
    // The fetch ran once for the whole group.
    assert_eq!(mb.shared_fetches, 1);
    assert_eq!(mb.batched_requests, 16);
    assert_eq!(mb.requests, 16);
    // ≥ 4× fewer tuple accesses than one-at-a-time serving (in practice
    // 16×: the twin pays the identical fetch 16 times).
    assert!(mt.accesses.tuples_fetched > 0);
    assert!(
        4 * mb.accesses.tuples_fetched <= mt.accesses.tuples_fetched,
        "shared fetch saved too little: batched {} vs twin {}",
        mb.accesses.tuples_fetched,
        mt.accesses.tuples_fetched
    );
    // Exact metering: the per-response attributed shares sum to the engine
    // total — the fetch cost is charged once globally, split without loss.
    let attributed = responses
        .iter()
        .fold(MeterSnapshot::default(), |sum, r| sum.plus(&r.accesses));
    assert_eq!(attributed, mb.accesses, "shares must sum to the total");
}

/// End-to-end burst traffic: every wave of the generated stream goes
/// through [`Engine::execute_batch`] on one engine and one-at-a-time on the
/// twin.  All answers agree, and each wave whose group actually executed
/// shares one fetch.
#[test]
fn generated_burst_waves_agree_with_one_at_a_time_serving() {
    let db = social_db(53);
    let waves = 8usize;
    let burst = 8usize;
    let stream = burst_requests(64, waves, burst, 53);
    let config = EngineConfig {
        workers: 1,
        ..EngineConfig::default()
    };
    let batched = Engine::new(db.clone(), serving_access_schema(5_000), config.clone()).unwrap();
    let twin = Engine::new(db, serving_access_schema(5_000), config).unwrap();

    for wave in stream.chunks(burst) {
        let requests: Vec<Request> = wave
            .iter()
            .map(|g| Request::new(g.query.clone(), g.parameters.clone(), g.values.clone()))
            .collect();
        let responses = batched.execute_batch(&requests);
        for (request, response) in requests.iter().zip(responses) {
            let response = response.unwrap();
            let single = twin.execute(request).unwrap();
            assert_eq!(response.answers, single.answers);
            assert_eq!(response.epoch, single.epoch);
        }
    }
    let m = batched.metrics();
    assert_eq!(m.requests, (waves * burst) as u64);
    assert_eq!(m.batched_requests, (waves * burst) as u64);
    // One executed fetch per wave (identical waves still fetch anew per
    // call — grouping is per `execute_batch` call, not a cache).
    assert_eq!(m.shared_fetches, waves as u64);
    // The whole point: far fewer tuples touched than the twin.
    assert!(
        2 * m.accesses.tuples_fetched <= twin.metrics().accesses.tuples_fetched,
        "burst batching saved too little: batched {} vs twin {}",
        m.accesses.tuples_fetched,
        twin.metrics().accesses.tuples_fetched
    );
}
