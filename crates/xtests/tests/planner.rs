//! Cross-crate properties of the cost-based bounded planner.
//!
//! The planner may pick any atom ordering it likes — the answers must not
//! change.  These tests drive the planner end to end (statistics collection →
//! plan enumeration → bounded execution) over randomized databases, queries
//! and parameter values, asserting answer-equivalence with naive evaluation,
//! and pin down the two behaviours the statistics exist to produce: picking
//! index-backed paths over bounded scans, and beating the greedy declared-
//! bound ordering on skewed data.

use si_access::{AccessConstraint, AccessIndexedDatabase, AccessSchema};
use si_core::bounded::{execute_bounded, BoundedPlanner, CostBasedPlanner, PlanStep};
use si_data::schema::social_schema;
use si_data::{tuple, Database, DatabaseSchema, RelationSchema, Tuple, Value};
use si_query::{evaluate_cq, parse_cq, ConjunctiveQuery};
use si_workload::rng::SplitMix64;

/// The acceptance bar: at least 100 seeded cases.
const CASES: u64 = 120;

fn access() -> AccessSchema {
    si_access::facebook_access_schema(5000).with(AccessConstraint::new("visit", &["id"], 1000, 1))
}

/// A small random social database (same shape as the tier-1 properties).
fn random_db(rng: &mut SplitMix64) -> Database {
    let people = rng.gen_range(3usize..9);
    let mut db = Database::empty(social_schema());
    let cities = ["NYC", "LA", "SF"];
    for id in 0..people {
        db.insert(
            "person",
            tuple![id, format!("p{id}"), cities[id % cities.len()]],
        )
        .unwrap();
    }
    for rid in 0..4usize {
        let city = if rid % 2 == 0 { "NYC" } else { "LA" };
        let rating = if rid % 3 == 0 { "A" } else { "B" };
        db.insert("restr", tuple![100 + rid, format!("r{rid}"), city, rating])
            .unwrap();
    }
    for _ in 0..rng.gen_range(0usize..25) {
        let a = rng.gen_range(0usize..people);
        let b = rng.gen_range(0usize..people);
        if a != b {
            db.insert("friend", tuple![a, b]).unwrap();
        }
    }
    for _ in 0..rng.gen_range(0usize..15) {
        let p = rng.gen_range(0usize..people);
        let r = rng.gen_range(0usize..4);
        db.insert("visit", tuple![p, 100 + r]).unwrap();
    }
    db
}

/// Parameterised queries exercised by the property: (query, parameters).
fn query_family() -> Vec<(ConjunctiveQuery, Vec<String>)> {
    vec![
        (
            parse_cq(r#"Q1(p, name) :- friend(p, id), person(id, name, "NYC")"#).unwrap(),
            vec!["p".into()],
        ),
        (
            parse_cq(
                r#"Q2(p, rn) :- friend(p, id), visit(id, rid), person(id, pn, "NYC"), restr(rid, rn, "NYC", "A")"#,
            )
            .unwrap(),
            vec!["p".into()],
        ),
        (
            parse_cq("Qstar(x) :- friend(p, x), friend(q, x)").unwrap(),
            vec!["p".into(), "q".into()],
        ),
        (
            parse_cq(r#"Qv(rn) :- visit(p, rid), restr(rid, rn, city, rate)"#).unwrap(),
            vec!["p".into()],
        ),
    ]
}

fn sorted(mut tuples: Vec<Tuple>) -> Vec<Tuple> {
    tuples.sort();
    tuples
}

/// Planner-chosen plans are answer-equivalent to naive evaluation, across
/// ≥ 100 seeded random databases, queries and parameter values — and agree
/// with the greedy plans they replace.
#[test]
fn cost_based_plans_are_answer_equivalent_to_naive_evaluation() {
    let schema = social_schema();
    let access = access();
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let db = random_db(&mut rng);
        let stats = db.statistics();
        let planner = CostBasedPlanner::new(&schema, &access, &stats);
        let greedy_planner = BoundedPlanner::new(&schema, &access);
        let adb = AccessIndexedDatabase::new(db, access.clone()).unwrap();

        for (q, params) in query_family() {
            let values: Vec<Value> = params
                .iter()
                .map(|_| Value::int(rng.gen_range(0i64..9)))
                .collect();
            let costed = planner
                .plan_costed(&q, &params, None)
                .unwrap_or_else(|e| panic!("seed {seed}: {} unplannable: {e}", q.name));
            let bounded = execute_bounded(&costed.plan, &values, &adb)
                .unwrap_or_else(|e| panic!("seed {seed}: executing {} failed: {e}", q.name));

            let bindings: Vec<(String, Value)> =
                params.iter().cloned().zip(values.iter().cloned()).collect();
            let naive = evaluate_cq(&q.bind(&bindings), adb.database(), None).unwrap();
            assert_eq!(
                sorted(bounded.answers.clone()),
                sorted(naive),
                "seed {seed}: cost-based plan for {} disagrees with naive evaluation",
                q.name
            );

            // The replaced greedy ordering agrees too, and the static bound
            // still caps the measured fetches.
            let greedy = greedy_planner.plan(&q, &params).unwrap();
            let greedy_answers = execute_bounded(&greedy, &values, &adb).unwrap().answers;
            assert_eq!(
                sorted(bounded.answers.clone()),
                sorted(greedy_answers),
                "seed {seed}: cost-based and greedy plans disagree on {}",
                q.name
            );
            assert!(
                bounded.accesses.tuples_fetched <= costed.plan.static_cost().max_tuples,
                "seed {seed}: measured fetches exceed the static bound on {}",
                q.name
            );
        }
    }
}

/// The planner prefers an index-backed access path when the statistics make
/// the (bounded) scan path strictly worse, even though the declared bounds
/// cannot tell the two apart.
#[test]
fn planner_prefers_index_backed_path_over_bounded_scan() {
    let schema = social_schema();
    // Same declared N on both paths: greedy has no signal, statistics do.
    let access = AccessSchema::new()
        .with(AccessConstraint::new("person", &[], 1000, 1))
        .with(AccessConstraint::new("person", &["id"], 1000, 1));
    let mut db = Database::empty(schema.clone());
    for id in 0..200i64 {
        db.insert("person", tuple![id, format!("p{id}"), "NYC"])
            .unwrap();
    }
    let stats = db.statistics();
    let planner = CostBasedPlanner::new(&schema, &access, &stats);
    let q = parse_cq("Q(name) :- person(p, name, city)").unwrap();
    let costed = planner.plan_costed(&q, &["p".into()], None).unwrap();
    match &costed.plan.steps[0] {
        PlanStep::Fetch { constraint, .. } => {
            assert_eq!(
                constraint.on,
                vec!["id".to_string()],
                "expected the indexed path, got the scan constraint"
            );
        }
        other => panic!("expected a fetch step, got {other}"),
    }
    // And the index-backed plan really fetches 200× less.
    let adb = AccessIndexedDatabase::new(db, access).unwrap();
    let result = execute_bounded(&costed.plan, &[Value::int(7)], &adb).unwrap();
    assert_eq!(result.answers, vec![tuple!["p7"]]);
    assert_eq!(result.accesses.tuples_fetched, 1);
}

/// On the skewed 3-atom join of the `planner` bench, the cost-based ordering
/// fetches at least 2× fewer tuples than the greedy declared-bound ordering
/// (deterministic, meter-based twin of the wall-clock bench).
#[test]
fn cost_based_ordering_dominates_greedy_on_skewed_join() {
    let schema = DatabaseSchema::from_relations(vec![
        RelationSchema::new("r", &["a", "x"]),
        RelationSchema::new("s", &["b", "x"]),
        RelationSchema::new("t", &["x", "y"]),
    ])
    .unwrap();
    let mut db = Database::empty(schema.clone());
    for j in 0..500i64 {
        db.insert("r", tuple![0, j]).unwrap();
    }
    for a in 1..=1000i64 {
        db.insert("r", tuple![a, a % 500]).unwrap();
    }
    for b in 0..10i64 {
        for j in 0..50i64 {
            db.insert("s", tuple![b, (b * 50 + j) % 500]).unwrap();
        }
    }
    for x in 0..500i64 {
        db.insert("t", tuple![x, x + 10_000]).unwrap();
    }
    let access = AccessSchema::new()
        .with(AccessConstraint::new("r", &["a"], 500, 1))
        .with(AccessConstraint::new("s", &["b"], 50, 1))
        .with(AccessConstraint::new("t", &["x"], 1, 1));
    let stats = db.statistics();
    let q = parse_cq("Q(y) :- r(p, x), s(q, x), t(x, y)").unwrap();
    let params = ["p".to_string(), "q".to_string()];

    let greedy = BoundedPlanner::new(&schema, &access)
        .plan(&q, &params)
        .unwrap();
    let costed = CostBasedPlanner::new(&schema, &access, &stats)
        .plan_costed(&q, &params, None)
        .unwrap();
    let adb = AccessIndexedDatabase::new(db, access).unwrap();

    let run = |plan: &si_core::BoundedPlan| -> (Vec<Tuple>, u64) {
        adb.reset_meter();
        let mut answers = Vec::new();
        for p in 1..=32i64 {
            let result = execute_bounded(plan, &[Value::int(p), Value::int(p % 10)], &adb).unwrap();
            answers.extend(result.answers);
        }
        (sorted(answers), adb.meter_snapshot().tuples_fetched)
    };
    let (greedy_answers, greedy_fetched) = run(&greedy);
    let (cost_answers, cost_fetched) = run(&costed.plan);
    assert_eq!(greedy_answers, cost_answers);
    assert!(
        cost_fetched * 2 <= greedy_fetched,
        "cost-based ordering fetched {cost_fetched}, greedy {greedy_fetched}: expected ≥ 2× gap"
    );
}
