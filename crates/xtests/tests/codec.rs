//! Property tests for the binary codec (`si_data::codec`) that the
//! durability plane frames its WAL records and checkpoints with: seeded
//! random values, tuples and deltas must round-trip byte-exactly through
//! encode → decode, and every damaged frame — truncated at any cut, or
//! with any single bit flipped — must be *rejected*, never mis-decoded.
//!
//! Symbols serialise as their resolved strings (the interner is
//! process-local, so symbol ids must never touch disk); the generator
//! leans on empty, non-ASCII and multi-codepoint strings to pin the
//! re-interning path.

use si_data::codec::{self, CodecError, Reader};
use si_data::{Delta, Tuple, Value};
use si_workload::rng::SplitMix64;

const SEEDS: u64 = 200;

/// Interesting string pool: empty, whitespace, non-ASCII, combining marks,
/// astral-plane emoji — everything the resolved-string codec must carry.
const STRINGS: &[&str] = &[
    "",
    " ",
    "NYC",
    "naïve",
    "東京",
    "🚀🚀🚀",
    "Łódź",
    "a\u{0301}",
    "line\nbreak",
    "nul\u{0000}byte",
];

fn random_value(rng: &mut SplitMix64) -> Value {
    match rng.gen_range(0..8u8) {
        0 => Value::Null,
        1 => Value::bool(rng.gen_range(0..2u8) == 0),
        2 => Value::int(i64::MIN),
        3 => Value::int(i64::MAX),
        4 => Value::int(rng.gen_range(0..1000usize) as i64 - 500),
        5 | 6 => Value::str(STRINGS[rng.gen_range(0..STRINGS.len())]),
        _ => Value::str(format!("s{}", rng.gen_range(0..50usize))),
    }
}

fn random_tuple(rng: &mut SplitMix64) -> Tuple {
    let arity = rng.gen_range(0..5usize);
    (0..arity)
        .map(|_| random_value(rng))
        .collect::<Vec<_>>()
        .into()
}

fn random_delta(rng: &mut SplitMix64) -> Delta {
    let mut delta = Delta::new();
    let relations = ["person", "friend", "visit", "restr", "émission"];
    for _ in 0..rng.gen_range(0..6usize) {
        let relation = relations[rng.gen_range(0..relations.len())];
        let tuple = random_tuple(rng);
        if rng.gen_range(0..2u8) == 0 {
            delta.insert(relation, tuple);
        } else {
            delta.delete(relation, tuple);
        }
    }
    delta
}

#[test]
fn values_tuples_and_deltas_round_trip() {
    let mut checked = 0u64;
    for seed in 0..SEEDS {
        let mut rng = SplitMix64::seed_from_u64(0xC0DEC ^ seed);

        for _ in 0..20 {
            let value = random_value(&mut rng);
            let mut bytes = Vec::new();
            codec::encode_value(&mut bytes, value);
            let mut r = Reader::new(&bytes);
            assert_eq!(codec::decode_value(&mut r).unwrap(), value);
            r.expect_end().unwrap();
            checked += 1;
        }

        for _ in 0..10 {
            let tuple = random_tuple(&mut rng);
            let mut bytes = Vec::new();
            codec::encode_tuple(&mut bytes, &tuple);
            let mut r = Reader::new(&bytes);
            assert_eq!(codec::decode_tuple(&mut r).unwrap(), tuple);
            r.expect_end().unwrap();
            checked += 1;
        }

        for _ in 0..5 {
            let delta = random_delta(&mut rng);
            let bytes = codec::delta_bytes(&delta);
            assert_eq!(codec::delta_from_bytes(&bytes).unwrap(), delta);
            // Deterministic: re-encoding yields the same bytes (BTreeMap
            // ordering), which the content-addressed checkpoints rely on.
            assert_eq!(codec::delta_bytes(&delta), bytes);
            checked += 1;
        }
    }
    println!("codec round trips: {checked} checked, 0 divergent");
}

#[test]
fn every_truncation_of_a_frame_is_rejected() {
    let mut rng = SplitMix64::seed_from_u64(0x7134);
    for _ in 0..40 {
        let payload = codec::delta_bytes(&random_delta(&mut rng));
        let frame = codec::frame(&payload);
        for cut in 0..frame.len() {
            let mut pos = 0usize;
            let err = codec::read_frame(&frame[..cut], &mut pos).unwrap_err();
            assert!(
                matches!(err, CodecError::Truncated),
                "cut at {cut}: expected Truncated, got {err:?}"
            );
        }
        // The full frame decodes back to the payload.
        let mut pos = 0usize;
        assert_eq!(codec::read_frame(&frame, &mut pos).unwrap(), &payload[..]);
        assert_eq!(pos, frame.len());
    }
}

#[test]
fn every_bit_flip_in_a_frame_is_rejected() {
    let mut rng = SplitMix64::seed_from_u64(0xF11B);
    for _ in 0..10 {
        let delta = random_delta(&mut rng);
        let payload = codec::delta_bytes(&delta);
        let frame = codec::frame(&payload);
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut damaged = frame.clone();
                damaged[byte] ^= 1 << bit;
                let mut pos = 0usize;
                // A flip in the length field may make the frame run off the
                // end (Truncated) or shrink it (Corrupt: the CRC no longer
                // matches the shorter payload); a flip in the CRC or the
                // payload is always Corrupt.  What must never happen is a
                // clean decode of different bytes.
                match codec::read_frame(&damaged, &mut pos) {
                    Err(CodecError::Truncated) | Err(CodecError::Corrupt { .. }) => {}
                    Err(other) => panic!("byte {byte} bit {bit}: unexpected {other:?}"),
                    Ok(decoded) => panic!(
                        "byte {byte} bit {bit}: damaged frame decoded {} bytes",
                        decoded.len()
                    ),
                }
            }
        }
    }
}

#[test]
fn symbols_survive_as_resolved_strings() {
    // The wire format must be interner-independent: decoding re-interns, so
    // equality holds even though the symbol ids may differ in another
    // process.  Simulate that by round-tripping strings never interned
    // before this test (fresh names), mixed with the pathological pool.
    for (i, s) in STRINGS.iter().enumerate() {
        let value = Value::str(format!("fresh-{i}-{s}"));
        let mut bytes = Vec::new();
        codec::encode_value(&mut bytes, value);
        let mut r = Reader::new(&bytes);
        let decoded = codec::decode_value(&mut r).unwrap();
        assert_eq!(decoded, value);
        assert_eq!(decoded.as_str(), value.as_str());
    }
}
