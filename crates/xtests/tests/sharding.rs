//! Randomized shard-equivalence harness: hash-partitioned scatter-gather
//! execution must be indistinguishable from unsharded execution.
//!
//! Every seed deterministically generates a scenario — a seeded social
//! instance, the serving access constraints (plus a `visit(rid)` constraint
//! so a forced-fan-out shape is plannable), four CQ shapes, and a stream of
//! mixed insert/delete commit batches valid against the evolving instance.
//! At every epoch, for every shape and parameter, the **same cost-based
//! plan** (ranked against the unsharded statistics — the sharded view's
//! merged statistics are asserted identical) executes against
//!
//! * the unsharded `SnapshotStore` through `SnapshotAccess`,
//! * a `ShardedSnapshotStore` at shard counts {1, 2, 3, 8} through
//!   `ShardedAccess`, and
//! * the naive oracle (`evaluate_cq` over an owned database),
//!
//! asserting that answers (sorted — fan-out merges in shard order, a
//! deterministic permutation), the witness *fact set*, the global epoch and
//! the full [`MeterSnapshot`] are identical, with 0 divergent cases.  The
//! shape pool includes a query whose probe never binds the partition column
//! (`visit` partitioned by `id`, probed by `rid`), so forced fan-out is
//! exercised on every seed; routed probes are exercised by the per-person
//! shapes.  CI runs this suite in `--release` as well.

use si_access::{AccessConstraint, AccessSchema, ShardedAccess, SnapshotAccess};
use si_core::bounded::execute_bounded;
use si_core::CostBasedPlanner;
use si_data::{Database, Delta, PartitionMap, ShardedSnapshotStore, SnapshotStore, Tuple, Value};
use si_engine::{Engine, EngineConfig, Request};
use si_query::{evaluate_cq, parse_cq, ConjunctiveQuery};
use si_workload::rng::SplitMix64;
use si_workload::{serving_access_schema, social_partition_map, SocialConfig, SocialGenerator};
use std::collections::BTreeSet;
use std::sync::Arc;

const SEEDS: u64 = 120;
const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 8];
const COMMITS_PER_SEED: usize = 3;

/// The four CQ shapes with their parameter variable.  `Qr` probes `visit`
/// by `rid` while `visit` partitions on `id`: its fetch can never route and
/// must fan out across every shard.
fn shapes() -> Vec<(ConjunctiveQuery, String)> {
    vec![
        (si_workload::q1(), "p".to_string()),
        (
            parse_cq(r#"Z(a, b) :- friend(a, i), person(i, b, "LA")"#).unwrap(),
            "a".to_string(),
        ),
        (si_workload::q2(), "p".to_string()),
        (
            parse_cq("Qr(rid, id) :- visit(id, rid)").unwrap(),
            "rid".to_string(),
        ),
    ]
}

fn access() -> AccessSchema {
    serving_access_schema(5_000).with(AccessConstraint::new("visit", &["rid"], 1_000, 1))
}

fn seeded_db(seed: u64) -> Database {
    SocialGenerator::new(SocialConfig {
        persons: 20 + (seed as usize % 5) * 6,
        restaurants: 5 + (seed as usize % 3) * 3,
        avg_friends: 3 + (seed as usize % 4),
        avg_visits: 2 + (seed as usize % 3),
        seed,
        ..SocialConfig::default()
    })
    .generate()
}

fn declared(mut db: Database, access: &AccessSchema) -> Database {
    for (relation, attrs) in access.required_indexes() {
        if !attrs.is_empty() {
            db.declare_index(&relation, &attrs).unwrap();
        }
    }
    db
}

/// One valid mixed-polarity batch against the evolving oracle: visit/friend
/// insertions and deletions plus occasional fresh persons — tuples routed
/// to different shards by construction.
fn gen_delta(rng: &mut SplitMix64, oracle: &Database, fresh: &mut usize) -> Delta {
    let mut delta = Delta::new();
    let mut planned: BTreeSet<(String, Tuple)> = BTreeSet::new();
    let persons = oracle
        .relation("person")
        .map(|r| r.len())
        .unwrap_or(1)
        .max(1);
    for _ in 0..(2 + rng.gen_range(0..3usize)) {
        let kind = rng.gen_range(0..100u8);
        if kind < 35 {
            *fresh += 1;
            // Fresh rid far above the generator's 1_000_000-offset ids.
            let t: Tuple = vec![
                Value::from(rng.gen_range(0..persons)),
                Value::from(9_000_000 + *fresh),
            ]
            .into();
            if planned.insert(("visit".into(), t.clone())) {
                delta.insert("visit", t);
            }
        } else if kind < 55 {
            let rel = oracle.relation("visit").unwrap();
            if !rel.is_empty() {
                if let Some(t) = rel.iter().nth(rng.gen_range(0..rel.len())).cloned() {
                    if planned.insert(("visit".into(), t.clone())) {
                        delta.delete("visit", t);
                    }
                }
            }
        } else if kind < 75 {
            let t: Tuple = vec![
                Value::from(rng.gen_range(0..persons)),
                Value::from(rng.gen_range(0..persons)),
            ]
            .into();
            if !oracle.contains("friend", &t).unwrap()
                && planned.insert(("friend".into(), t.clone()))
            {
                delta.insert("friend", t);
            }
        } else if kind < 90 {
            let rel = oracle.relation("friend").unwrap();
            if !rel.is_empty() {
                if let Some(t) = rel.iter().nth(rng.gen_range(0..rel.len())).cloned() {
                    if planned.insert(("friend".into(), t.clone())) {
                        delta.delete("friend", t);
                    }
                }
            }
        } else {
            *fresh += 1;
            let t: Tuple = vec![
                Value::from(2_000_000 + *fresh),
                Value::str(format!("p{fresh}")),
                Value::str(if kind.is_multiple_of(2) { "NYC" } else { "LA" }),
            ]
            .into();
            delta.insert("person", t);
        }
    }
    delta
}

fn witness_set(answer: &si_core::bounded::BoundedAnswer) -> BTreeSet<(String, Tuple)> {
    answer.witness.facts.iter().cloned().collect()
}

fn sorted(mut answers: Vec<Tuple>) -> Vec<Tuple> {
    answers.sort();
    answers
}

/// Parameter values per shape: per-person shapes probe two hot persons,
/// the fan-out shape probes two real restaurant ids (plus one miss).
fn parameter_values(shape: &str, oracle: &Database) -> Vec<Value> {
    if shape == "Qr" {
        let mut rids: Vec<Value> = oracle
            .relation("restr")
            .map(|r| r.iter().filter_map(|t| t.get(0).copied()).take(2).collect())
            .unwrap_or_default();
        rids.push(Value::int(-1));
        rids
    } else {
        vec![Value::int(0), Value::int(1)]
    }
}

#[test]
fn sharded_execution_is_answer_witness_epoch_and_meter_identical() {
    let access = Arc::new(access());
    let shapes = shapes();
    let mut cases = 0u64;
    let mut executions = 0u64;
    let mut fanned = 0u64;
    let mut routed = 0u64;

    for seed in 0..SEEDS {
        let db = declared(seeded_db(seed), &access);
        let mut oracle = db.clone();
        let unsharded = SnapshotStore::new(db.clone());
        let stores: Vec<ShardedSnapshotStore> = SHARD_COUNTS
            .iter()
            .map(|&n| ShardedSnapshotStore::new(db.clone(), social_partition_map(), n).unwrap())
            .collect();
        let mut rng = SplitMix64::seed_from_u64(0x5AAD ^ seed);
        let mut fresh = 0usize;

        for round in 0..=COMMITS_PER_SEED {
            let snapshot = unsharded.pin();
            let stats = snapshot.statistics();
            let views: Vec<_> = stores.iter().map(|s| s.pin()).collect();
            for view in &views {
                // Epoch coherence and exact merged statistics: the planner
                // sees the same world sharded or not.
                assert_eq!(view.epoch(), snapshot.epoch(), "seed {seed} round {round}");
                assert_eq!(view.statistics(), stats, "seed {seed} round {round}");
            }
            let planner = CostBasedPlanner::new(snapshot.schema(), &access, &stats);

            for (query, parameter) in &shapes {
                let plan = planner
                    .plan(query, std::slice::from_ref(parameter))
                    .unwrap();
                for value in parameter_values(&query.name, &oracle) {
                    let seq_source: SnapshotAccess =
                        SnapshotAccess::new(snapshot.clone(), access.clone());
                    let seq = execute_bounded(&plan, &[value], &seq_source).unwrap();
                    let expected_answers = sorted(seq.answers.clone());
                    let expected_witness = witness_set(&seq);
                    // The oracle agrees with the unsharded execution.
                    let bound = query.bind(&[(parameter.clone(), value)]);
                    let naive = sorted(evaluate_cq(&bound, &oracle, None).unwrap());
                    assert_eq!(
                        expected_answers, naive,
                        "unsharded vs oracle: seed {seed} round {round} {}",
                        query.name
                    );

                    for view in &views {
                        let source: ShardedAccess =
                            ShardedAccess::new(view.clone(), access.clone());
                        let shr = execute_bounded(&plan, &[value], &source).unwrap();
                        let label = format!(
                            "seed {seed} round {round} {} v={value:?} shards={}",
                            query.name,
                            view.shard_count()
                        );
                        assert_eq!(sorted(shr.answers.clone()), expected_answers, "{label}");
                        assert_eq!(witness_set(&shr), expected_witness, "{label}");
                        assert_eq!(shr.accesses, seq.accesses, "{label}");
                        fanned += source.fanned_fetches();
                        routed += source.routed_fetches();
                        executions += 1;
                    }
                    cases += 1;
                }
            }

            if round < COMMITS_PER_SEED {
                let delta = gen_delta(&mut rng, &oracle, &mut fresh);
                if delta.is_empty() {
                    continue;
                }
                unsharded.commit(&delta).unwrap();
                for store in &stores {
                    store.commit(&delta).unwrap();
                }
                delta.apply_in_place(&mut oracle).unwrap();
            }
        }
    }

    assert!(cases >= 120 * 4, "only {cases} cases ran");
    // Both routing outcomes were exercised heavily (multi-shard stores fan
    // out the Qr probes and route the per-person ones).
    assert!(fanned > 1_000, "only {fanned} fan-out fetches");
    assert!(routed > 1_000, "only {routed} routed fetches");
    println!(
        "shard-equivalence: {cases} cases / {executions} sharded executions, 0 divergent \
         ({routed} routed, {fanned} fanned)"
    );
}

#[test]
fn pruned_routing_keeps_answers_exact_with_no_more_fetches() {
    // Pruned routing (residual partition literals pin the shard) must keep
    // answers and witnesses exact; its fetch counts may only shrink.
    let access = Arc::new(access());
    let shapes = shapes();
    for seed in 0..24u64 {
        let db = declared(seeded_db(seed), &access);
        let oracle = db.clone();
        let snapshot = SnapshotStore::new(db.clone()).pin();
        let stats = snapshot.statistics();
        let planner = CostBasedPlanner::new(snapshot.schema(), &access, &stats);
        let store = ShardedSnapshotStore::new(db, social_partition_map(), 3).unwrap();
        let view = store.pin();
        for (query, parameter) in &shapes {
            let plan = planner
                .plan(query, std::slice::from_ref(parameter))
                .unwrap();
            for value in parameter_values(&query.name, &oracle) {
                let seq_source: SnapshotAccess =
                    SnapshotAccess::new(snapshot.clone(), access.clone());
                let seq = execute_bounded(&plan, &[value], &seq_source).unwrap();
                let pruned_source: ShardedAccess =
                    ShardedAccess::new(view.clone(), access.clone()).with_pruned_routing(true);
                let pruned = execute_bounded(&plan, &[value], &pruned_source).unwrap();
                assert_eq!(sorted(pruned.answers), sorted(seq.answers), "seed {seed}");
                assert!(
                    pruned.accesses.tuples_fetched <= seq.accesses.tuples_fetched,
                    "pruned routing fetched more than unsharded (seed {seed})"
                );
            }
        }
    }
}

#[test]
fn embedded_constraint_bindings_of_the_partition_column_force_fan_out() {
    // Regression (the "wrong single shard" trap): Q3's embedded plan binds
    // visit's partition column (`id`) through constraint *outputs* and
    // residual filters, never as a pushed-down literal on the enumerate
    // step.  Routing must fall back to fan-out there — and still route the
    // steps that do push the partition column — with answers, witness and
    // meter identical to unsharded.
    use si_access::EmbeddedConstraint;
    use si_data::schema::social_schema_dated;
    let schema = social_schema_dated();
    let access = Arc::new(
        si_access::facebook_access_schema(5000)
            .with_embedded(EmbeddedConstraint::new(
                "visit",
                &["yy"],
                &["mm", "dd"],
                366,
                3,
            ))
            .with_embedded(EmbeddedConstraint::functional_dependency(
                "visit",
                &["id", "yy", "mm", "dd"],
                &["rid"],
                1,
            )),
    );
    let mut db = Database::empty(schema.clone());
    for i in 2..40i64 {
        db.insert("friend", tuple_of(&[1, i])).unwrap();
        let city = if i % 2 == 0 { "NYC" } else { "LA" };
        db.insert(
            "person",
            vec![Value::int(i), Value::str(format!("p{i}")), Value::str(city)].into(),
        )
        .unwrap();
        db.insert(
            "visit",
            tuple_of(&[i, 100 + i % 3, 2013, 1 + (i % 12), 1 + (i % 28)]),
        )
        .unwrap();
    }
    for r in 0..3i64 {
        let rating = if r % 2 == 0 { "A" } else { "B" };
        db.insert(
            "restr",
            vec![
                Value::int(100 + r),
                Value::str(format!("r{r}")),
                Value::str("NYC"),
                Value::str(rating),
            ]
            .into(),
        )
        .unwrap();
    }
    let db = declared(db, &access);
    let q3 = parse_cq(
        r#"Q3(rn, p, yy) :- friend(p, id), visit(id, rid, yy, mm, dd), person(id, pn, "NYC"), restr(rid, rn, "NYC", "A")"#,
    )
    .unwrap();
    let planner = si_core::BoundedPlanner::new(&schema, &access);
    let plan = planner.plan(&q3, &["p".into(), "yy".into()]).unwrap();
    let values = [Value::int(1), Value::int(2013)];

    let snapshot = SnapshotStore::new(db.clone()).pin();
    let seq_source: SnapshotAccess = SnapshotAccess::new(snapshot, access.clone());
    let seq = execute_bounded(&plan, &values, &seq_source).unwrap();
    assert!(!seq.answers.is_empty(), "the scenario must produce answers");

    let partition = PartitionMap::new()
        .with("person", "id")
        .with("friend", "id1")
        .with("visit", "id")
        .with("restr", "rid");
    for shards in [2usize, 3, 8] {
        let store = ShardedSnapshotStore::new(db.clone(), partition.clone(), shards).unwrap();
        let source: ShardedAccess = ShardedAccess::new(store.pin(), access.clone());
        let shr = execute_bounded(&plan, &values, &source).unwrap();
        assert_eq!(sorted(shr.answers.clone()), sorted(seq.answers.clone()));
        assert_eq!(witness_set(&shr), witness_set(&seq), "shards={shards}");
        assert_eq!(shr.accesses, seq.accesses, "shards={shards}");
        // The embedded enumerate fanned out; the pushed-down probes routed.
        assert!(source.fanned_fetches() > 0, "enumerate step must fan out");
        assert!(source.routed_fetches() > 0, "literal probes must route");
    }
}

fn tuple_of(ints: &[i64]) -> Tuple {
    ints.iter()
        .map(|i| Value::int(*i))
        .collect::<Vec<_>>()
        .into()
}

#[test]
fn sharded_engine_matches_unsharded_engine_and_oracle_under_commits() {
    // End-to-end: the full engine (plan cache, admission, materialized
    // answers off) over 2- and 8-way sharded stores against the unsharded
    // engine and the naive oracle, through interleaved commits.
    let shapes = shapes();
    for seed in 0..12u64 {
        let db = seeded_db(seed);
        let access = access();
        let plain = Engine::new(db.clone(), access.clone(), EngineConfig::default()).unwrap();
        let sharded: Vec<Engine> = [2usize, 8]
            .iter()
            .map(|&n| {
                Engine::new_sharded(
                    db.clone(),
                    access.clone(),
                    social_partition_map(),
                    n,
                    EngineConfig::default(),
                )
                .unwrap()
            })
            .collect();
        let mut oracle = db;
        let mut rng = SplitMix64::seed_from_u64(0xE4E0 ^ seed);
        let mut fresh = 500_000usize;

        for op in 0..24usize {
            if rng.gen_range(0..100u8) < 30 {
                let delta = gen_delta(&mut rng, &oracle, &mut fresh);
                if delta.is_empty() {
                    continue;
                }
                let epoch = plain.commit(&delta).unwrap();
                for engine in &sharded {
                    assert_eq!(engine.commit(&delta).unwrap(), epoch, "seed {seed} op {op}");
                }
                delta.apply_in_place(&mut oracle).unwrap();
            } else {
                let (query, parameter) = &shapes[rng.gen_range(0..shapes.len())];
                for value in parameter_values(&query.name, &oracle) {
                    let request = Request::new(query.clone(), vec![parameter.clone()], vec![value]);
                    let expected = plain.execute(&request).unwrap();
                    let bound = query.bind(&[(parameter.clone(), value)]);
                    let naive = sorted(evaluate_cq(&bound, &oracle, None).unwrap());
                    assert_eq!(
                        sorted(expected.answers.clone()),
                        naive,
                        "seed {seed} op {op}"
                    );
                    for engine in &sharded {
                        let got = engine.execute(&request).unwrap();
                        assert_eq!(sorted(got.answers.clone()), naive, "seed {seed} op {op}");
                        assert_eq!(got.epoch, expected.epoch);
                        assert_eq!(got.accesses, expected.accesses, "seed {seed} op {op}");
                        assert_eq!(got.static_cost, expected.static_cost);
                    }
                }
            }
        }
        // The sharded engines really did split their commits across shards,
        // and every shard's local epoch tracks the global one (uniform
        // inspection through the engine snapshot).
        for engine in &sharded {
            let stats = engine.shard_stats();
            assert!(stats.iter().filter(|s| s.routed_tuples > 0).count() >= 2);
            let snapshot = engine.snapshot();
            assert_eq!(
                snapshot.shard_epochs(),
                vec![snapshot.epoch(); snapshot.shard_count()]
            );
        }
    }
}
