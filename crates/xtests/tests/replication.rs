//! Transport-equivalence harness for the replication plane: serving through
//! wire-attached shard replicas must be indistinguishable from in-process
//! sharded serving.
//!
//! Every seed deterministically generates a scenario — a seeded social
//! instance, the serving access constraints (plus a `visit(rid)` constraint
//! so a forced-fan-out shape is plannable), four CQ shapes, and a stream of
//! mixed insert/delete commit batches.  At every epoch, for every shape and
//! parameter, the same request executes through
//!
//! * the unsharded engine (`Engine::execute`),
//! * sharded engines at shard counts {1, 2, 8} (`Engine::execute`), and
//! * the **same sharded engines through their attached replicas**
//!   (`Engine::execute_replicated`) — every probe crosses the framed wire
//!   protocol to a `ShardReplica` behind an in-process duplex pipe,
//!
//! asserting that answers (sorted), the full access meter, the epoch and
//! the static cost are identical, with 0 divergent cases.  Further suites
//! cover replica lag (a paused replica forces a typed epoch-wait refusal,
//! then serves after catching up), reconnect resync (WAL replay after a
//! severed wire; snapshot bootstrap for a fresh replica), and epoch-pinned
//! reads at the wire level (historical probes inside the retention window
//! answer; probes outside it are refused with the window bounds).
//! CI runs this suite in `--release` as well.

use si_access::{AccessConstraint, AccessSchema};
use si_data::{Database, Delta, Tuple, Value};
use si_engine::{Engine, EngineConfig, EngineError, Request, ShardReplica};
use si_query::{evaluate_cq, parse_cq, ConjunctiveQuery};
use si_wire::{Connection, Duplex, Message, PROTOCOL_VERSION};
use si_workload::rng::SplitMix64;
use si_workload::{serving_access_schema, social_partition_map, SocialConfig, SocialGenerator};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEEDS: u64 = 10;
const SHARD_COUNTS: [usize; 3] = [1, 2, 8];
const OPS_PER_SEED: usize = 20;
const RETAIN: usize = 8;

/// The four CQ shapes with their parameter variable.  `Qr` probes `visit`
/// by `rid` while `visit` partitions on `id`, so its fetch fans out across
/// every shard — over the wire, that is one probe per replica.
fn shapes() -> Vec<(ConjunctiveQuery, String)> {
    vec![
        (si_workload::q1(), "p".to_string()),
        (
            parse_cq(r#"Z(a, b) :- friend(a, i), person(i, b, "LA")"#).unwrap(),
            "a".to_string(),
        ),
        (si_workload::q2(), "p".to_string()),
        (
            parse_cq("Qr(rid, id) :- visit(id, rid)").unwrap(),
            "rid".to_string(),
        ),
    ]
}

fn access() -> AccessSchema {
    serving_access_schema(5_000).with(AccessConstraint::new("visit", &["rid"], 1_000, 1))
}

/// Materialization off: replicated execution always runs the bounded plan,
/// so the in-process twin must too for meter-exact comparison.
fn config() -> EngineConfig {
    EngineConfig {
        materialize_after: u64::MAX,
        ..EngineConfig::default()
    }
}

fn seeded_db(seed: u64) -> Database {
    SocialGenerator::new(SocialConfig {
        persons: 20 + (seed as usize % 5) * 6,
        restaurants: 5 + (seed as usize % 3) * 3,
        avg_friends: 3 + (seed as usize % 4),
        avg_visits: 2 + (seed as usize % 3),
        seed,
        ..SocialConfig::default()
    })
    .generate()
}

/// One valid mixed-polarity batch against the evolving oracle.
fn gen_delta(rng: &mut SplitMix64, oracle: &Database, fresh: &mut usize) -> Delta {
    let mut delta = Delta::new();
    let mut planned: BTreeSet<(String, Tuple)> = BTreeSet::new();
    let persons = oracle
        .relation("person")
        .map(|r| r.len())
        .unwrap_or(1)
        .max(1);
    for _ in 0..(2 + rng.gen_range(0..3usize)) {
        let kind = rng.gen_range(0..100u8);
        if kind < 35 {
            *fresh += 1;
            let t: Tuple = vec![
                Value::from(rng.gen_range(0..persons)),
                Value::from(9_000_000 + *fresh),
            ]
            .into();
            if planned.insert(("visit".into(), t.clone())) {
                delta.insert("visit", t);
            }
        } else if kind < 55 {
            let rel = oracle.relation("visit").unwrap();
            if !rel.is_empty() {
                if let Some(t) = rel.iter().nth(rng.gen_range(0..rel.len())).cloned() {
                    if planned.insert(("visit".into(), t.clone())) {
                        delta.delete("visit", t);
                    }
                }
            }
        } else if kind < 75 {
            let t: Tuple = vec![
                Value::from(rng.gen_range(0..persons)),
                Value::from(rng.gen_range(0..persons)),
            ]
            .into();
            if !oracle.contains("friend", &t).unwrap()
                && planned.insert(("friend".into(), t.clone()))
            {
                delta.insert("friend", t);
            }
        } else if kind < 90 {
            let rel = oracle.relation("friend").unwrap();
            if !rel.is_empty() {
                if let Some(t) = rel.iter().nth(rng.gen_range(0..rel.len())).cloned() {
                    if planned.insert(("friend".into(), t.clone())) {
                        delta.delete("friend", t);
                    }
                }
            }
        } else {
            *fresh += 1;
            let t: Tuple = vec![
                Value::from(2_000_000 + *fresh),
                Value::str(format!("p{fresh}")),
                Value::str(if kind.is_multiple_of(2) { "NYC" } else { "LA" }),
            ]
            .into();
            delta.insert("person", t);
        }
    }
    delta
}

fn sorted(mut answers: Vec<Tuple>) -> Vec<Tuple> {
    answers.sort();
    answers
}

fn parameter_values(shape: &str, oracle: &Database) -> Vec<Value> {
    if shape == "Qr" {
        let mut rids: Vec<Value> = oracle
            .relation("restr")
            .map(|r| r.iter().filter_map(|t| t.get(0).copied()).take(2).collect())
            .unwrap_or_default();
        rids.push(Value::int(-1));
        rids
    } else {
        vec![Value::int(0), Value::int(1)]
    }
}

/// Boots one [`ShardReplica`] per shard over duplex pipes and attaches the
/// fleet; returns each replica with its serve-side connection handle.
fn attach_fleet(engine: &Engine, shards: usize) -> Vec<(Arc<ShardReplica>, Arc<Connection>)> {
    (0..shards)
        .map(|shard| {
            let (primary_end, replica_end) = Duplex::pair();
            let replica = Arc::new(ShardReplica::new(RETAIN));
            let conn = Arc::new(Connection::new(Arc::new(replica_end)));
            replica.spawn(Arc::clone(&conn));
            engine.attach_replica(shard, Arc::new(primary_end)).unwrap();
            (replica, conn)
        })
        .collect()
}

fn wait_until(deadline: Duration, mut done: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if done() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    done()
}

#[test]
fn replicated_serving_is_answer_epoch_and_meter_identical_under_commits() {
    let shapes = shapes();
    let mut cases = 0u64;

    for seed in 0..SEEDS {
        let db = seeded_db(seed);
        let access = access();
        let plain = Engine::new(db.clone(), access.clone(), config()).unwrap();
        // Replication needs a sharded backend: the unsharded engine refuses
        // the attach with a typed error.
        assert!(matches!(
            plain
                .attach_replica(0, Arc::new(Duplex::pair().0))
                .unwrap_err(),
            EngineError::Replication(_)
        ));
        let sharded: Vec<Engine> = SHARD_COUNTS
            .iter()
            .map(|&n| {
                Engine::new_sharded(
                    db.clone(),
                    access.clone(),
                    social_partition_map(),
                    n,
                    config(),
                )
                .unwrap()
            })
            .collect();
        let _fleets: Vec<_> = sharded
            .iter()
            .zip(SHARD_COUNTS)
            .map(|(engine, n)| attach_fleet(engine, n))
            .collect();
        let mut oracle = db;
        let mut rng = SplitMix64::seed_from_u64(0x4E7 ^ seed);
        let mut fresh = 700_000usize;

        for op in 0..OPS_PER_SEED {
            if rng.gen_range(0..100u8) < 30 {
                let delta = gen_delta(&mut rng, &oracle, &mut fresh);
                if delta.is_empty() {
                    continue;
                }
                let epoch = plain.commit(&delta).unwrap();
                for engine in &sharded {
                    assert_eq!(engine.commit(&delta).unwrap(), epoch, "seed {seed} op {op}");
                }
                delta.apply_in_place(&mut oracle).unwrap();
            } else {
                let (query, parameter) = &shapes[rng.gen_range(0..shapes.len())];
                for value in parameter_values(&query.name, &oracle) {
                    let request = Request::new(query.clone(), vec![parameter.clone()], vec![value]);
                    let expected = plain.execute(&request).unwrap();
                    let bound = query.bind(&[(parameter.clone(), value)]);
                    let naive = sorted(evaluate_cq(&bound, &oracle, None).unwrap());
                    assert_eq!(
                        sorted(expected.answers.clone()),
                        naive,
                        "seed {seed} op {op}"
                    );
                    for engine in &sharded {
                        let local = engine.execute(&request).unwrap();
                        // Read-your-writes: the replicated read waits for
                        // every replica to acknowledge the pinned epoch,
                        // then must match the in-process sharded execution
                        // on every observable axis.
                        let remote = engine.execute_replicated(&request).unwrap();
                        let label = format!("seed {seed} op {op} {}", query.name);
                        assert_eq!(sorted(remote.answers.clone()), naive, "{label}");
                        assert_eq!(remote.accesses, local.accesses, "{label}");
                        assert_eq!(remote.accesses, expected.accesses, "{label}");
                        assert_eq!(remote.epoch, expected.epoch, "{label}");
                        assert_eq!(remote.static_cost, expected.static_cost, "{label}");
                        cases += 1;
                    }
                }
            }
        }
        // Every replica converges to the primary's epoch (acks are
        // asynchronous, so poll) and stayed connected through the full
        // commit/read interleaving.
        for engine in &sharded {
            let epoch = engine.snapshot().epoch();
            assert!(
                wait_until(Duration::from_secs(5), || {
                    engine
                        .replica_statuses()
                        .iter()
                        .all(|s| s.connected && s.acked_epoch == epoch)
                }),
                "seed {seed}: replicas never converged to epoch {epoch}: {:?}",
                engine.replica_statuses()
            );
        }
    }
    assert!(cases >= 900, "only {cases} transport-equivalence cases ran");
    println!("transport-equivalence: {cases} replicated executions, 0 divergent");
}

#[test]
fn lagging_replica_forces_typed_refusal_then_serves_read_your_writes() {
    let db = seeded_db(3);
    let engine =
        Engine::new_sharded(db.clone(), access(), social_partition_map(), 2, config()).unwrap();
    let fleet = attach_fleet(&engine, 2);
    let request = Request::new(si_workload::q1(), vec!["p".into()], vec![Value::int(1)]);
    engine.execute_replicated(&request).unwrap();

    // Freeze shard 1's WAL application and commit: its ack watermark stays
    // behind, so the epoch wait must time out with a typed refusal rather
    // than serve a version the replica does not hold.
    fleet[1].0.pause();
    engine.set_replica_epoch_wait(Duration::from_millis(50));
    let epoch = engine
        .commit(Delta::new().insert("friend", tuple_of(&[1, 0])))
        .unwrap();
    assert!(matches!(
        engine.execute_replicated(&request).unwrap_err(),
        EngineError::EpochUnavailable { requested, .. } if requested == epoch
    ));
    let statuses = engine.replica_statuses();
    assert!(
        statuses.iter().any(|s| s.acked_epoch < epoch),
        "a paused replica must show lag: {statuses:?}"
    );
    // The lag is visible on the exposition page while the replica is stuck.
    let page = engine.telemetry().render();
    assert!(
        page.contains("si_replica_lag"),
        "missing lag gauge:\n{page}"
    );

    // Resume: the queued record applies, the ack lands, and the same read
    // serves the committed epoch with answers equal to the local path.
    fleet[1].0.resume();
    engine.set_replica_epoch_wait(Duration::from_secs(5));
    let remote = engine.execute_replicated(&request).unwrap();
    let local = engine.execute(&request).unwrap();
    assert_eq!(remote.epoch, epoch);
    assert_eq!(sorted(remote.answers), sorted(local.answers));
    assert_eq!(remote.accesses, local.accesses);
}

#[test]
fn severed_wire_resyncs_on_reconnect_via_wal_replay_and_snapshot() {
    let db = seeded_db(5);
    let engine =
        Engine::new_sharded(db.clone(), access(), social_partition_map(), 2, config()).unwrap();
    let fleet = attach_fleet(&engine, 2);
    let request = Request::new(si_workload::q1(), vec!["p".into()], vec![Value::int(0)]);
    engine
        .commit(Delta::new().insert("friend", tuple_of(&[0, 1])))
        .unwrap();
    engine.execute_replicated(&request).unwrap();

    // Tear shard 0's wire.  The primary notices and reports the shard
    // disconnected; replicated reads refuse instead of serving stale state.
    fleet[0].1.shutdown();
    assert!(
        wait_until(Duration::from_secs(5), || {
            !engine.replica_statuses()[0].connected
        }),
        "primary never observed the severed wire"
    );
    engine.set_replica_epoch_wait(Duration::from_millis(40));
    let epoch = engine
        .commit(Delta::new().insert("friend", tuple_of(&[0, 2])))
        .unwrap();
    assert!(engine.execute_replicated(&request).is_err());
    engine.set_replica_epoch_wait(Duration::from_secs(5));

    // Reconnect the *same* replica over a fresh wire: it still holds epoch
    // `epoch - 1`, and the primary's replay log covers the gap, so resync
    // is WAL replay — no snapshot retransfer — straight to the tip.
    assert_eq!(fleet[0].0.newest_epoch(), Some(epoch - 1));
    let (primary_end, replica_end) = Duplex::pair();
    fleet[0]
        .0
        .spawn(Arc::new(Connection::new(Arc::new(replica_end))));
    engine.attach_replica(0, Arc::new(primary_end)).unwrap();
    assert_eq!(fleet[0].0.newest_epoch(), Some(epoch));
    let status = engine.replica_statuses()[0].clone();
    assert!(status.connected);
    assert_eq!(status.acked_epoch, epoch);

    // A *fresh* replica on shard 1 resyncs the other way: full snapshot
    // bootstrap at the current epoch.
    let (primary_end, replica_end) = Duplex::pair();
    let fresh = Arc::new(ShardReplica::new(RETAIN));
    fresh.spawn(Arc::new(Connection::new(Arc::new(replica_end))));
    engine.attach_replica(1, Arc::new(primary_end)).unwrap();
    assert_eq!(fresh.newest_epoch(), Some(epoch));

    // Both paths serve: replicated answers equal the local ones again.
    let remote = engine.execute_replicated(&request).unwrap();
    let local = engine.execute(&request).unwrap();
    assert_eq!(remote.epoch, epoch);
    assert_eq!(sorted(remote.answers), sorted(local.answers));
    assert_eq!(remote.accesses, local.accesses);
}

#[test]
fn epoch_pinned_wire_probes_serve_the_retention_window_and_refuse_outside_it() {
    let db = seeded_db(7);
    let engine =
        Engine::new_sharded(db.clone(), access(), social_partition_map(), 1, config()).unwrap();
    let fleet = attach_fleet(&engine, 1);
    let replica = Arc::clone(&fleet[0].0);
    let request = Request::new(si_workload::q1(), vec!["p".into()], vec![Value::int(1)]);

    // Ten commits with retention 8: the replica's window slides to [3, 10].
    for i in 0..10i64 {
        engine
            .commit(Delta::new().insert("visit", tuple_of(&[1, 8_000_000 + i])))
            .unwrap();
    }
    engine.execute_replicated(&request).unwrap(); // forces the epoch wait
    assert_eq!(replica.newest_epoch(), Some(10));
    assert_eq!(replica.oldest_epoch(), Some(3));
    assert_eq!(replica.retained_epochs(), (3..=10).collect::<Vec<u64>>());

    // Speak the wire protocol directly on a second connection to the same
    // replica: epoch-pinned probes answer inside the window and refuse
    // outside it, reporting the window bounds.
    let (client_end, server_end) = Duplex::pair();
    replica.spawn(Arc::new(Connection::new(Arc::new(server_end))));
    let client = Connection::new(Arc::new(client_end));
    client
        .send(&Message::Hello {
            version: PROTOCOL_VERSION,
            shard: 0,
            epoch: 10,
            seed: Vec::new(),
        })
        .unwrap();
    assert_eq!(
        client.recv().unwrap(),
        Message::HelloAck {
            version: PROTOCOL_VERSION,
            epoch: 10
        }
    );
    let probe_at = |id: u64, epoch: u64| {
        client
            .send(&Message::Probe {
                id,
                epoch,
                relation: "visit".into(),
                attrs: vec!["id".into()],
                key: vec![Value::int(1)],
            })
            .unwrap();
        client.recv().unwrap()
    };
    // Pinned before the window and after the tip: refused with the bounds.
    for (id, epoch) in [(1u64, 2u64), (2, 11)] {
        assert_eq!(
            probe_at(id, epoch),
            Message::Refused {
                id,
                requested: epoch,
                oldest: 3,
                newest: 10
            }
        );
    }
    // Every retained epoch answers, and each historical answer equals that
    // epoch's actual state — the commits above insert one `visit` row per
    // epoch for person 1, so the row count grows with the pinned epoch.
    for epoch in 3..=10u64 {
        let expected: BTreeSet<Tuple> = replica
            .database_at(epoch)
            .unwrap()
            .relation("visit")
            .unwrap()
            .iter()
            .filter(|t| t.get(0) == Some(&Value::int(1)))
            .cloned()
            .collect();
        match probe_at(100 + epoch, epoch) {
            Message::Rows { id, tuples } => {
                assert_eq!(id, 100 + epoch);
                let got: BTreeSet<Tuple> = tuples.into_iter().collect();
                assert_eq!(got, expected, "epoch {epoch}");
            }
            other => panic!("epoch {epoch}: unexpected reply {other:?}"),
        }
    }
}

fn tuple_of(ints: &[i64]) -> Tuple {
    ints.iter()
        .map(|i| Value::int(*i))
        .collect::<Vec<_>>()
        .into()
}
