//! The crash-recovery harness: kill the "process" at **every byte-level
//! kill point** of seeded commit/checkpoint schedules and prove recovery
//! rebuilds exactly the maximal durable prefix — epoch-, content- and
//! statistics-identical to the pre-crash history, with zero divergences.
//!
//! The trick that makes "every kill point" affordable is the
//! [`SimDisk`] write journal: each seeded schedule runs **once** against
//! an un-killed simulated disk while a naive oracle records the database
//! at every epoch; afterwards, [`SimDisk::reconstruct_at`] replays the
//! journal to the exact disk state a crash at any global byte would have
//! left, and [`Wal::recover`] runs against that state.  Per WAL record the
//! harness probes four kill points — before the first byte, one byte in
//! (a torn header), one byte short of durable (a torn tail), and exactly
//! durable — plus a kill inside the initial checkpoint publish (nothing
//! durable yet: recovery must report [`DurabilityError::NoCheckpoint`]),
//! and an out-of-band **bit flip** in the final record (CRC must catch it
//! and recovery must fall back one epoch).
//!
//! Schedules mix single-store and 3-shard engines, automatic checkpoints
//! (`checkpoint_every` ∈ {0, 1, 2}) and manual mid-schedule checkpoints,
//! so kill points land inside record appends, checkpoint publishes, log
//! truncations and checkpoint pruning.  A subset of fully-durable kill
//! points additionally goes through `Engine::recover`, checking that the
//! *served* answers, the epoch, the statistics and (sharded) the per-shard
//! epochs and routing all match an engine that never crashed.

use si_data::codec::{self, Reader};
use si_data::{Database, Delta, Tuple, Value};
use si_durability::{DurabilityError, SimDisk, Wal};
use si_engine::{Engine, EngineConfig, EngineSnapshot, Request};
use si_query::evaluate_cq;
use si_workload::rng::SplitMix64;
use si_workload::{social_partition_map, SocialConfig, SocialGenerator};

const SEEDS: u64 = 110;

fn same(a: &Database, b: &Database) -> bool {
    a.contains_database(b) && b.contains_database(a)
}

/// Shard-order merge of recovered per-shard databases into one instance.
fn merged(databases: &[Database]) -> Database {
    let mut out = Database::empty(databases[0].schema().clone());
    for db in databases {
        for rel in db.relations() {
            for t in rel.iter() {
                out.insert(rel.name(), t.clone()).unwrap();
            }
        }
    }
    out
}

/// One small mixed-polarity delta valid against the oracle state.  The
/// `planned` set keeps each tuple unique within the batch, like the
/// differential suite's generator.
fn gen_delta(rng: &mut SplitMix64, oracle: &Database, fresh: &mut usize) -> Delta {
    let mut delta = Delta::new();
    let mut planned: std::collections::BTreeSet<(String, Tuple)> =
        std::collections::BTreeSet::new();
    let persons = oracle
        .relation("person")
        .map(|r| r.len())
        .unwrap_or(1)
        .max(1);
    for _ in 0..1 + rng.gen_range(0..3usize) {
        match rng.gen_range(0..4u8) {
            0 => {
                let t: Tuple = vec![
                    Value::from(rng.gen_range(0..persons)),
                    Value::from(rng.gen_range(0..persons)),
                ]
                .into();
                if !oracle.contains("friend", &t).unwrap()
                    && planned.insert(("friend".to_string(), t.clone()))
                {
                    delta.insert("friend", t);
                }
            }
            1 => {
                let rel = oracle.relation("friend").unwrap();
                if !rel.is_empty() {
                    if let Some(t) = rel.iter().nth(rng.gen_range(0..rel.len())).cloned() {
                        if planned.insert(("friend".to_string(), t.clone())) {
                            delta.delete("friend", t);
                        }
                    }
                }
            }
            2 => {
                *fresh += 1;
                let t: Tuple =
                    vec![Value::from(rng.gen_range(0..persons)), Value::from(*fresh)].into();
                if !oracle.contains("visit", &t).unwrap()
                    && planned.insert(("visit".to_string(), t.clone()))
                {
                    delta.insert("visit", t);
                }
            }
            _ => {
                *fresh += 1;
                let city = if rng.gen_range(0..2u8) == 0 {
                    "NYC"
                } else {
                    "LA"
                };
                delta.insert(
                    "person",
                    vec![
                        Value::from(*fresh),
                        Value::str(format!("p{fresh}")),
                        Value::str(city),
                    ]
                    .into(),
                );
            }
        }
    }
    delta
}

/// The byte span of one durable WAL record in the journal's global
/// coordinate system, plus the epoch it commits.
struct RecordSpan {
    start: u64,
    end: u64,
    epoch: u64,
}

#[test]
fn every_kill_point_recovers_the_maximal_durable_prefix() {
    let mut kill_points = 0u64;
    let mut torn_kills = 0u64;
    let mut no_checkpoint_kills = 0u64;
    let mut engine_recoveries = 0u64;
    let mut bit_flips = 0u64;

    for seed in 0..SEEDS {
        let db = SocialGenerator::new(SocialConfig {
            persons: 12 + (seed as usize % 4) * 4,
            restaurants: 4,
            avg_friends: 3,
            avg_visits: 2,
            seed,
            ..SocialConfig::default()
        })
        .generate();
        let access = si_access::facebook_access_schema(5_000);
        let sharded = seed % 4 == 0;
        let config = EngineConfig {
            workers: 1,
            materialize_capacity: 8,
            materialize_after: 1,
            durability: Some(si_durability::DurabilityConfig {
                checkpoint_every: seed % 3,
                keep_checkpoints: 1 + (seed as usize % 2),
            }),
            ..EngineConfig::default()
        };

        // -- Recording pass: one un-killed run, oracle state per epoch. --
        let disk = SimDisk::new();
        let engine = if sharded {
            Engine::new_sharded_durable(
                db.clone(),
                access.clone(),
                social_partition_map(),
                3,
                Box::new(disk.clone()),
                config.clone(),
            )
            .unwrap()
        } else {
            Engine::new_durable(
                db.clone(),
                access.clone(),
                Box::new(disk.clone()),
                config.clone(),
            )
            .unwrap()
        };
        let mut oracle = vec![db.clone()];
        let mut rng = SplitMix64::seed_from_u64(0xC4A5_4000 ^ seed);
        let mut fresh = 9_000_000usize;
        let commits = 7 + (seed as usize % 3);
        for round in 0..commits {
            let delta = gen_delta(&mut rng, oracle.last().unwrap(), &mut fresh);
            if delta.is_empty() {
                continue;
            }
            let epoch = engine.commit(&delta).unwrap();
            let mut next = oracle.last().unwrap().clone();
            delta.apply_in_place(&mut next).unwrap();
            assert_eq!(epoch as usize, oracle.len(), "seed {seed}");
            oracle.push(next);
            // Manual checkpoints interleave with the automatic policy, so
            // kill points land inside publish/truncate/prune sequences too.
            if seed % 5 == 0 && round == commits / 2 {
                engine.checkpoint().unwrap();
            }
        }
        drop(engine);
        let journal = disk.journal();

        // -- Locate every WAL record and the initial checkpoint publish. --
        let mut written = 0u64;
        let mut records: Vec<RecordSpan> = Vec::new();
        let mut initial_tmp_end = None;
        for op in &journal {
            if let si_durability::DiskOp::Append { file, bytes } = op {
                let start = written;
                written += bytes.len() as u64;
                if file.starts_with("wal-") && !bytes.is_empty() {
                    records.push(RecordSpan {
                        start,
                        end: written,
                        epoch: records.len() as u64 + 1,
                    });
                } else if initial_tmp_end.is_none() && file.ends_with(".ckpt.tmp") {
                    initial_tmp_end = Some(written);
                }
            }
        }
        let initial_tmp_end = initial_tmp_end.expect("the base checkpoint was published");
        assert!(!records.is_empty(), "seed {seed}: no commits recorded");

        // -- Nothing durable before the base checkpoint's rename. --
        for k in [1, initial_tmp_end] {
            let disk_at = SimDisk::reconstruct_at(&journal, k);
            assert!(
                matches!(
                    Wal::recover(Box::new(disk_at)),
                    Err(DurabilityError::NoCheckpoint)
                ),
                "seed {seed} kill {k}: recovery before the base checkpoint"
            );
            no_checkpoint_kills += 1;
        }

        // -- Every record's kill points. --
        for (i, record) in records.iter().enumerate() {
            for k in [record.start, record.start + 1, record.end - 1, record.end] {
                if k <= initial_tmp_end {
                    // The base checkpoint's rename is issued at exactly
                    // `initial_tmp_end` written bytes, so a kill at or
                    // before that point leaves nothing published — the
                    // NoCheckpoint probe above already covers this state.
                    continue;
                }
                let expected_epoch = records.iter().filter(|r| r.end <= k).count() as u64;
                let disk_at = SimDisk::reconstruct_at(&journal, k);
                let (rec, _) = Wal::recover(Box::new(disk_at))
                    .unwrap_or_else(|e| panic!("seed {seed} kill {k}: recovery failed: {e:?}"));
                assert_eq!(
                    rec.epoch, expected_epoch,
                    "seed {seed} kill {k}: wrong durable epoch"
                );
                let got = merged(&rec.databases);
                assert!(
                    same(&got, &oracle[expected_epoch as usize]),
                    "seed {seed} kill {k}: recovered contents diverged at epoch {expected_epoch}"
                );
                kill_points += 1;
                if k > record.start && k < record.end {
                    torn_kills += 1;
                }
            }

            // A subset of fully-durable kill points goes through the full
            // engine: answers, statistics and shard layout must match a
            // never-crashed world.
            if i % 3 != 0 {
                continue;
            }
            let disk_at = SimDisk::reconstruct_at(&journal, record.end);
            let recovered =
                Engine::recover(Box::new(disk_at), access.clone(), config.clone()).unwrap();
            let expected_epoch = record.epoch;
            let pre_crash = &oracle[expected_epoch as usize];
            assert_eq!(recovered.epoch(), expected_epoch, "seed {seed} record {i}");
            let snapshot = recovered.snapshot();
            assert_eq!(
                snapshot.statistics(),
                pre_crash.statistics(),
                "seed {seed} record {i}: statistics diverged"
            );
            assert_eq!(
                snapshot.shard_epochs(),
                vec![expected_epoch; snapshot.shard_count()],
                "seed {seed} record {i}: shard epochs incoherent"
            );
            let query = si_workload::q1();
            for p in 0..4i64 {
                let request = Request::new(query.clone(), vec!["p".into()], vec![Value::int(p)]);
                let mut got = recovered.execute(&request).unwrap().answers;
                got.sort();
                let bound = query.bind(&[("p".to_string(), Value::int(p))]);
                let mut naive = evaluate_cq(&bound, pre_crash, None).unwrap();
                naive.sort();
                assert_eq!(got, naive, "seed {seed} record {i} p {p}: answers diverged");
            }
            engine_recoveries += 1;
        }

        // -- Corrupt tail: flip one bit in the final record of the final
        //    segment; the CRC must catch it and recovery falls back exactly
        //    one epoch (or to the checkpoint if it was the only record). --
        let full = SimDisk::reconstruct_at(&journal, u64::MAX);
        let segment = {
            use si_durability::Storage as _;
            let mut segs: Vec<String> = full
                .list()
                .unwrap()
                .into_iter()
                .filter(|n| n.starts_with("wal-") && n.ends_with(".log"))
                .collect();
            segs.sort();
            segs.pop().expect("a current segment always exists")
        };
        let bytes = {
            use si_durability::Storage as _;
            full.read(&segment).unwrap()
        };
        let mut frames: Vec<(usize, u64)> = Vec::new(); // (start offset, epoch)
        let mut pos = 0usize;
        while pos < bytes.len() {
            let start = pos;
            let payload = codec::read_frame(&bytes, &mut pos).unwrap();
            let epoch = Reader::new(payload).u64().unwrap();
            frames.push((start, epoch));
        }
        if let Some(&(start, epoch)) = frames.last() {
            full.flip_bit(&segment, start + codec::FRAME_HEADER + 3, seed as u8 % 8);
            let (rec, _) = Wal::recover(Box::new(full)).unwrap();
            assert_eq!(
                rec.epoch,
                epoch - 1,
                "seed {seed}: corrupt tail must fall back one epoch"
            );
            assert!(rec.repaired, "seed {seed}: corruption must be repaired");
            assert!(
                same(&merged(&rec.databases), &oracle[(epoch - 1) as usize]),
                "seed {seed}: post-corruption contents diverged"
            );
            bit_flips += 1;
        }
    }

    // The harness only means something if the paths actually ran.
    assert!(kill_points > 3_000, "only {kill_points} kill points probed");
    assert!(torn_kills > 1_500, "only {torn_kills} torn-record kills");
    assert!(
        no_checkpoint_kills >= 2 * SEEDS,
        "only {no_checkpoint_kills} pre-checkpoint kills"
    );
    assert!(
        engine_recoveries > 200,
        "only {engine_recoveries} full-engine recoveries"
    );
    // Seeds with `checkpoint_every == 1` truncate the log after every
    // commit, so their current segment is empty and has no record to
    // corrupt — roughly a third of the schedules skip the bit-flip arm.
    assert!(bit_flips > 60, "only {bit_flips} corrupt-tail schedules");
    println!(
        "crash recovery: {kill_points} kill points across {SEEDS} schedules, 0 divergent \
         ({torn_kills} torn records, {no_checkpoint_kills} pre-checkpoint kills, \
         {engine_recoveries} full-engine recoveries, {bit_flips} corrupt tails)"
    );
}

/// Satellite: sharded recovery keeps the 3-shard layout *identical* — same
/// per-shard contents and routing as a never-crashed sharded store, with
/// the shard-equivalence property (sharded answers ≡ unsharded answers) as
/// the oracle on the recovered engine.
#[test]
fn sharded_recovery_preserves_routing_and_shard_epochs() {
    for seed in 0..12u64 {
        let db = SocialGenerator::new(SocialConfig {
            persons: 20,
            restaurants: 5,
            avg_friends: 4,
            avg_visits: 2,
            seed,
            ..SocialConfig::default()
        })
        .generate();
        let access = si_access::facebook_access_schema(5_000);
        let disk = SimDisk::new();
        let engine = Engine::new_sharded_durable(
            db.clone(),
            access.clone(),
            social_partition_map(),
            3,
            Box::new(disk.clone()),
            EngineConfig {
                workers: 1,
                durability: Some(si_durability::DurabilityConfig {
                    checkpoint_every: seed % 3,
                    keep_checkpoints: 2,
                }),
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let mut oracle = db;
        let mut rng = SplitMix64::seed_from_u64(0x5AAD_C4A5 ^ seed);
        let mut fresh = 8_000_000usize;
        for _ in 0..6 {
            let delta = gen_delta(&mut rng, &oracle, &mut fresh);
            if delta.is_empty() {
                continue;
            }
            engine.commit(&delta).unwrap();
            delta.apply_in_place(&mut oracle).unwrap();
        }
        let final_epoch = engine.epoch();
        drop(engine); // the crash

        let recovered = Engine::recover(
            Box::new(disk),
            access.clone(),
            EngineConfig {
                workers: 1,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        assert_eq!(recovered.epoch(), final_epoch, "seed {seed}");

        // Global and per-shard epochs stay coherent through recovery.
        let snapshot = recovered.snapshot();
        assert_eq!(snapshot.shard_count(), 3, "seed {seed}");
        assert_eq!(snapshot.shard_epochs(), vec![final_epoch; 3], "seed {seed}");

        // Routing is *identical*, shard by shard, to a sharded store built
        // fresh from the oracle state — recovery may not shuffle tuples
        // between shards even if the merged contents would still be right.
        let EngineSnapshot::Sharded(view) = &snapshot else {
            panic!("seed {seed}: recovered engine lost its sharded backend");
        };
        let fresh_store =
            si_data::ShardedSnapshotStore::new(oracle.clone(), social_partition_map(), 3).unwrap();
        let fresh_view = fresh_store.pin();
        for (i, (a, b)) in view.shards().iter().zip(fresh_view.shards()).enumerate() {
            assert!(
                same(&a.to_database(), &b.to_database()),
                "seed {seed}: shard {i} contents diverged from fresh routing"
            );
        }

        // Shard-equivalence as the oracle: the recovered sharded engine
        // answers exactly like an unsharded engine over the same state.
        let unsharded = Engine::new(
            oracle.clone(),
            access.clone(),
            EngineConfig {
                workers: 1,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let query = si_workload::q1();
        for p in 0..6i64 {
            let request = Request::new(query.clone(), vec!["p".into()], vec![Value::int(p)]);
            let a = recovered.execute(&request).unwrap();
            let b = unsharded.execute(&request).unwrap();
            let mut ga = a.answers.clone();
            let mut gb = b.answers.clone();
            ga.sort();
            gb.sort();
            assert_eq!(ga, gb, "seed {seed} p {p}");
            assert_eq!(a.accesses, b.accesses, "seed {seed} p {p}");
        }

        // And the recovered engine keeps committing durably.
        let mut extra = Delta::new();
        extra.insert(
            "friend",
            vec![Value::int(77_000_001), Value::int(77_000_002)].into(),
        );
        recovered.commit(&extra).unwrap();
        assert_eq!(recovered.epoch(), final_epoch + 1, "seed {seed}");
    }
}
