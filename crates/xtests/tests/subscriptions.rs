//! End-to-end suite for the reactive plane: live `ObservableQuery`
//! subscriptions driven through churn, group-commit storms and crash
//! recovery, with every stream checked against the replay oracle — the
//! state rebuilt purely from the pushed updates (the fenced initial
//! `Resync` plus per-commit `ChangeSet`s, with overflow and recovery
//! resyncs in between) must equal the answer a cold query computes on a
//! naive oracle database at every point a subscriber looks.
//!
//! Three angles:
//!
//! * **Churn** — `si_workload::subscriber_churn_scenario` interleaves
//!   subscribes, drops and commits, so registration fencing and pin
//!   accounting run against a moving subscriber population.
//! * **Group commits** — storms committed through `Engine::commit_group`
//!   must stream net effects only: one change-set per group that changed
//!   the answer, nothing for a group that cancels out, and a
//!   delete-then-reinsert `visit` storm (which never joins `restr`) is
//!   elided entirely.
//! * **Recovery** — a durable engine is killed mid-stream and rebuilt with
//!   `Engine::recover_with_subscriptions`: every surviving subscriber must
//!   see a `Resync` stamped with the recovered epoch as its next
//!   synchronization point, then resume incremental delivery.

use si_data::{Database, Delta, Tuple, Value};
use si_durability::SimDisk;
use si_engine::{AnswerUpdate, Engine, EngineConfig, ObservableQuery, Request};
use si_query::evaluate_cq;
use si_workload::rng::SplitMix64;
use si_workload::{
    serving_access_schema, small_commit_storm, subscriber_churn_scenario, ChurnOp,
    GeneratedRequest, SocialConfig, SocialGenerator,
};
use std::collections::BTreeSet;

/// One live subscription plus the state replayed from its update stream.
struct LiveSubscription {
    handle: ObservableQuery,
    state: Vec<Tuple>,
    request: GeneratedRequest,
}

/// What a cold query computes for `request` on the oracle database.
fn cold_answers(request: &GeneratedRequest, db: &Database) -> Vec<Tuple> {
    let bindings: Vec<(String, Value)> = request
        .parameters
        .iter()
        .cloned()
        .zip(request.values.iter().copied())
        .collect();
    let bound = request.query.bind(&bindings);
    let mut answers = evaluate_cq(&bound, db, None).unwrap();
    answers.sort();
    answers
}

/// Drains one subscriber into its replayed state and checks it against the
/// oracle.  Returns the number of (change-sets, resyncs) drained.
fn drain_replay(sub: &mut LiveSubscription, oracle: &Database, context: &str) -> (u64, u64) {
    let mut changes = 0u64;
    let mut resyncs = 0u64;
    for update in sub.handle.drain() {
        match &update {
            AnswerUpdate::Changes(_) => changes += 1,
            AnswerUpdate::Resync { .. } => resyncs += 1,
        }
        update.apply_to(&mut sub.state);
    }
    let expected = cold_answers(&sub.request, oracle);
    assert_eq!(
        sub.state, expected,
        "replay diverged: {context} query {} values {:?}",
        sub.request.query.name, sub.request.values
    );
    (changes, resyncs)
}

/// Subscribes `engine` to `request` and replays the fenced initial resync.
fn open_subscription(
    engine: &Engine,
    request: GeneratedRequest,
    oracle: &Database,
    context: &str,
) -> LiveSubscription {
    let handle = engine
        .subscribe(&Request::new(
            request.query.clone(),
            request.parameters.clone(),
            request.values.clone(),
        ))
        .unwrap_or_else(|e| panic!("subscribe failed: {context}: {e:?}"));
    let mut sub = LiveSubscription {
        handle,
        state: Vec::new(),
        request,
    };
    let (changes, resyncs) = drain_replay(&mut sub, oracle, context);
    assert_eq!(resyncs, 1, "registration queues exactly one resync");
    assert_eq!(changes, 0, "no change-set can precede registration");
    sub
}

/// A 1–2 tuple friend insert/delete batch valid against the oracle, biased
/// towards the `hot` lowest person ids (the ones subscriptions watch) so
/// the streams actually carry changes.
fn friend_flip(rng: &mut SplitMix64, oracle: &Database, hot: usize) -> Delta {
    let persons = oracle
        .relation("person")
        .map(|r| r.len())
        .unwrap_or(1)
        .max(1);
    let hot = hot.clamp(1, persons);
    let mut delta = Delta::new();
    let mut planned: BTreeSet<Tuple> = BTreeSet::new();
    for _ in 0..(1 + rng.gen_range(0..2usize)) {
        if rng.gen_range(0..2usize) == 0 {
            let a = Value::from(if rng.gen_range(0..3usize) < 2 {
                rng.gen_range(0..hot)
            } else {
                rng.gen_range(0..persons)
            });
            let b = Value::from(rng.gen_range(0..persons));
            let t: Tuple = vec![a, b].into();
            if !oracle.contains("friend", &t).unwrap() && planned.insert(t.clone()) {
                delta.insert("friend", t);
            }
        } else {
            let rel = oracle.relation("friend").unwrap();
            // Prefer deleting an edge a subscribed person owns.
            let hot_edges: Vec<Tuple> = rel
                .iter()
                .filter(|t| matches!(t.get(0), Some(Value::Int(a)) if (*a as usize) < hot))
                .cloned()
                .collect();
            let pool: &[Tuple] = if !hot_edges.is_empty() && rng.gen_range(0..3usize) < 2 {
                &hot_edges
            } else {
                &[]
            };
            let t = if pool.is_empty() {
                if rel.is_empty() {
                    continue;
                }
                let i = rng.gen_range(0..rel.len());
                rel.iter().nth(i).cloned()
            } else {
                Some(pool[rng.gen_range(0..pool.len())].clone())
            };
            if let Some(t) = t {
                if planned.insert(t.clone()) {
                    delta.delete("friend", t);
                }
            }
        }
    }
    delta
}

fn social_db(seed: u64) -> Database {
    SocialGenerator::new(SocialConfig {
        persons: 40 + (seed as usize % 4) * 10,
        restaurants: 10,
        avg_friends: 5,
        avg_visits: 2,
        seed,
        ..SocialConfig::default()
    })
    .generate()
}

fn reactive_config() -> EngineConfig {
    EngineConfig {
        workers: 1,
        materialize_capacity: 16,
        materialize_after: 1,
        stats_drift_threshold: 0.1,
        subscriber_queue_capacity: 8,
        ..EngineConfig::default()
    }
}

#[test]
fn subscriber_churn_replays_exactly_under_interleaved_commits() {
    let mut subscribes = 0u64;
    let mut drops = 0u64;
    let mut streamed_changes = 0u64;
    for seed in 0..24u64 {
        let db = social_db(seed);
        let engine =
            Engine::new(db.clone(), serving_access_schema(5_000), reactive_config()).unwrap();
        let schedule = subscriber_churn_scenario(&db, 100, 5, 6, 30, seed);
        let mut oracle = db;
        let mut slots: Vec<Option<LiveSubscription>> = (0..5).map(|_| None).collect();
        for (op, step) in schedule.into_iter().enumerate() {
            let context = format!("seed {seed} op {op}");
            match step {
                ChurnOp::Subscribe { slot, request } => {
                    slots[slot] = Some(open_subscription(&engine, request, &oracle, &context));
                    subscribes += 1;
                }
                ChurnOp::Unsubscribe { slot } => {
                    slots[slot] = None;
                    drops += 1;
                }
                ChurnOp::Commit(delta) => {
                    engine.commit(&delta).unwrap();
                    delta.apply_in_place(&mut oracle).unwrap();
                    for sub in slots.iter_mut().flatten() {
                        let (changes, _) = drain_replay(sub, &oracle, &context);
                        streamed_changes += changes;
                    }
                }
            }
        }
        // The registry's population tracks the live handles exactly: drops
        // released their pins, survivors are still registered.
        let live = slots.iter().flatten().count() as u64;
        assert_eq!(
            engine.metrics().subscribers,
            live,
            "registry population diverged from live handles: seed {seed}"
        );
    }
    assert!(
        subscribes > 400,
        "only {subscribes} subscribes across the suite"
    );
    assert!(drops > 300, "only {drops} drops across the suite");
    println!(
        "subscriber churn: {subscribes} subscribes, {drops} drops, \
         {streamed_changes} change-sets replayed exactly"
    );
}

#[test]
fn group_commit_storms_stream_net_effects_that_replay_exactly() {
    for seed in 0..12u64 {
        let db = social_db(seed);
        let engine =
            Engine::new(db.clone(), serving_access_schema(5_000), reactive_config()).unwrap();
        let mut oracle = db.clone();
        let requests = si_workload::social_requests(8, 6, seed ^ 0x6E0);
        let mut subs: Vec<LiveSubscription> = requests
            .into_iter()
            .map(|request| open_subscription(&engine, request, &oracle, &format!("seed {seed}")))
            .collect();

        // Friend-flip batches committed as groups of three: each subscriber
        // sees at most ONE update per group — the net effect — however many
        // member deltas touched its answer.
        let mut rng = SplitMix64::seed_from_u64(0x9E00F ^ seed);
        for round in 0..6 {
            let mut group = Vec::new();
            for _ in 0..3 {
                let delta = friend_flip(&mut rng, &oracle, 8);
                if !delta.is_empty() {
                    delta.apply_in_place(&mut oracle).unwrap();
                    group.push(delta);
                }
            }
            if group.is_empty() {
                continue;
            }
            let outcomes = engine.commit_group(&group);
            assert!(
                outcomes.iter().all(|o| o.is_ok()),
                "seed {seed} round {round}"
            );
            for sub in subs.iter_mut() {
                assert!(
                    sub.handle.queue_len() <= 1,
                    "a group must stream at most one net update: seed {seed} round {round}"
                );
                drain_replay(sub, &oracle, &format!("seed {seed} round {round}"));
            }
        }

        // A delete-then-reinsert `visit` storm committed as ONE group: the
        // toggled facts use fresh restaurant ids that never join `restr`,
        // and an even toggle count cancels outright — the group advances
        // the epoch but every subscriber's change-set is empty and elided.
        let storm = small_commit_storm(&oracle, 16, 2, seed);
        let outcomes = engine.commit_group(&storm);
        assert!(outcomes.iter().all(|o| o.is_ok()), "seed {seed}");
        for delta in &storm {
            delta.apply_in_place(&mut oracle).unwrap();
        }
        for sub in subs.iter_mut() {
            assert_eq!(
                sub.handle.queue_len(),
                0,
                "a cancelled-out storm must deliver nothing: seed {seed}"
            );
            drain_replay(sub, &oracle, &format!("seed {seed} post-storm"));
        }
    }
}

#[test]
fn recovery_mid_stream_resumes_with_a_resync_at_the_recovered_epoch() {
    let mut recoveries = 0u64;
    let mut post_recovery_changes = 0u64;
    for seed in 0..16u64 {
        let db = social_db(seed);
        let access = serving_access_schema(5_000);
        let disk = SimDisk::new();
        let mut engine = Engine::new_durable(
            db.clone(),
            access.clone(),
            Box::new(disk.clone()),
            reactive_config(),
        )
        .unwrap();
        let mut oracle = db;
        let requests = si_workload::social_requests(6, 4, seed ^ 0xAB1E);
        let mut subs: Vec<LiveSubscription> = requests
            .into_iter()
            .map(|request| open_subscription(&engine, request, &oracle, &format!("seed {seed}")))
            .collect();

        let mut rng = SplitMix64::seed_from_u64(0x5EED_CAFE ^ seed);
        let mut kill_rng = SplitMix64::seed_from_u64(0xDEAD_FA11 ^ seed);
        for op in 0..20 {
            let delta = friend_flip(&mut rng, &oracle, 8);
            if delta.is_empty() {
                continue;
            }
            engine.commit(&delta).unwrap();
            delta.apply_in_place(&mut oracle).unwrap();

            if kill_rng.gen_range(0..4u8) == 0 {
                // Kill mid-stream: some updates may still sit undrained in
                // the queues.  The recovered engine re-seeds every
                // surviving subscription, and the LAST thing each queue
                // holds must be a Resync stamped with the recovered epoch —
                // the explicit point from which the stream is exact again.
                let registry = engine.subscriptions();
                drop(engine);
                engine = Engine::recover_with_subscriptions(
                    Box::new(disk.clone()),
                    access.clone(),
                    reactive_config(),
                    registry,
                )
                .unwrap_or_else(|e| panic!("recovery failed: seed {seed} op {op}: {e:?}"));
                recoveries += 1;
                for sub in subs.iter_mut() {
                    let updates = sub.handle.drain();
                    match updates.last() {
                        Some(AnswerUpdate::Resync { epoch, .. }) => assert_eq!(
                            *epoch,
                            engine.epoch(),
                            "recovery resync must carry the recovered epoch: seed {seed} op {op}"
                        ),
                        other => panic!(
                            "recovery must end the queue with a resync, got {other:?}: \
                             seed {seed} op {op}"
                        ),
                    }
                    for update in updates {
                        update.apply_to(&mut sub.state);
                    }
                    let expected = cold_answers(&sub.request, &oracle);
                    assert_eq!(
                        sub.state, expected,
                        "post-recovery replay diverged: seed {seed} op {op}"
                    );
                }
            } else {
                for sub in subs.iter_mut() {
                    let (changes, _) = drain_replay(sub, &oracle, &format!("seed {seed} op {op}"));
                    post_recovery_changes += changes;
                }
            }
        }
    }
    assert!(
        recoveries > 10,
        "only {recoveries} mid-stream recoveries ran"
    );
    assert!(
        post_recovery_changes > 30,
        "only {post_recovery_changes} incremental change-sets streamed around recoveries"
    );
    println!(
        "recovery mid-stream: {recoveries} recoveries, every stream resynced at the \
         recovered epoch and {post_recovery_changes} change-sets replayed exactly"
    );
}
