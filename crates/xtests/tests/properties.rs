//! Property-based tests of the core invariants, spanning crates.
//!
//! The strategies generate small random social-graph instances, random
//! parameter values and random updates; the properties assert the paper's
//! defining equations:
//!
//! * bounded evaluation agrees with naive evaluation and its witness really
//!   is a witness (`Q(D_Q) = Q(D)` with `|D_Q|` within the static bound);
//! * change propagation satisfies `E(D ⊕ ∆D) = (E(D) − E∇) ∪ E∆` with
//!   `E∇ ⊆ E(D)` and `E∆ ∩ E(D) = ∅`;
//! * applying an update and its observed inverse round-trips the database;
//! * CQ→RA translation preserves answers.

use proptest::prelude::*;
use si_access::{facebook_access_schema, AccessIndexedDatabase};
use si_core::prelude::*;
use si_core::check_witness;
use si_data::schema::social_schema;
use si_data::{tuple, Database, Delta, Value};
use si_query::{cq_to_ra, evaluate_cq, evaluate_ra, RaExpr};
use si_workload::q1;

/// Builds a small social database from generated edge/visit lists.
fn build_db(
    people: usize,
    friends: &[(usize, usize)],
    visits: &[(usize, usize)],
) -> Database {
    let mut db = Database::empty(social_schema());
    let cities = ["NYC", "LA", "SF"];
    for id in 0..people {
        db.insert(
            "person",
            tuple![id, format!("p{id}"), cities[id % cities.len()]],
        )
        .unwrap();
    }
    for rid in 0..4usize {
        let city = if rid % 2 == 0 { "NYC" } else { "LA" };
        let rating = if rid % 3 == 0 { "A" } else { "B" };
        db.insert("restr", tuple![100 + rid, format!("r{rid}"), city, rating])
            .unwrap();
    }
    for (a, b) in friends {
        if a != b {
            db.insert("friend", tuple![*a % people, *b % people]).unwrap();
        }
    }
    for (p, r) in visits {
        db.insert("visit", tuple![*p % people, 100 + (*r % 4)]).unwrap();
    }
    db
}

fn db_strategy() -> impl Strategy<Value = Database> {
    (
        3usize..8,
        prop::collection::vec((0usize..8, 0usize..8), 0..20),
        prop::collection::vec((0usize..8, 0usize..6), 0..15),
    )
        .prop_map(|(people, friends, visits)| build_db(people, &friends, &visits))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bounded_q1_agrees_with_naive_and_yields_a_witness(
        db in db_strategy(),
        p in 0i64..8,
    ) {
        let access = facebook_access_schema(5000);
        let schema = db.schema().clone();
        let plan = BoundedPlanner::new(&schema, &access).plan(&q1(), &["p".into()]).unwrap();
        let adb = AccessIndexedDatabase::new(db, access).unwrap();
        let bounded = execute_bounded(&plan, &[Value::int(p)], &adb).unwrap();
        let naive = execute_naive(&q1(), &["p".into()], &[Value::int(p)], adb.database()).unwrap();
        let mut a = bounded.answers.clone();
        let mut b = naive.answers.clone();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
        prop_assert!(bounded.accesses.tuples_fetched <= plan.static_cost().max_tuples);
        let bound_q: AnyQuery = q1().bind(&[("p".into(), Value::int(p))]).into();
        prop_assert!(check_witness(&bound_q, adb.database(), &bounded.witness, bounded.witness.size()).unwrap());
    }

    #[test]
    fn change_propagation_is_exact_for_q1_algebra(
        db in db_strategy(),
        inserts in prop::collection::vec((0usize..8, 0usize..8), 0..6),
        delete_friend in prop::bool::ANY,
    ) {
        let schema = db.schema().clone();
        let expr: RaExpr = cq_to_ra(&q1(), &schema).unwrap();

        // Build a well-formed update: fresh friend insertions + possibly one
        // existing friend deletion.
        let mut delta = Delta::new();
        for (a, b) in &inserts {
            let t = tuple![*a, *b + 10];
            if !db.contains("friend", &t).unwrap() {
                delta.insert("friend", t);
            }
        }
        if delete_friend {
            if let Some(t) = db.relation("friend").unwrap().iter().next().cloned() {
                delta.delete("friend", t);
            }
        }
        prop_assume!(delta.validate(&db).is_ok());

        let old = evaluate_ra(&expr, &db).unwrap();
        let maintained = si_core::incremental::maintain(&expr, &old, &db, &delta).unwrap();
        let updated = delta.apply(&db).unwrap();
        let direct = evaluate_ra(&expr, &updated).unwrap();
        let mut got = maintained.tuples;
        let mut want = direct.align_to(&maintained.attributes).unwrap().tuples;
        got.sort();
        want.sort();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn cq_to_ra_translation_preserves_answers(
        db in db_strategy(),
        p in 0i64..8,
    ) {
        let schema = db.schema().clone();
        let bound = q1().bind(&[("p".into(), Value::int(p))]);
        let expr = cq_to_ra(&bound, &schema).unwrap();
        let mut via_ra = evaluate_ra(&expr, &db).unwrap().tuples;
        let mut via_cq = evaluate_cq(&bound, &db, None).unwrap();
        via_ra.sort();
        via_cq.sort();
        prop_assert_eq!(via_ra, via_cq);
    }

    #[test]
    fn delta_apply_preserves_size_accounting(
        db in db_strategy(),
        inserts in prop::collection::vec((0usize..8, 0usize..8), 0..8),
    ) {
        let mut delta = Delta::new();
        for (a, b) in &inserts {
            let t = tuple![*a, *b + 20];
            if !db.contains("friend", &t).unwrap() {
                delta.insert("friend", t);
            }
        }
        prop_assume!(delta.validate(&db).is_ok());
        let distinct_inserts: std::collections::BTreeSet<_> = delta
            .relation_delta("friend")
            .map(|d| d.insertions.iter().cloned().collect())
            .unwrap_or_default();
        let updated = delta.apply(&db).unwrap();
        prop_assert_eq!(updated.size(), db.size() + distinct_inserts.len());
        // And every inserted tuple is present.
        for t in &distinct_inserts {
            prop_assert!(updated.contains("friend", t).unwrap());
        }
    }
}
