//! Property-based tests of the core invariants, spanning crates.
//!
//! The build environment is offline, so instead of `proptest` these
//! properties run a deterministic randomized loop: a seeded [`SplitMix64`]
//! stream generates small random social-graph instances, random parameter
//! values and random updates, and each property is asserted over every case.
//! Failures print the offending seed so a case can be replayed by hand.
//!
//! Covered invariants:
//!
//! * the interned hash-join CQ evaluator agrees with naive active-domain FO
//!   evaluation (`evaluate_cq(Q) = evaluate_fo(Q^FO)` as sets);
//! * intern/resolve round-trips are lossless for every [`Value`] variant,
//!   including `Null`;
//! * bounded evaluation agrees with naive evaluation and its witness really
//!   is a witness (`Q(D_Q) = Q(D)` with `|D_Q|` within the static bound);
//! * change propagation satisfies `E(D ⊕ ∆D) = (E(D) − E∇) ∪ E∆`;
//! * CQ→RA translation preserves answers;
//! * applying an update preserves exact size accounting.

use si_access::{facebook_access_schema, AccessIndexedDatabase};
use si_core::check_witness;
use si_core::prelude::*;
use si_data::schema::social_schema;
use si_data::{tuple, Database, Delta, Symbol, Tuple, Value};
use si_query::{cq_to_ra, evaluate_cq, evaluate_fo, evaluate_ra, RaExpr};
use si_workload::q1;
use si_workload::rng::SplitMix64;

const CASES: u64 = 48;

/// Builds a small random social database from a seeded stream.
fn random_db(rng: &mut SplitMix64) -> Database {
    let people = rng.gen_range(3usize..8);
    let mut db = Database::empty(social_schema());
    let cities = ["NYC", "LA", "SF"];
    for id in 0..people {
        db.insert(
            "person",
            tuple![id, format!("p{id}"), cities[id % cities.len()]],
        )
        .unwrap();
    }
    for rid in 0..4usize {
        let city = if rid % 2 == 0 { "NYC" } else { "LA" };
        let rating = if rid % 3 == 0 { "A" } else { "B" };
        db.insert("restr", tuple![100 + rid, format!("r{rid}"), city, rating])
            .unwrap();
    }
    for _ in 0..rng.gen_range(0usize..20) {
        let a = rng.gen_range(0usize..people);
        let b = rng.gen_range(0usize..people);
        if a != b {
            db.insert("friend", tuple![a, b]).unwrap();
        }
    }
    for _ in 0..rng.gen_range(0usize..15) {
        let p = rng.gen_range(0usize..people);
        let r = rng.gen_range(0usize..4);
        db.insert("visit", tuple![p, 100 + r]).unwrap();
    }
    db
}

fn sorted(mut tuples: Vec<Tuple>) -> Vec<Tuple> {
    tuples.sort();
    tuples
}

#[test]
fn interned_cq_evaluation_agrees_with_naive_fo() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let db = random_db(&mut rng);
        // Unbound Q1 exercises joins; the bound version exercises constants.
        let queries = [
            q1(),
            q1().bind(&[("p".into(), Value::int(rng.gen_range(0i64..8)))]),
        ];
        for q in queries {
            let via_cq = sorted(evaluate_cq(&q, &db, None).unwrap());
            let via_fo = sorted(evaluate_fo(&q.to_fo(), &db).unwrap());
            assert_eq!(via_cq, via_fo, "CQ ≠ FO for `{q}` (seed {seed})");
        }
    }
}

#[test]
fn interned_cq_answers_contain_no_duplicates() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed * 31 + 5);
        let db = random_db(&mut rng);
        let answers = evaluate_cq(&q1(), &db, None).unwrap();
        let distinct: std::collections::BTreeSet<&Tuple> = answers.iter().collect();
        assert_eq!(distinct.len(), answers.len(), "duplicates (seed {seed})");
    }
}

#[test]
fn intern_resolve_round_trips_are_lossless() {
    // Every variant survives construction → accessor → display → reparse.
    let mut rng = SplitMix64::seed_from_u64(7);
    for case in 0..500u64 {
        match case % 4 {
            0 => {
                let v = Value::Null;
                assert!(v.is_null());
                assert_eq!(v.to_string(), "NULL");
            }
            1 => {
                let b = rng.gen_range(0usize..2) == 0;
                let v = Value::bool(b);
                assert_eq!(v.as_bool(), Some(b));
            }
            2 => {
                let i = rng.next_u64() as i64;
                let v = Value::int(i);
                assert_eq!(v.as_int(), Some(i));
            }
            _ => {
                let s = format!("sym-{}-{}", case, rng.gen_range(0usize..50));
                let v = Value::str(s.clone());
                // Resolution returns exactly the interned text…
                assert_eq!(v.as_str(), Some(s.as_str()));
                // …and re-interning the resolved text yields the same symbol.
                assert_eq!(v, Value::str(v.as_str().unwrap()));
                assert_eq!(Symbol::intern(&s).as_str(), s);
            }
        }
    }
    // Interning is idempotent and order-independent for equal strings.
    let a = Value::str("idempotent");
    let b = Value::str(String::from("idempotent"));
    assert_eq!(a, b);
    // Distinct strings stay distinct.
    assert_ne!(Value::str("x1"), Value::str("x2"));
    // Symbol equality is value equality, and ordering is lexicographic.
    assert!(Value::str("abc") < Value::str("abd"));
    assert!(Value::str("zzz") > Value::str("aaa"));
}

#[test]
fn bounded_q1_agrees_with_naive_and_yields_a_witness() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed * 131 + 17);
        let db = random_db(&mut rng);
        let p = rng.gen_range(0i64..8);
        let access = facebook_access_schema(5000);
        let schema = db.schema().clone();
        let plan = BoundedPlanner::new(&schema, &access)
            .plan(&q1(), &["p".into()])
            .unwrap();
        let adb = AccessIndexedDatabase::new(db, access).unwrap();
        let bounded = execute_bounded(&plan, &[Value::int(p)], &adb).unwrap();
        let naive = execute_naive(&q1(), &["p".into()], &[Value::int(p)], adb.database()).unwrap();
        assert_eq!(
            sorted(bounded.answers.clone()),
            sorted(naive.answers),
            "bounded ≠ naive (seed {seed}, p {p})"
        );
        assert!(bounded.accesses.tuples_fetched <= plan.static_cost().max_tuples);
        let bound_q: AnyQuery = q1().bind(&[("p".into(), Value::int(p))]).into();
        assert!(check_witness(
            &bound_q,
            adb.database(),
            &bounded.witness,
            bounded.witness.size()
        )
        .unwrap());
    }
}

#[test]
fn change_propagation_is_exact_for_q1_algebra() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed * 977 + 3);
        let db = random_db(&mut rng);
        let schema = db.schema().clone();
        let expr: RaExpr = cq_to_ra(&q1(), &schema).unwrap();

        // Build a well-formed update: fresh friend insertions + possibly one
        // existing friend deletion.
        let mut delta = Delta::new();
        for _ in 0..rng.gen_range(0usize..6) {
            let t = tuple![rng.gen_range(0usize..8), rng.gen_range(0usize..8) + 10];
            if !db.contains("friend", &t).unwrap()
                && !delta
                    .relation_delta("friend")
                    .map(|d| d.insertions.contains(&t))
                    .unwrap_or(false)
            {
                delta.insert("friend", t);
            }
        }
        if rng.gen_range(0usize..2) == 0 {
            if let Some(t) = db.relation("friend").unwrap().iter().next().cloned() {
                delta.delete("friend", t);
            }
        }
        if delta.validate(&db).is_err() {
            continue;
        }

        let old = evaluate_ra(&expr, &db).unwrap();
        let maintained = si_core::incremental::maintain(&expr, &old, &db, &delta).unwrap();
        let updated = delta.apply(&db).unwrap();
        let direct = evaluate_ra(&expr, &updated).unwrap();
        assert_eq!(
            sorted(maintained.tuples.clone()),
            sorted(direct.align_to(&maintained.attributes).unwrap().tuples),
            "maintenance drifted (seed {seed})"
        );
    }
}

#[test]
fn cq_to_ra_translation_preserves_answers() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed * 613 + 11);
        let db = random_db(&mut rng);
        let p = rng.gen_range(0i64..8);
        let schema = db.schema().clone();
        let bound = q1().bind(&[("p".into(), Value::int(p))]);
        let expr = cq_to_ra(&bound, &schema).unwrap();
        assert_eq!(
            sorted(evaluate_ra(&expr, &db).unwrap().tuples),
            sorted(evaluate_cq(&bound, &db, None).unwrap()),
            "RA ≠ CQ (seed {seed}, p {p})"
        );
    }
}

#[test]
fn delta_apply_preserves_size_accounting() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed * 271 + 9);
        let db = random_db(&mut rng);
        let mut delta = Delta::new();
        for _ in 0..rng.gen_range(0usize..8) {
            let t = tuple![rng.gen_range(0usize..8), rng.gen_range(0usize..8) + 20];
            if !db.contains("friend", &t).unwrap() {
                delta.insert("friend", t);
            }
        }
        if delta.validate(&db).is_err() {
            continue;
        }
        let distinct_inserts: std::collections::BTreeSet<_> = delta
            .relation_delta("friend")
            .map(|d| d.insertions.iter().cloned().collect())
            .unwrap_or_default();
        let updated = delta.apply(&db).unwrap();
        assert_eq!(updated.size(), db.size() + distinct_inserts.len());
        for t in &distinct_inserts {
            assert!(updated.contains("friend", t).unwrap());
        }
    }
}
