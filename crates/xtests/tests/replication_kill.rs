//! Kill-at-any-byte harness over the replication stream: tear the
//! primary → replica wire at **every byte offset** of the shipped stream
//! (handshake, snapshot bootstrap, and — exhaustively — the WAL record)
//! and prove the replica is always left on a clean applied prefix, resyncs
//! over a fresh wire, and converges byte-for-byte with the primary, with
//! 0 divergent cases.
//!
//! The protocol's framing (length ‖ crc32 ‖ payload) means a torn frame is
//! detected, never half-applied: whatever epoch the replica reports after
//! the tear, its state at that epoch must equal the primary's state at
//! that epoch exactly.  Reconnecting with the engine's own attach path
//! then exercises both resync modes — WAL replay when the replica kept a
//! coverable epoch, full snapshot when the handshake itself was torn.

use si_data::{schema::social_schema, Database, Delta, Tuple, Value};
use si_engine::{Engine, EngineConfig, Request, ShardReplica};
use si_wire::{Connection, Duplex};
use si_workload::{serving_access_schema, social_partition_map};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

const RELATIONS: [&str; 4] = ["person", "friend", "visit", "restr"];
const RETAIN: usize = 8;

fn tiny_db() -> Database {
    let mut db = Database::empty(social_schema());
    db.insert_all(
        "person",
        vec![
            vec![Value::int(1), Value::str("ann"), Value::str("NYC")].into(),
            vec![Value::int(2), Value::str("bob"), Value::str("NYC")].into(),
            vec![Value::int(3), Value::str("cat"), Value::str("LA")].into(),
        ],
    )
    .unwrap();
    db.insert_all("friend", vec![tuple_of(&[1, 2]), tuple_of(&[2, 3])])
        .unwrap();
    db.insert_all("visit", vec![tuple_of(&[1, 100])]).unwrap();
    db
}

fn mk_engine(db: &Database) -> Engine {
    Engine::new_sharded(
        db.clone(),
        serving_access_schema(5_000),
        social_partition_map(),
        1,
        EngineConfig {
            materialize_after: u64::MAX,
            ..EngineConfig::default()
        },
    )
    .unwrap()
}

fn request() -> Request {
    Request::new(si_workload::q1(), vec!["p".into()], vec![Value::int(1)])
}

/// Sorted per-relation tuple sets — the divergence-free comparison basis.
fn sets(db: &Database) -> BTreeMap<String, Vec<Tuple>> {
    RELATIONS
        .iter()
        .map(|name| {
            let mut tuples: Vec<Tuple> = db
                .relation(name)
                .map(|r| r.iter().cloned().collect())
                .unwrap_or_default();
            tuples.sort();
            (name.to_string(), tuples)
        })
        .collect()
}

fn wait_until(deadline: Duration, mut done: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if done() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    done()
}

fn tuple_of(ints: &[i64]) -> Tuple {
    ints.iter()
        .map(|i| Value::int(*i))
        .collect::<Vec<_>>()
        .into()
}

/// Measures the replication stream: bytes the replica receives for the
/// attach handshake (hello + snapshot) and for the full stream including
/// the shipped WAL record of one commit.
fn measure_stream(db: &Database, delta: &Delta) -> (u64, u64) {
    let engine = mk_engine(db);
    let (primary_end, replica_end) = Duplex::pair();
    let conn = Arc::new(Connection::new(Arc::new(replica_end)));
    let replica = Arc::new(ShardReplica::new(RETAIN));
    replica.spawn(Arc::clone(&conn));
    engine.attach_replica(0, Arc::new(primary_end)).unwrap();
    let handshake = conn.bytes_received();
    engine.commit(delta).unwrap();
    assert!(
        wait_until(Duration::from_secs(5), || replica.newest_epoch() == Some(1)),
        "dry run never applied the shipped record"
    );
    let total = conn.bytes_received();
    assert!(total > handshake, "the WAL record must cross the wire");
    (handshake, total)
}

/// One kill scenario: tear the outbound wire after `cut` bytes, then
/// verify the clean-prefix invariant and drive a full resync over a fresh
/// wire.  Returns which resync mode ran (true = WAL replay possible).
fn run_cut(cut: u64, db: &Database, delta: &Delta, expected: &[BTreeMap<String, Vec<Tuple>>]) {
    let engine = mk_engine(db);
    let (primary_end, replica_end) = Duplex::pair();
    primary_end.kill_outbound_after(usize::try_from(cut).unwrap());
    let replica = Arc::new(ShardReplica::new(RETAIN));
    let serve = replica.spawn(Arc::new(Connection::new(Arc::new(replica_end))));
    let attached = engine.attach_replica(0, Arc::new(primary_end));
    let committed = attached.is_ok();
    if committed {
        // The ship is fire-and-forget: the commit itself never fails on a
        // torn replication wire.
        engine.commit(delta).unwrap();
    }
    // The torn serve loop exits on its own (a tear closes the pipe); when
    // nothing tore, the record lands.  Wait for whichever happens, then
    // settle the serve thread before inspecting the replica's state.
    assert!(
        wait_until(Duration::from_secs(5), || {
            serve.is_finished() || replica.newest_epoch() == Some(1)
        }),
        "cut {cut}: neither a tear nor a delivery was observed"
    );
    if serve.is_finished() {
        serve
            .join()
            .expect("serve thread panicked")
            .expect("torn wire must read as a clean close, not a protocol error");
    }

    // Clean-prefix invariant: whatever epoch the replica holds, its state
    // at that epoch is exactly the primary's state at that epoch — a torn
    // frame is never half-applied.
    if let Some(newest) = replica.newest_epoch() {
        let held = sets(&replica.database_at(newest).unwrap());
        assert_eq!(
            held,
            expected[usize::try_from(newest).unwrap()],
            "cut {cut}: dirty prefix at epoch {newest}"
        );
    }

    // Resync over a fresh wire using the engine's own attach path, then
    // prove convergence and end-to-end serving.
    let (primary_end, replica_end) = Duplex::pair();
    replica.spawn(Arc::new(Connection::new(Arc::new(replica_end))));
    engine.attach_replica(0, Arc::new(primary_end)).unwrap();
    if !committed {
        engine.commit(delta).unwrap();
    }
    let served = engine.execute_replicated(&request()).unwrap();
    assert_eq!(served.epoch, 1, "cut {cut}");
    assert_eq!(replica.newest_epoch(), Some(1), "cut {cut}");
    assert_eq!(
        sets(&replica.database_at(1).unwrap()),
        expected[1],
        "cut {cut}: divergent after resync"
    );
}

#[test]
fn wal_record_torn_at_every_byte_recovers_to_a_clean_prefix_and_resyncs() {
    let db = tiny_db();
    let delta = {
        let mut d = Delta::new();
        d.insert("friend", tuple_of(&[1, 3]));
        d.delete("friend", tuple_of(&[2, 3]));
        d.insert("visit", tuple_of(&[2, 100]));
        d
    };
    let mut after = db.clone();
    delta.apply_in_place(&mut after).unwrap();
    let expected = vec![sets(&db), sets(&after)];
    let (handshake, total) = measure_stream(&db, &delta);

    // Every byte of the WAL record frame, plus the exact boundary.
    for cut in handshake..=total {
        run_cut(cut, &db, &delta, &expected);
    }
    println!(
        "replication-kill: WAL record torn at every byte in ({handshake}, {total}], 0 divergent"
    );
}

#[test]
fn handshake_torn_at_sampled_bytes_fails_attach_and_snapshot_resyncs() {
    let db = tiny_db();
    let delta = Delta::new().insert("friend", tuple_of(&[1, 3])).clone();
    let mut after = db.clone();
    delta.apply_in_place(&mut after).unwrap();
    let expected = vec![sets(&db), sets(&after)];
    let (handshake, _) = measure_stream(&db, &delta);

    // Tear inside the hello/snapshot region: the attach must fail with a
    // typed error (never hang), the replica holds at most a clean epoch-0
    // bootstrap, and a fresh attach snapshots it straight to the tip.
    for cut in (1..handshake).step_by(7) {
        run_cut(cut, &db, &delta, &expected);
    }
}
