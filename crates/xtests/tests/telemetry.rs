//! Observability suites: histogram properties and trace completeness.
//!
//! Two property families over the `si-telemetry` plane:
//!
//! 1. **Histogram laws** — across 100 seeded distributions (uniform,
//!    octave-walk, near-constant, heavy-tail mixtures) every quantile the
//!    log-linear histogram reports stays within its bucket's relative-error
//!    bound (≤ 1/64) of the **true** order statistic of the recorded values;
//!    merging snapshots is bucket-for-bucket indistinguishable from having
//!    recorded the union; and 8 threads hammering one histogram lose no
//!    counts (wait-free relaxed recording still sums exactly).
//!
//! 2. **Trace completeness** — every serving mode of the engine (cold plan,
//!    warm plan-cache hit, materialized hit, shared-fetch batch member,
//!    sharded scatter-gather, durable, pool-queued) yields a request trace
//!    whose phase durations partition the measured service interval, whose
//!    tuple counts equal the response's access meter **exactly**, and whose
//!    provenance matches the response flags; an injected slow query lands in
//!    the bounded slow log even with sampling off.
//!
//! CI runs this suite in `--release` as well: the histogram and trace hot
//! paths are all relaxed atomics, and release mode is where lost-update bugs
//! would surface.

use si_data::{Database, Delta, Value};
use si_durability::SimDisk;
use si_engine::{Engine, EngineConfig, Provenance, Request, RequestTrace};
use si_telemetry::{HistogramSnapshot, LatencyHistogram};
use si_workload::rng::SplitMix64;
use si_workload::{serving_access_schema, social_partition_map, SocialConfig, SocialGenerator};
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Histogram property suite
// ---------------------------------------------------------------------------

/// One seeded value stream; the mode cycles through qualitatively different
/// shapes so bucket boundaries, octave jumps and extreme tails all get hit.
fn distribution(seed: u64) -> Vec<u64> {
    let mut rng = SplitMix64::seed_from_u64(0x41C0_FFEE ^ seed);
    let n = 400 + (seed as usize % 7) * 100;
    (0..n)
        .map(|_| match seed % 5 {
            // Sub-microsecond uniform (exercises the exact unit buckets).
            0 => rng.next_u64() % 10_000,
            // Uniform up to ~2 s.
            1 => rng.next_u64() % 2_000_000_000,
            // Octave walk: powers of two land exactly on bucket bounds.
            2 => 1u64 << rng.gen_range(0usize..40),
            // Near-constant cluster inside one bucket.
            3 => 1_000_000 + rng.next_u64() % 64,
            // Heavy tail: mostly cheap, occasionally ~a minute.
            _ => {
                if rng.gen_range(0..10u8) < 9 {
                    rng.next_u64() % 100_000
                } else {
                    rng.next_u64() % 60_000_000_000
                }
            }
        })
        .collect()
}

#[test]
fn quantiles_stay_within_bucket_error_across_seeded_distributions() {
    for seed in 0..100u64 {
        let values = distribution(seed);
        let hist = LatencyHistogram::new();
        for &v in &values {
            hist.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let snap = hist.snapshot();
        assert_eq!(snap.count() as usize, sorted.len(), "seed {seed}");
        assert_eq!(snap.min(), sorted[0], "seed {seed}");
        assert_eq!(snap.max(), *sorted.last().unwrap(), "seed {seed}");
        assert_eq!(snap.sum(), values.iter().sum::<u64>(), "seed {seed}");
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0] {
            // The true order statistic at the same rank the histogram
            // targets: the rank-ceil(q·n) smallest value.
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let truth = sorted[rank - 1];
            let estimate = snap.quantile(q);
            // The reported value is the midpoint of the bucket holding the
            // true order statistic (clamped to the exact extrema), so it can
            // be off by at most the bucket's relative-error bound of 1/64.
            let bound = truth as f64 / 64.0 + 1e-9;
            assert!(
                (estimate as f64 - truth as f64).abs() <= bound,
                "seed {seed} q {q}: estimate {estimate} vs true {truth}"
            );
        }
    }
}

#[test]
fn merging_snapshots_is_indistinguishable_from_recording_the_union() {
    for seed in 0..100u64 {
        let xs = distribution(seed);
        let ys = distribution(seed + 1_000);
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        let union = LatencyHistogram::new();
        for &v in &xs {
            a.record(v);
            union.record(v);
        }
        for &v in &ys {
            b.record(v);
            union.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, union.snapshot(), "merge != union at seed {seed}");
        // Commutative, with the empty snapshot as identity.
        let mut flipped = b.snapshot();
        flipped.merge(&a.snapshot());
        assert_eq!(flipped, merged, "merge not commutative at seed {seed}");
        let mut padded = merged.clone();
        padded.merge(&HistogramSnapshot::empty());
        assert_eq!(padded, merged, "empty not identity at seed {seed}");
    }
}

#[test]
fn concurrent_recording_from_eight_threads_loses_no_counts() {
    let shared = Arc::new(LatencyHistogram::new());
    let streams: Vec<Vec<u64>> = (0..8).map(|t| distribution(0xC0DE + t)).collect();
    // A sequential twin records the concatenation of every stream.
    let twin = LatencyHistogram::new();
    for stream in &streams {
        for &v in stream {
            twin.record(v);
        }
    }
    let handles: Vec<_> = streams
        .into_iter()
        .map(|stream| {
            let hist = Arc::clone(&shared);
            std::thread::spawn(move || {
                for v in stream {
                    hist.record(v);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    // Bucket-for-bucket identical: count, sum, extrema and every bucket.
    assert_eq!(shared.snapshot(), twin.snapshot());
}

// ---------------------------------------------------------------------------
// Trace completeness suite
// ---------------------------------------------------------------------------

fn social_db() -> Database {
    SocialGenerator::new(SocialConfig::with_persons(60)).generate()
}

fn request(p: i64) -> Request {
    Request::new(si_workload::q1(), vec!["p".into()], vec![Value::int(p)]).with_trace()
}

/// The partition-by-construction contract: phase durations are charged by a
/// single stopwatch, so they can never exceed the measured total, and the
/// unattributed tail (the gap between the final mark and the total read) is
/// a couple of instructions.
fn assert_phases_reconcile(trace: &RequestTrace) {
    assert!(trace.phases_recorded, "inline trace must record phases");
    let sum = trace.phases.total();
    assert!(
        sum <= trace.total_nanos,
        "phase sum {sum} exceeds total {}",
        trace.total_nanos
    );
    let gap = trace.total_nanos - sum;
    assert!(
        gap <= 5_000_000,
        "unattributed tail of {gap} ns between phase sum {sum} and total {}",
        trace.total_nanos
    );
}

#[test]
fn every_serving_mode_yields_a_complete_trace() {
    let db = social_db();
    let access = serving_access_schema(5_000);
    let engine = Engine::new(
        db.clone(),
        access.clone(),
        EngineConfig {
            trace_sample_every: 1,
            materialize_capacity: 8,
            materialize_after: 1,
            ..EngineConfig::default()
        },
    )
    .unwrap();

    // Cold: a fresh planning pass.
    let cold = engine.execute(&request(1)).unwrap();
    let t = cold
        .trace
        .as_ref()
        .expect("opted-in request carries a trace");
    assert_eq!(t.provenance, Provenance::Planned { cache_hit: false });
    assert_eq!(t.fetched_tuples, cold.accesses.tuples_fetched);
    assert_eq!(t.answers, cold.answers.len() as u64);
    assert_eq!(t.epoch, cold.epoch);
    assert!(t.batch.is_none());
    assert_phases_reconcile(t);

    // Warm: same shape, different parameter — plan-cache hit, but the
    // materialized layer cannot shortcut it.
    let warm = engine.execute(&request(2)).unwrap();
    let t = warm.trace.as_ref().unwrap();
    assert_eq!(t.provenance, Provenance::Planned { cache_hit: true });
    assert_eq!(t.fetched_tuples, warm.accesses.tuples_fetched);
    assert_phases_reconcile(t);

    // Materialized: p=1 crossed the hotness threshold on its first run, so
    // this serve touches zero base data — and the trace says so.
    let hit = engine.execute(&request(1)).unwrap();
    assert!(hit.materialized, "second serve of a hot key must hit");
    let t = hit.trace.as_ref().unwrap();
    assert_eq!(t.provenance, Provenance::Materialized);
    assert_eq!(t.fetched_tuples, 0);
    assert_eq!(hit.accesses.tuples_fetched, 0);
    assert_eq!(t.answers, hit.answers.len() as u64);
    assert_phases_reconcile(t);

    // Batched: three identical requests group onto one shared fetch; each
    // member's trace reports the group and its *attributed* tuple share,
    // which must equal the response meter exactly.
    let batch: Vec<Request> = (0..3).map(|_| request(3)).collect();
    for result in engine.execute_batch(&batch) {
        let response = result.unwrap();
        let t = response.trace.as_ref().unwrap();
        let membership = t.batch.expect("group member records its batch");
        assert_eq!(membership.group_size, 3);
        assert!(membership.shared_fetch);
        assert_eq!(t.fetched_tuples, response.accesses.tuples_fetched);
        assert_eq!(t.answers, response.answers.len() as u64);
        assert_phases_reconcile(t);
    }

    // Every request served so far was sampled (rate 1): the emitted-trace
    // counter accounts for 100% of them.
    let m = engine.metrics();
    assert_eq!(m.traces_emitted, m.requests);
    assert_eq!(engine.telemetry().slow_log().offered(), m.requests);

    // Sharded: the trace carries the routed-vs-fanned shard probe split.
    let sharded = Engine::new_sharded(
        db.clone(),
        access.clone(),
        social_partition_map(),
        3,
        EngineConfig {
            trace_sample_every: 1,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let response = sharded.execute(&request(1)).unwrap();
    let t = response.trace.as_ref().unwrap();
    assert!(
        t.routed_fetches + t.fanned_fetches > 0,
        "sharded serve must report its probe split"
    );
    assert_eq!(t.fetched_tuples, response.accesses.tuples_fetched);
    assert_phases_reconcile(t);

    // Durable: commits write ahead, and the commit log exposes the span
    // breakdown (gather, merge, WAL, apply, maintenance) for the pass.
    let durable = Engine::new_durable(
        db.clone(),
        access.clone(),
        Box::new(SimDisk::new()),
        EngineConfig {
            trace_sample_every: 1,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let mut delta = Delta::new();
    delta.insert("friend", vec![Value::int(900), Value::int(901)].into());
    durable.commit(&delta).unwrap();
    let response = durable.execute(&request(1)).unwrap();
    let t = response.trace.as_ref().unwrap();
    assert_eq!(t.epoch, 1);
    assert_phases_reconcile(t);
    let spans = durable.telemetry().commit_log().recent();
    assert_eq!(spans.len(), 1);
    assert_eq!(spans[0].epoch, 1);
    assert_eq!(spans[0].gather_size, 1);
    assert_eq!(spans[0].ops, 1);
    assert!(durable.metrics().wal_records >= 1);
    let page = durable.telemetry().render();
    assert!(page.contains("si_wal_segment_bytes"));
    assert!(page.contains("si_fsync_latency_ns"));

    // Pool-queued: workers measure queue wait into the histogram and thread
    // it through to each trace.
    let pooled = Engine::new(
        db,
        access,
        EngineConfig {
            workers: 2,
            trace_sample_every: 1,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let pending: Vec<_> = (0..4)
        .map(|i| pooled.submit(request(1 + i)).unwrap())
        .collect();
    for p in pending {
        let response = p.wait().unwrap();
        let t = response.trace.as_ref().unwrap();
        assert_eq!(t.fetched_tuples, response.accesses.tuples_fetched);
        assert_phases_reconcile(t);
    }
    let queue_wait = pooled.telemetry().histogram("si_queue_wait_ns").snapshot();
    assert_eq!(queue_wait.count(), 4);
}

#[test]
fn injected_slow_queries_land_in_the_slow_log() {
    // Sampling off, slow threshold zero: every request is an unsampled slow
    // outlier and must still get a post-hoc trace into the bounded log.
    let engine = Engine::new(
        social_db(),
        serving_access_schema(5_000),
        EngineConfig {
            slow_threshold: Duration::ZERO,
            slow_log_capacity: 4,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    for p in 0..6 {
        engine
            .execute(&Request::new(
                si_workload::q1(),
                vec!["p".into()],
                vec![Value::int(p)],
            ))
            .unwrap();
    }
    let log = engine.telemetry().slow_log();
    assert_eq!(log.offered(), 6, "every slow request reaches the log");
    assert_eq!(log.len(), 4, "the log is bounded at its capacity");
    let worst = log.worst_by_latency();
    assert_eq!(worst.len(), 4);
    // Retained slowest-first, every entry marked slow, none with inline
    // phases (they were outside the sample).
    assert!(worst
        .windows(2)
        .all(|w| w[0].total_nanos >= w[1].total_nanos));
    for trace in worst.iter().chain(log.worst_by_tuples().iter()) {
        assert!(trace.slow);
        assert!(!trace.phases_recorded);
        assert_eq!(trace.phases.total(), 0);
    }
    assert_eq!(engine.metrics().traces_emitted, 6);
    assert!(log.render().contains("SLOW"));
}

// ---------------------------------------------------------------------------
// Recovery gauge coherence
// ---------------------------------------------------------------------------

/// Regression: a recovered engine's very first scrape — before any request
/// or commit — must already report the recovered epoch and the recovered
/// per-shard row counts.  The gauges are computed from live pinned
/// snapshots, so a freshly recovered serving stack never renders a page
/// that contradicts the store it is serving from.
#[test]
fn recovered_engines_render_coherent_gauges_before_any_request() {
    let db = social_db();
    let access = serving_access_schema(5_000);
    let config = EngineConfig::default();
    let disk = SimDisk::new();
    let engine = Engine::new_sharded_durable(
        db.clone(),
        access.clone(),
        social_partition_map(),
        3,
        Box::new(disk.clone()),
        config.clone(),
    )
    .unwrap();
    // A few commits so the recovered state differs from the base checkpoint.
    let mut evolving = db;
    for seed in 0..3u64 {
        let delta = si_workload::visit_insertions(&evolving, 5, 0xC0FE ^ seed);
        if delta.is_empty() {
            continue;
        }
        engine.commit(&delta).unwrap();
        delta.apply_in_place(&mut evolving).unwrap();
    }
    let epoch = engine.epoch();
    assert!(epoch > 0, "the scenario must commit at least once");
    let pre_crash = engine.shard_stats();
    drop(engine);

    let recovered = Engine::recover(Box::new(disk), access, config).unwrap();
    // First scrape, zero requests served, zero commits applied since boot.
    let page = recovered.telemetry().render();
    assert!(
        page.contains(&format!("si_snapshot_epoch {epoch}\n")),
        "recovered page must report the recovered epoch {epoch}:\n{page}"
    );
    assert!(page.contains("si_requests_total 0\n"));
    for stats in &pre_crash {
        let line = format!(
            "si_shard_rows{{shard=\"{}\"}} {}\n",
            stats.shard, stats.rows
        );
        assert!(
            page.contains(&line),
            "recovered page must report the pre-crash shard rows `{line}`:\n{page}"
        );
    }
    // The gauges agree with the recovered store itself.
    assert_eq!(recovered.epoch(), epoch);
    let post: Vec<(usize, usize)> = recovered
        .shard_stats()
        .iter()
        .map(|s| (s.shard, s.rows))
        .collect();
    let pre: Vec<(usize, usize)> = pre_crash.iter().map(|s| (s.shard, s.rows)).collect();
    assert_eq!(post, pre, "recovered shard layout diverged");
}
