//! Cross-crate integration tests: the paper's running examples exercised end
//! to end through the public APIs of every crate.

use si_access::{facebook_access_schema, AccessConstraint, AccessIndexedDatabase};
use si_core::prelude::*;
use si_core::{check_witness, decide_qdsi, decide_qsi, QsiAnswer, SearchLimits};
use si_data::schema::social_schema;
use si_data::Value;
use si_workload::{
    example_46_access_schema, paper_views, q1, q2, q2_rewriting, q3, visit_insertions,
    SocialConfig, SocialGenerator,
};

fn workload_db(persons: usize) -> si_data::Database {
    SocialGenerator::new(SocialConfig {
        persons,
        restaurants: 50,
        ..SocialConfig::default()
    })
    .generate()
}

#[test]
fn example_11a_q1_end_to_end() {
    let access = facebook_access_schema(5000);
    let schema = social_schema();
    let db = workload_db(500);

    // Controllability (Example 4.1) and planning (Theorem 4.2).
    let analyzer = ControllabilityAnalyzer::new(&schema, &access);
    assert!(analyzer
        .is_controlled_by(&q1().to_fo(), &["p".into()])
        .unwrap());
    let plan = BoundedPlanner::new(&schema, &access)
        .plan(&q1(), &["p".into()])
        .unwrap();
    assert_eq!(plan.static_cost().max_tuples, 10_000);

    // Bounded execution agrees with naive evaluation and yields a witness.
    let adb = AccessIndexedDatabase::checked(db, access).unwrap();
    for p in [0i64, 3, 7, 11] {
        let bounded = execute_bounded(&plan, &[Value::int(p)], &adb).unwrap();
        let naive = execute_naive(&q1(), &["p".into()], &[Value::int(p)], adb.database()).unwrap();
        let mut a = bounded.answers.clone();
        let mut b = naive.answers.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert!(bounded.accesses.tuples_fetched <= plan.static_cost().max_tuples);
        assert!(bounded.accesses.tuples_fetched <= naive.accesses.tuples_fetched);
        let bound_q: AnyQuery = q1().bind(&[("p".into(), Value::int(p))]).into();
        assert!(check_witness(
            &bound_q,
            adb.database(),
            &bounded.witness,
            bounded.witness.size()
        )
        .unwrap());
    }
}

#[test]
fn qdsi_and_qsi_agree_with_the_paper_s_classification() {
    let schema = social_schema();
    let limits = SearchLimits::default();
    // Q1 with p free is not scale-independent over all instances (monotone,
    // non-trivial).
    let answer = decide_qsi(&q1().into(), &schema, 50, 0, &limits).unwrap();
    assert!(matches!(answer, QsiAnswer::NotScaleIndependent(_)));
    // On a concrete small instance QDSI finds minimal witnesses.
    let db = workload_db(30);
    let bound: AnyQuery = q1().bind(&[("p".into(), Value::int(1))]).into();
    let all = decide_qdsi(&bound, &db, db.size(), &limits).unwrap();
    assert!(all.scale_independent);
    let tight = decide_qdsi(&bound, &db, 0, &limits).unwrap();
    // With zero budget the query is scale-independent iff it has no answers.
    assert_eq!(
        tight.scale_independent,
        bound.answers(&db).unwrap().is_empty()
    );
}

#[test]
fn example_46_q3_embedded_pipeline() {
    let access = example_46_access_schema(5000);
    let db = SocialGenerator::new(SocialConfig {
        persons: 400,
        restaurants: 40,
        dated_visits: true,
        ..SocialConfig::default()
    })
    .generate();
    let schema = db.schema().clone();
    assert!(si_access::conforms(&db, &access));

    let analyzer = EmbeddedControllability::new(&schema, &access);
    assert!(analyzer
        .is_embedded_controlled(&q3(), &["p".into(), "yy".into()])
        .unwrap());

    let plan = BoundedPlanner::new(&schema, &access)
        .plan(&q3(), &["p".into(), "yy".into()])
        .unwrap();
    let adb = AccessIndexedDatabase::new(db, access).unwrap();
    let bounded = execute_bounded(&plan, &[Value::int(3), Value::int(2013)], &adb).unwrap();
    let naive = execute_naive(
        &q3(),
        &["p".into(), "yy".into()],
        &[Value::int(3), Value::int(2013)],
        adb.database(),
    )
    .unwrap();
    let mut a = bounded.answers.clone();
    let mut b = naive.answers.clone();
    a.sort();
    b.sort();
    assert_eq!(a, b);
    assert_eq!(bounded.accesses.full_scans, 0);
}

#[test]
fn example_11b_incremental_maintenance() {
    let access =
        facebook_access_schema(5000).with(AccessConstraint::new("visit", &["id"], 1_000, 1));
    let db = workload_db(800);
    let mut adb = AccessIndexedDatabase::new(db, access).unwrap();
    let mut evaluator =
        IncrementalBoundedEvaluator::new(q2(), vec!["p".into()], vec![Value::int(5)], &adb)
            .unwrap();

    for seed in 0..3u64 {
        let delta = visit_insertions(adb.database(), 40, seed);
        let cost = evaluator.apply_update(&mut adb, &delta).unwrap();
        assert_eq!(cost.full_scans, 0);
        // Bounded maintenance: a small constant number of probes per ∆-tuple.
        assert!(cost.index_probes <= 6 * delta.size() as u64);
        let mut maintained = evaluator.answers();
        let mut recomputed = execute_naive(&q2(), &["p".into()], &[Value::int(5)], adb.database())
            .unwrap()
            .answers;
        maintained.sort();
        recomputed.sort();
        assert_eq!(maintained, recomputed);
    }
}

#[test]
fn example_11c_views_pipeline() {
    let views = paper_views();
    let access = facebook_access_schema(5000);
    let schema = social_schema();
    let db = workload_db(1_000);

    // The paper's Q'2 verifies as a rewriting and is found by the search.
    assert!(si_core::is_rewriting(&q2(), &views, &q2_rewriting()).unwrap());
    let found = si_core::find_rewriting(&q2(), &views).unwrap().unwrap();
    assert_eq!(si_core::views::base_part_size(&found, &views), 1);
    assert!(si_core::is_scale_independent_using_views(
        &q2(),
        &views,
        &schema,
        &access,
        &["p".into(), "rn".into()],
        64
    )
    .unwrap()
    .is_some());

    let materialized = views.materialize_views_only(&db).unwrap();
    let adb = AccessIndexedDatabase::new(db, access).unwrap();
    let with_views = execute_with_views(
        &q2_rewriting(),
        &views,
        &["p".into()],
        &[Value::int(9)],
        &adb,
        &materialized,
    )
    .unwrap();
    let naive = execute_naive(&q2(), &["p".into()], &[Value::int(9)], adb.database()).unwrap();
    let mut a = with_views.answers.clone();
    let mut b = naive.answers.clone();
    a.sort();
    b.sort();
    assert_eq!(a, b);
    assert!(with_views.accesses.tuples_fetched <= 5_000);
    assert!(with_views.accesses.tuples_fetched < naive.accesses.tuples_fetched);
}
