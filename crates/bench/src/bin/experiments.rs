//! Regenerates every experiment table of `EXPERIMENTS.md`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p si-bench --bin experiments            # all experiments
//! cargo run --release -p si-bench --bin experiments -- table1  # one experiment
//! ```
//!
//! Experiment ids follow DESIGN.md: `table1`, `q1`, `q3`, `q2inc`, `q2views`,
//! `qcntl`, `ra`, `vqsi`, `ablation`.

use si_access::{facebook_access_schema, AccessIndexedDatabase};
use si_bench::{
    dated_social_database, q1_scaling_rows, q2_access_schema, q2_views_rows, social_database,
};
use si_core::controllability::{AlgebraControllability, ExprForm};
use si_core::prelude::*;
use si_core::{decide_qcntl, decide_qdsi, DecisionMethod, SearchLimits};
use si_data::schema::{social_schema, social_schema_dated};
use si_data::{Database, Value};
use si_query::{cq_to_ra, parse_fo_query};
use si_workload::{
    example_46_access_schema, paper_views, q1, q2, q2_rewriting, q3, visit_insertions,
    SocialConfig, SocialGenerator,
};
use std::time::Instant;

fn main() {
    let which: Vec<String> = std::env::args().skip(1).collect();
    let run = |name: &str| which.is_empty() || which.iter().any(|w| w == name || w == "--exp");
    let started = Instant::now();

    if run("table1") {
        exp_table1();
    }
    if run("q1") {
        exp_q1();
    }
    if run("q3") {
        exp_q3();
    }
    if run("q2inc") {
        exp_q2_incremental();
    }
    if run("q2views") {
        exp_q2_views();
    }
    if run("qcntl") {
        exp_qcntl();
    }
    if run("ra") {
        exp_ra_rules();
    }
    if run("vqsi") {
        exp_vqsi();
    }
    if run("ablation") {
        exp_ablation();
    }
    eprintln!("\n(total wall time {:.1?})", started.elapsed());
}

fn banner(title: &str) {
    println!("\n==================================================================");
    println!("{title}");
    println!("==================================================================");
}

/// E1 — Table 1: empirical growth of the exact QDSI decision procedures.
fn exp_table1() {
    banner("E1 (Table 1): QDSI decision-procedure work vs instance size");
    let limits = SearchLimits {
        max_subsets: 50_000_000,
        max_branches: 50_000_000,
    };
    println!(
        "{:<26} {:>6} {:>4} {:>12} {:>10} {:>12}",
        "query / language", "|D|", "M", "explored", "SI?", "time"
    );
    for persons in [6usize, 8, 10, 12, 14] {
        let db = tiny_database(persons);
        // CQ data-selecting (provenance cover) — per Theorem 3.3 NP-hard.
        let cq: AnyQuery = q1().bind(&[("p".into(), Value::int(0))]).into();
        let t = Instant::now();
        let out = decide_qdsi(&cq, &db, 4, &limits).expect("cq qdsi");
        println!(
            "{:<26} {:>6} {:>4} {:>12} {:>10} {:>12?}",
            "CQ data-selecting",
            db.size(),
            4,
            out.explored,
            out.scale_independent,
            t.elapsed()
        );
        // Boolean CQ fast path — O(1) per Corollary 3.2.
        let boolean: AnyQuery = si_query::ConjunctiveQuery {
            name: "B".into(),
            head: vec![],
            atoms: q1().atoms.clone(),
            equalities: vec![],
        }
        .into();
        let t = Instant::now();
        let out = decide_qdsi(&boolean, &db, 2, &limits).expect("bool qdsi");
        println!(
            "{:<26} {:>6} {:>4} {:>12} {:>10} {:>12?}",
            "CQ Boolean (‖Q‖ ≤ M)",
            db.size(),
            2,
            out.explored,
            format!(
                "{}/{:?}",
                out.scale_independent,
                DecisionMethod::BooleanCqFastPath == out.method
            ),
            t.elapsed()
        );
        // FO subset enumeration — PSPACE/Σ-hard flavour: exponential blow-up.
        if persons <= 10 {
            let fo: AnyQuery = parse_fo_query(
                r#"NoFriends() := exists x, n, c. person(x, n, c) & ! (exists y. friend(x, y))"#,
            )
            .expect("fo query")
            .into();
            let t = Instant::now();
            let out = decide_qdsi(&fo, &db, 2, &limits).expect("fo qdsi");
            println!(
                "{:<26} {:>6} {:>4} {:>12} {:>10} {:>12?}",
                "FO Boolean (subsets)",
                db.size(),
                2,
                out.explored,
                out.scale_independent,
                t.elapsed()
            );
        }
    }
}

fn tiny_database(persons: usize) -> Database {
    SocialGenerator::new(SocialConfig {
        persons,
        restaurants: 3,
        avg_friends: 3,
        avg_visits: 1,
        nyc_percent: 100,
        ..SocialConfig::default()
    })
    .generate()
}

/// E2 — Q1 scaling: bounded vs naive access cost as |D| grows.
fn exp_q1() {
    banner("E2 (Ex. 1.1(a)/4.1): Q1 bounded vs naive access cost");
    println!(
        "{:<10} {:>10} {:>16} {:>16} {:>10}",
        "persons", "|D|", "bounded tuples", "naive tuples", "ratio"
    );
    for row in q1_scaling_rows(&[1_000, 4_000, 16_000, 64_000]) {
        println!(
            "{:<10} {:>10} {:>16} {:>16} {:>10.1}",
            row.label,
            row.database_size,
            row.bounded_tuples,
            row.naive_tuples,
            row.ratio()
        );
    }
}

/// E3 — Q3 with embedded constraints (Example 4.6).
fn exp_q3() {
    banner("E3 (Ex. 4.6): Q3 under plain vs embedded access schemas");
    let schema = social_schema_dated();
    let plain = facebook_access_schema(5000);
    let enriched = example_46_access_schema(5000);
    let planner_plain = BoundedPlanner::new(&schema, &plain);
    let planner_rich = BoundedPlanner::new(&schema, &enriched);
    println!(
        "plannable(p,yy) under plain schema:    {}",
        planner_plain
            .plan(&q3(), &["p".into(), "yy".into()])
            .is_ok()
    );
    println!(
        "plannable(p,yy) under embedded schema: {}",
        planner_rich.plan(&q3(), &["p".into(), "yy".into()]).is_ok()
    );
    println!(
        "{:<10} {:>10} {:>16} {:>16}",
        "persons", "|D|", "bounded tuples", "naive tuples"
    );
    for persons in [1_000usize, 4_000, 16_000] {
        let db = dated_social_database(persons);
        let size = db.size();
        let plan = planner_rich
            .plan(&q3(), &["p".into(), "yy".into()])
            .expect("plannable");
        let adb = AccessIndexedDatabase::new(db, enriched.clone()).expect("adb");
        let bounded =
            execute_bounded(&plan, &[Value::int(7), Value::int(2013)], &adb).expect("exec");
        let naive = execute_naive(
            &q3(),
            &["p".into(), "yy".into()],
            &[Value::int(7), Value::int(2013)],
            adb.database(),
        )
        .expect("naive");
        println!(
            "{:<10} {:>10} {:>16} {:>16}",
            persons, size, bounded.accesses.tuples_fetched, naive.accesses.tuples_fetched
        );
    }
}

/// E4 — incremental maintenance of Q2 under visit insertions.
fn exp_q2_incremental() {
    banner("E4 (Ex. 1.1(b)/5.6): incremental Q2 under visit insertions");
    let access = q2_access_schema();
    println!(
        "{:<10} {:>10} {:>8} {:>14} {:>14} {:>18}",
        "persons", "|D|", "|∆D|", "maint. probes", "maint. tuples", "recompute tuples"
    );
    for persons in [2_000usize, 8_000, 32_000] {
        let db = social_database(persons);
        let size = db.size();
        let mut adb = AccessIndexedDatabase::new(db, access.clone()).expect("adb");
        let mut evaluator =
            IncrementalBoundedEvaluator::new(q2(), vec!["p".into()], vec![Value::int(7)], &adb)
                .expect("evaluator");
        let delta = visit_insertions(adb.database(), 100, 99);
        let cost = evaluator.apply_update(&mut adb, &delta).expect("update");
        let recompute =
            execute_naive(&q2(), &["p".into()], &[Value::int(7)], adb.database()).expect("naive");
        println!(
            "{:<10} {:>10} {:>8} {:>14} {:>14} {:>18}",
            persons,
            size,
            delta.size(),
            cost.index_probes,
            cost.tuples_fetched,
            recompute.accesses.tuples_fetched
        );
    }
}

/// E5 — Q2 answered through the views V1, V2.
fn exp_q2_views() {
    banner("E5 (Ex. 1.1(c)/6.3): Q2 using views V1, V2");
    println!(
        "{:<10} {:>10} {:>20} {:>16} {:>10}",
        "persons", "|D|", "base tuples (views)", "naive tuples", "ratio"
    );
    for row in q2_views_rows(&[1_000, 4_000, 16_000]) {
        println!(
            "{:<10} {:>10} {:>20} {:>16} {:>10.1}",
            row.label,
            row.database_size,
            row.bounded_tuples,
            row.naive_tuples,
            row.ratio()
        );
    }
}

/// E6 — QCntl search-space growth (Theorem 4.4).
fn exp_qcntl() {
    banner("E6 (Thm 4.4): QCntl minimal-controlling-set search");
    use si_access::AccessConstraint;
    use si_data::{DatabaseSchema, RelationSchema};
    println!(
        "{:<14} {:>14} {:>14} {:>12}",
        "#attributes", "#constraints", "#minimal sets", "time"
    );
    for k in [4usize, 6, 8, 10, 12] {
        let attrs: Vec<String> = (0..k).map(|i| format!("a{i}")).collect();
        let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
        let schema = DatabaseSchema::from_relations(vec![RelationSchema::new("r", &attr_refs)])
            .expect("schema");
        // One constraint per pair of adjacent attributes: many incomparable
        // candidate keys, mirroring the prime-attribute reduction.
        let mut access = si_access::AccessSchema::new();
        for i in 0..k - 1 {
            access.add(AccessConstraint::new(
                "r",
                &[&attrs[i], &attrs[i + 1]],
                10,
                1,
            ));
        }
        let head = attrs.join(", ");
        let q = parse_fo_query(&format!("Q({head}) := r({head})")).expect("query");
        let t = Instant::now();
        let sets = si_core::minimal_controlling_sets(&q, &schema, &access).expect("sets");
        let out = decide_qcntl(&q, &schema, &access, 2).expect("qcntl");
        println!(
            "{:<14} {:>14} {:>14} {:>12?}",
            k,
            k - 1,
            sets.len(),
            t.elapsed()
        );
        assert!(out.controllable_within);
    }
}

/// E7 — RA_A rules: scale-independent σ_X=a(E) and incremental forms.
fn exp_ra_rules() {
    banner("E7 (Thm 5.4): RA_A controllability of the Q1/Q2 algebra plans");
    let schema = social_schema();
    let access = q2_access_schema();
    // Proposition 5.5 augmentation A(R): the updated relations are declared
    // fully accessible, which is what makes the change forms derivable.
    let augmented = q2_access_schema()
        .with_full_access("friend")
        .with_full_access("visit")
        .with_full_access("person")
        .with_full_access("restr");
    let analyzer_augmented = AlgebraControllability::new(&schema, &augmented);
    let analyzer = AlgebraControllability::new(&schema, &access);
    for (name, query) in [("Q1", q1()), ("Q2", q2())] {
        let expr = cq_to_ra(&query, &schema).expect("translate");
        let plain = analyzer
            .controlling_sets(&expr, ExprForm::Plain)
            .expect("plain");
        let delta = analyzer
            .controlling_sets(&expr, ExprForm::Delta)
            .expect("delta");
        let nabla = analyzer
            .controlling_sets(&expr, ExprForm::Nabla)
            .expect("nabla");
        println!(
            "{name}: (E,X) minimal sets = {:?}; (E∆) = {:?}; (E∇) = {:?}; σ_p SI = {}; incrementally SI = {}",
            plain.sets(),
            delta.sets(),
            nabla.sets(),
            analyzer.is_scale_independent(&expr, &["p".into()]).expect("si"),
            analyzer
                .is_incrementally_scale_independent(&expr, &["p".into()])
                .expect("inc si"),
        );
        println!(
            "{name} under A(R) augmentation (Prop 5.5): incrementally SI = {}",
            analyzer_augmented
                .is_incrementally_scale_independent(&expr, &["p".into()])
                .expect("inc si augmented"),
        );
    }
}

/// E8 — VQSI decision cost vs number of views.
fn exp_vqsi() {
    banner("E8 (Thm 6.1): VQSI rewriting search");
    let views = paper_views();
    for m in [0usize, 1, 4] {
        let t = Instant::now();
        let out = si_core::decide_vqsi_cq(&q2(), &views, m, 64).expect("vqsi");
        println!(
            "VQSI(Q2 data-selecting, M={m}): {} ({} candidates, {:?})",
            out.scale_independent,
            out.candidates_examined,
            t.elapsed()
        );
        let boolean = si_query::ConjunctiveQuery {
            name: "Q2bool".into(),
            head: vec![],
            atoms: q2().atoms.clone(),
            equalities: vec![],
        };
        let out = si_core::decide_vqsi_cq(&boolean, &views, m, 64).expect("vqsi");
        println!(
            "VQSI(Q2 Boolean,        M={m}): {} ({} candidates)",
            out.scale_independent, out.candidates_examined
        );
    }
    // Corollary 6.2 under the access schema.
    let ok = si_core::is_scale_independent_using_views(
        &q2(),
        &views,
        &social_schema(),
        &facebook_access_schema(5000),
        &["p".into(), "rn".into()],
        64,
    )
    .expect("cor 6.2");
    println!(
        "Corollary 6.2 (p, rn fixed): rewriting found = {} (base part = {:?})",
        ok.is_some(),
        ok.map(|r| si_core::views::base_part_size(&r, &views))
    );
    let _ = q2_rewriting();
}

/// Ablations: index reuse, ‖Q‖ pruning, A(R) full-scan augmentation.
fn exp_ablation() {
    banner("Ablations");
    // (a) Boolean-CQ ‖Q‖ ≤ M fast path vs full provenance cover.
    let db = tiny_database(12);
    let boolean: AnyQuery = si_query::ConjunctiveQuery {
        name: "B".into(),
        head: vec![],
        atoms: q1().atoms.clone(),
        equalities: vec![],
    }
    .into();
    let limits = SearchLimits::default();
    let fast = decide_qdsi(&boolean, &db, 2, &limits).expect("fast");
    let slow = decide_qdsi(&boolean, &db, 1, &limits).expect("slow");
    println!(
        "‖Q‖-pruning ablation: fast path explored {} branches, full cover explored {}",
        fast.explored, slow.explored
    );
    // (b) Access schema with vs without the visit index for Q2 planning.
    let schema = social_schema();
    let with_idx = BoundedPlanner::new(&schema, &q2_access_schema())
        .plan(&q2(), &["p".into()])
        .is_ok();
    let without_idx = BoundedPlanner::new(&schema, &facebook_access_schema(5000))
        .plan(&q2(), &["p".into()])
        .is_ok();
    println!("visit-index ablation: plannable with index = {with_idx}, without = {without_idx}");
    // (c) Full-access augmentation A(R) of Proposition 5.5.
    let augmented = facebook_access_schema(5000).with_full_access("visit");
    let analyzer = AlgebraControllability::new(&schema, &augmented);
    let expr = cq_to_ra(&q2(), &schema).expect("translate");
    println!(
        "A(visit) augmentation: σ_p(E_Q2) scale-independent = {}",
        analyzer
            .is_scale_independent(&expr, &["p".into()])
            .expect("si")
    );
}
