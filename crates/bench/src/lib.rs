//! # `si-bench` — benchmark harness
//!
//! Shared setup code for the Criterion benches and the `experiments` binary
//! that regenerates the paper-style tables recorded in `EXPERIMENTS.md`.
//! Every experiment id (E1–E8) of `DESIGN.md` maps to one function here plus
//! one Criterion bench target.

#![forbid(unsafe_code)]

use si_access::{facebook_access_schema, AccessConstraint, AccessIndexedDatabase, AccessSchema};
use si_core::prelude::*;
use si_data::{Database, MeterSnapshot, Value};
use si_query::ConjunctiveQuery;
use si_workload::{q1, q2, SocialConfig, SocialGenerator};

/// A single measured row: a label, the database size, and the bounded vs
/// naive access cost.
#[derive(Debug, Clone)]
pub struct CostRow {
    /// Row label (e.g. the number of persons).
    pub label: String,
    /// Total database size |D|.
    pub database_size: usize,
    /// Tuples fetched by the bounded (scale-independent) evaluation.
    pub bounded_tuples: u64,
    /// Tuples fetched by the naive evaluation.
    pub naive_tuples: u64,
}

impl CostRow {
    /// The naive/bounded access ratio (how much the bounded plan saves).
    pub fn ratio(&self) -> f64 {
        if self.bounded_tuples == 0 {
            f64::INFINITY
        } else {
            self.naive_tuples as f64 / self.bounded_tuples as f64
        }
    }
}

/// The access schema used by the Q2 experiments: the Facebook schema plus an
/// index bound on `visit(id)`.
pub fn q2_access_schema() -> AccessSchema {
    facebook_access_schema(5000).with(AccessConstraint::new("visit", &["id"], 1_000, 1))
}

/// Generates a social database with `persons` people (fixed knobs otherwise).
pub fn social_database(persons: usize) -> Database {
    SocialGenerator::new(SocialConfig {
        persons,
        restaurants: (persons / 20).max(10),
        ..SocialConfig::default()
    })
    .generate()
}

/// Generates the dated variant used by the Q3 experiment.
pub fn dated_social_database(persons: usize) -> Database {
    SocialGenerator::new(SocialConfig {
        persons,
        restaurants: (persons / 20).max(10),
        dated_visits: true,
        ..SocialConfig::default()
    })
    .generate()
}

/// Runs one bounded-vs-naive comparison for a query with a single `p`
/// parameter and returns the two access costs.
pub fn bounded_vs_naive(
    query: &ConjunctiveQuery,
    access: &AccessSchema,
    db: Database,
    p: i64,
) -> (MeterSnapshot, MeterSnapshot, usize) {
    let schema = db.schema().clone();
    let size = db.size();
    let planner = BoundedPlanner::new(&schema, access);
    let plan = planner
        .plan(query, &["p".into()])
        .expect("query must be plannable for the bounded/naive comparison");
    let adb = AccessIndexedDatabase::new(db, access.clone()).expect("access schema valid");
    let bounded = execute_bounded(&plan, &[Value::int(p)], &adb).expect("bounded execution");
    let naive = execute_naive(query, &["p".into()], &[Value::int(p)], adb.database())
        .expect("naive execution");
    assert_eq!(
        sorted(bounded.answers.clone()),
        sorted(naive.answers.clone()),
        "bounded and naive evaluation must agree"
    );
    (bounded.accesses, naive.accesses, size)
}

fn sorted(mut v: Vec<si_data::Tuple>) -> Vec<si_data::Tuple> {
    v.sort();
    v
}

/// E2 helper: the Q1 scaling series.
pub fn q1_scaling_rows(person_counts: &[usize]) -> Vec<CostRow> {
    person_counts
        .iter()
        .map(|&n| {
            let (bounded, naive, size) =
                bounded_vs_naive(&q1(), &facebook_access_schema(5000), social_database(n), 7);
            CostRow {
                label: n.to_string(),
                database_size: size,
                bounded_tuples: bounded.tuples_fetched,
                naive_tuples: naive.tuples_fetched,
            }
        })
        .collect()
}

/// E5 helper: the Q2-with-views series (base accesses with views vs naive).
pub fn q2_views_rows(person_counts: &[usize]) -> Vec<CostRow> {
    use si_workload::{paper_views, q2_rewriting};
    let views = paper_views();
    let rewriting = q2_rewriting();
    person_counts
        .iter()
        .map(|&n| {
            let db = social_database(n);
            let size = db.size();
            let materialized = views.materialize_views_only(&db).expect("materialise");
            let adb = AccessIndexedDatabase::new(db, facebook_access_schema(5000))
                .expect("access schema valid");
            let with_views = execute_with_views(
                &rewriting,
                &views,
                &["p".into()],
                &[Value::int(7)],
                &adb,
                &materialized,
            )
            .expect("view-based execution");
            let naive = execute_naive(&q2(), &["p".into()], &[Value::int(7)], adb.database())
                .expect("naive execution");
            CostRow {
                label: n.to_string(),
                database_size: size,
                bounded_tuples: with_views.accesses.tuples_fetched,
                naive_tuples: naive.accesses.tuples_fetched,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q1_scaling_rows_show_flat_bounded_cost() {
        let rows = q1_scaling_rows(&[200, 800]);
        assert_eq!(rows.len(), 2);
        assert!(rows[1].naive_tuples > rows[0].naive_tuples);
        // Bounded cost is tied to the fanout of person 7, not to |D|.
        assert!(rows[1].bounded_tuples < rows[1].naive_tuples);
        assert!(rows[0].ratio() > 1.0);
    }

    #[test]
    fn q2_views_rows_touch_few_base_tuples() {
        let rows = q2_views_rows(&[200]);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].bounded_tuples <= 5_000);
        assert!(rows[0].bounded_tuples < rows[0].naive_tuples);
    }
}
