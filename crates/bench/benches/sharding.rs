//! Sharded scatter-gather: correctness pre-pass plus the routed-vs-fan-out
//! fetch study on a skewed instance.
//!
//! Custom harness (`harness = false`): like the throughput bench, this
//! measures quantities the criterion shim cannot — a divergence count and
//! tuples-fetched totals from exact meters.
//!
//! **Pre-pass** — N concurrent requests against a 4-shard engine (pool
//! workers + morsel parallelism on top of data sharding) are cross-checked
//! against naive single-threaded evaluation of the merged instance; any
//! divergence fails the bench.
//!
//! **Routed vs fan-out** — the skewed instance gives one hot restaurant
//! most of the `visit` traffic.  The same logical probe
//! `σ_{rid = hot, id = p}(visit)` through the `visit(rid)` constraint is
//! answered two ways over an 8-shard store:
//!
//! * *forced fan-out* (mirror accounting, what unsharded execution and the
//!   equivalence harness measure): every shard is probed by `rid`, the hot
//!   restaurant's visits are fetched wherever they live and `id = p` is a
//!   residual filter — the full hot bucket is paid on every probe;
//! * *routed* (pruned mode): the literal `id = p` — `visit`'s partition
//!   column — pins shard `h(p)`, so only that shard's slice of the hot
//!   bucket is fetched.
//!
//! The acceptance bar is a ≥ 4× reduction in tuples fetched per probe; with
//! 8 shards and an evenly hashed hot bucket the expected ratio is ~8×.

use si_access::{AccessConstraint, AccessSource, ShardedAccess};
use si_data::{tuple, Database, Tuple, Value};
use si_engine::{Engine, EngineConfig, Request};
use si_query::evaluate_cq;
use si_workload::{
    serving_access_schema, social_partition_map, social_requests, SocialConfig, SocialGenerator,
};
use std::sync::Arc;
use std::time::Instant;

const PERSONS: usize = 2_000;
const VERIFY_SAMPLE: usize = 300;
const DATA_SHARDS: usize = 8;
const HOT_RID: i64 = 7_000_000;
const PROBES: usize = 64;

fn naive_answers(request: &Request, db: &Database) -> Vec<Tuple> {
    let bindings: Vec<(String, Value)> = request
        .parameters
        .iter()
        .cloned()
        .zip(request.values.iter().copied())
        .collect();
    let mut answers = evaluate_cq(&request.query.bind(&bindings), db, None).unwrap();
    answers.sort();
    answers
}

/// Concurrent sharded serving vs single-threaded evaluation: 0 divergent.
fn correctness_prepass() {
    let db = SocialGenerator::new(SocialConfig {
        persons: PERSONS,
        restaurants: 200,
        ..SocialConfig::default()
    })
    .generate();
    let engine = Engine::new_sharded(
        db,
        serving_access_schema(5000),
        social_partition_map(),
        4,
        EngineConfig {
            workers: 4,
            shards_per_query: 2,
            max_queue: 0,
            ..EngineConfig::default()
        },
    )
    .expect("sharded engine construction");
    let requests: Vec<Request> = social_requests(PERSONS, VERIFY_SAMPLE, 23)
        .into_iter()
        .map(|g| Request::new(g.query, g.parameters, g.values))
        .collect();
    let ground_truth_db = engine.snapshot().to_database();
    let pending: Vec<_> = requests
        .iter()
        .map(|r| engine.submit(r.clone()).expect("submit"))
        .collect();
    let mut divergent = 0usize;
    for (request, pending) in requests.iter().zip(pending) {
        let response = pending.wait().expect("response");
        let mut served = response.answers;
        served.sort();
        if served != naive_answers(request, &ground_truth_db) {
            divergent += 1;
        }
    }
    println!(
        "correctness: {divergent}/{VERIFY_SAMPLE} divergent answers \
         (4-shard engine, pool + morsel, vs single-threaded)"
    );
    assert_eq!(
        divergent, 0,
        "sharded serving diverged from naive evaluation"
    );
    let stats = engine.shard_stats();
    let rows: Vec<usize> = stats.iter().map(|s| s.rows).collect();
    println!("shard balance (rows): {rows:?}\n");
}

/// A skewed instance: every person has a handful of cold visits plus one
/// visit to the hot restaurant, so `σ_{rid = hot}(visit)` is |persons| wide
/// while `σ_{id = p}(visit)` stays narrow.
fn skewed_db() -> Database {
    let mut db = SocialGenerator::new(SocialConfig {
        persons: PERSONS,
        restaurants: 100,
        avg_visits: 3,
        ..SocialConfig::default()
    })
    .generate();
    db.insert("restr", tuple![HOT_RID, "hot-spot", "NYC", "A"])
        .unwrap();
    for p in 0..PERSONS as i64 {
        db.insert("visit", tuple![p, HOT_RID]).unwrap();
    }
    db
}

fn main() {
    correctness_prepass();

    let access = Arc::new(serving_access_schema(5000).with(AccessConstraint::new(
        "visit",
        &["rid"],
        PERSONS + 10,
        1,
    )));
    let mut db = skewed_db();
    for (relation, attrs) in access.required_indexes() {
        if !attrs.is_empty() {
            db.declare_index(&relation, &attrs).unwrap();
        }
    }
    let store =
        si_data::ShardedSnapshotStore::new(db, social_partition_map(), DATA_SHARDS).unwrap();
    let view = store.pin();
    let rid_constraint = access
        .constraints()
        .iter()
        .find(|c| c.relation == "visit" && c.is_on(&["rid".into()]))
        .unwrap()
        .clone();
    let attrs = ["rid".to_string(), "id".to_string()];

    println!(
        "routed vs fan-out: {PROBES} probes of σ_{{rid = hot, id = p}}(visit) over \
         {DATA_SHARDS} shards, hot bucket = {PERSONS} tuples\n"
    );

    let fanout: ShardedAccess = ShardedAccess::new(view.clone(), access.clone());
    let routed: ShardedAccess =
        ShardedAccess::new(view.clone(), access.clone()).with_pruned_routing(true);

    let mut checked = 0usize;
    let fan_start = Instant::now();
    for p in 0..PROBES as i64 {
        let key = [Value::int(HOT_RID), Value::int(p * 17 % PERSONS as i64)];
        let rows = fanout
            .fetch_via(&rid_constraint, "visit", &attrs, &key)
            .unwrap();
        checked += rows.len();
    }
    let fan_elapsed = fan_start.elapsed();
    let fan_tuples = fanout.meter_snapshot().tuples_fetched;

    let routed_start = Instant::now();
    for p in 0..PROBES as i64 {
        let key = [Value::int(HOT_RID), Value::int(p * 17 % PERSONS as i64)];
        let rows = routed
            .fetch_via(&rid_constraint, "visit", &attrs, &key)
            .unwrap();
        checked -= rows.len(); // identical answers → net zero
    }
    let routed_elapsed = routed_start.elapsed();
    let routed_tuples = routed.meter_snapshot().tuples_fetched;

    assert_eq!(
        checked, 0,
        "routed and fan-out probes must answer identically"
    );
    assert_eq!(fanout.fanned_fetches(), PROBES as u64);
    assert_eq!(routed.routed_fetches(), PROBES as u64);

    let ratio = fan_tuples as f64 / routed_tuples.max(1) as f64;
    println!(
        "{:>12}  {:>14}  {:>12}  {:>12}",
        "mode", "tuples fetched", "per probe", "wall-clock"
    );
    println!(
        "{:>12}  {:>14}  {:>12.1}  {:>10.2?}",
        "fan-out",
        fan_tuples,
        fan_tuples as f64 / PROBES as f64,
        fan_elapsed
    );
    println!(
        "{:>12}  {:>14}  {:>12.1}  {:>10.2?}",
        "routed",
        routed_tuples,
        routed_tuples as f64 / PROBES as f64,
        routed_elapsed
    );
    println!("\nrouted probe fetches {ratio:.1}x fewer tuples than forced fan-out");
    assert!(
        ratio >= 4.0,
        "routing must save >= 4x tuples on the skewed instance (got {ratio:.1}x)"
    );
}
