//! E6: QCntl / minimal controlling set search (Theorem 4.4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use si_access::{AccessConstraint, AccessSchema};
use si_core::minimal_controlling_sets;
use si_data::{DatabaseSchema, RelationSchema};
use si_query::parse_fo_query;

fn bench_qcntl(c: &mut Criterion) {
    let mut group = c.benchmark_group("qcntl");
    group.sample_size(10);
    for k in [4usize, 8, 12] {
        let attrs: Vec<String> = (0..k).map(|i| format!("a{i}")).collect();
        let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
        let schema =
            DatabaseSchema::from_relations(vec![RelationSchema::new("r", &attr_refs)]).unwrap();
        let mut access = AccessSchema::new();
        for i in 0..k - 1 {
            access.add(AccessConstraint::new(
                "r",
                &[&attrs[i], &attrs[i + 1]],
                10,
                1,
            ));
        }
        let head = attrs.join(", ");
        let q = parse_fo_query(&format!("Q({head}) := r({head})")).unwrap();
        group.bench_with_input(BenchmarkId::new("minimal_sets", k), &k, |b, _| {
            b.iter(|| {
                minimal_controlling_sets(&q, &schema, &access)
                    .unwrap()
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_qcntl);
criterion_main!(benches);
