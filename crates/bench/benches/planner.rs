//! Greedy vs cost-based atom ordering on a skewed 3-atom join.
//!
//! The workload is adversarial for declared-bound ordering: relation `r` has
//! one heavy key (so its access constraint must declare a large `N`) but an
//! average fanout of ~1.5, while `s` has a uniform fanout of 200 (declared
//! `N = 200`).  The greedy planner orders by declared bounds and starts with
//! `s`; the cost-based planner orders by statistics and starts with `r`.
//! Both plans are executed through the same bounded executor over the same
//! access-indexed database, so the measured gap is purely the ordering.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use si_access::{AccessConstraint, AccessIndexedDatabase, AccessSchema};
use si_core::bounded::{execute_bounded, BoundedPlan, BoundedPlanner, CostBasedPlanner};
use si_data::{tuple, Database, DatabaseSchema, RelationSchema, Value};
use si_query::{parse_cq, ConjunctiveQuery};

fn chain_schema() -> DatabaseSchema {
    DatabaseSchema::from_relations(vec![
        RelationSchema::new("r", &["a", "x"]),
        RelationSchema::new("s", &["b", "x"]),
        RelationSchema::new("t", &["x", "y"]),
    ])
    .unwrap()
}

fn skewed_db() -> Database {
    let mut db = Database::empty(chain_schema());
    // r: heavy key 0 carries 2000 tuples; keys 1..=4000 carry one each.
    for j in 0..2000i64 {
        db.insert("r", tuple![0, j]).unwrap();
    }
    for a in 1..=4000i64 {
        db.insert("r", tuple![a, a % 2000]).unwrap();
    }
    // s: 20 keys, uniform fanout 200.
    for b in 0..20i64 {
        for j in 0..200i64 {
            db.insert("s", tuple![b, (b * 200 + j) % 2000]).unwrap();
        }
    }
    // t: fanout 2 per x.
    for x in 0..2000i64 {
        db.insert("t", tuple![x, x + 10_000]).unwrap();
        db.insert("t", tuple![x, x + 20_000]).unwrap();
    }
    db
}

fn access_schema() -> AccessSchema {
    AccessSchema::new()
        // The heavy key forces the declared bound up to 2000.
        .with(AccessConstraint::new("r", &["a"], 2000, 1))
        .with(AccessConstraint::new("s", &["b"], 200, 1))
        .with(AccessConstraint::new("t", &["x"], 2, 1))
}

fn query() -> ConjunctiveQuery {
    parse_cq("Q(y) :- r(p, x), s(q, x), t(x, y)").unwrap()
}

fn run_plan(plan: &BoundedPlan, adb: &AccessIndexedDatabase) -> usize {
    let mut total = 0usize;
    for p in 1..=64i64 {
        let q = p % 20;
        let result = execute_bounded(plan, &[Value::int(p), Value::int(q)], adb).unwrap();
        total += result.answers.len();
    }
    total
}

fn bench_planner(c: &mut Criterion) {
    let schema = chain_schema();
    let access = access_schema();
    let db = skewed_db();
    let stats = db.statistics();
    let q = query();
    let params = ["p".to_string(), "q".to_string()];

    let greedy = BoundedPlanner::new(&schema, &access)
        .plan(&q, &params)
        .unwrap();
    let costed = CostBasedPlanner::new(&schema, &access, &stats)
        .plan_costed(&q, &params, None)
        .unwrap();
    // The orderings genuinely differ: greedy trusts the declared bounds and
    // starts with `s`; the statistics start with `r`.
    assert_eq!(greedy.steps[0].atom_index(), 1);
    assert_eq!(costed.plan.steps[0].atom_index(), 0);
    assert!(!costed.greedy_fallback);

    let adb = AccessIndexedDatabase::new(db, access.clone()).unwrap();
    // Both plans answer identically.
    assert_eq!(run_plan(&greedy, &adb), run_plan(&costed.plan, &adb));

    let mut group = c.benchmark_group("planner/skewed_3atom_join");
    group.sample_size(10);
    group.bench_function("greedy_ordering", |b| {
        b.iter(|| black_box(run_plan(&greedy, &adb)))
    });
    group.bench_function("cost_based_ordering", |b| {
        b.iter(|| black_box(run_plan(&costed.plan, &adb)))
    });
    group.finish();

    // Report the fetch-count gap alongside the wall-clock numbers.
    adb.reset_meter();
    run_plan(&greedy, &adb);
    let greedy_fetched = adb.meter_snapshot().tuples_fetched;
    adb.reset_meter();
    run_plan(&costed.plan, &adb);
    let cost_fetched = adb.meter_snapshot().tuples_fetched;
    eprintln!(
        "planner/skewed_3atom_join: tuples fetched greedy={greedy_fetched} cost_based={cost_fetched} ({}x)",
        greedy_fetched / cost_fetched.max(1)
    );
}

criterion_group!(benches, bench_planner);
criterion_main!(benches);
