//! E2: Q1 bounded vs naive evaluation as |D| grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use si_access::{facebook_access_schema, AccessIndexedDatabase};
use si_bench::social_database;
use si_core::prelude::*;
use si_data::Value;
use si_workload::q1;

fn bench_q1(c: &mut Criterion) {
    let access = facebook_access_schema(5000);
    let query = q1();
    let mut group = c.benchmark_group("q1_scaling");
    group.sample_size(10);
    for persons in [1_000usize, 8_000, 32_000] {
        let db = social_database(persons);
        let schema = db.schema().clone();
        let plan = BoundedPlanner::new(&schema, &access)
            .plan(&query, &["p".into()])
            .unwrap();
        let adb = AccessIndexedDatabase::new(db, access.clone()).unwrap();
        group.bench_with_input(BenchmarkId::new("bounded", persons), &adb, |b, adb| {
            b.iter(|| execute_bounded(&plan, &[Value::int(7)], adb).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("naive", persons), &adb, |b, adb| {
            b.iter(|| {
                execute_naive(&query, &["p".into()], &[Value::int(7)], adb.database()).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_q1);
criterion_main!(benches);
