//! E8: VQSI rewriting search cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use si_core::decide_vqsi_cq;
use si_core::views::find_rewritings;
use si_workload::{paper_views, q2};

fn bench_vqsi(c: &mut Criterion) {
    let views = paper_views();
    let mut group = c.benchmark_group("vqsi");
    group.sample_size(10);
    for m in [0usize, 1, 4] {
        group.bench_with_input(BenchmarkId::new("decide_vqsi_q2", m), &m, |b, &m| {
            b.iter(|| decide_vqsi_cq(&q2(), &views, m, 64).unwrap())
        });
    }
    group.bench_function("rewriting_enumeration", |b| {
        b.iter(|| find_rewritings(&q2(), &views, 64).unwrap().len())
    });
    group.finish();
}

criterion_group!(benches, bench_vqsi);
criterion_main!(benches);
