//! Replicated serving: read fan-out over wire-attached replicas vs
//! primary-only in-process serving.
//!
//! Custom harness (`harness = false`): like the sharding bench, this
//! measures quantities the criterion shim cannot — a divergence count,
//! exact tuples-fetched totals, and replica-lag gauge coherence.
//!
//! **Pre-pass** — a sample of the social request mix is served both ways
//! on a 4-shard engine with one replica per shard behind duplex pipes;
//! any divergence in answers or meters fails the bench.
//!
//! **Fan-out study** — the same request stream is timed primary-only
//! (`execute`: in-process scatter-gather) and replicated
//! (`execute_replicated`: every probe crosses the framed wire protocol).
//! Exact metering must agree tuple-for-tuple; the wall-clock delta is the
//! transport tax per 1k reads.
//!
//! **Lag coherence** — a paused replica plus a commit must surface as
//! `si_replica_lag = 1` for exactly that shard (and a typed epoch-wait
//! refusal); after resume the fleet converges and every lag gauge returns
//! to zero.

use si_data::Delta;
use si_engine::{Engine, EngineConfig, Request, ShardReplica};
use si_wire::{Connection, Duplex};
use si_workload::{
    serving_access_schema, social_partition_map, social_requests, SocialConfig, SocialGenerator,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

const PERSONS: usize = 1_000;
const SHARDS: usize = 4;
const READS: usize = 1_000;
const VERIFY_SAMPLE: usize = 200;

fn attach_fleet(engine: &Engine) -> Vec<Arc<ShardReplica>> {
    (0..SHARDS)
        .map(|shard| {
            let (primary_end, replica_end) = Duplex::pair();
            let replica = Arc::new(ShardReplica::new(8));
            replica.spawn(Arc::new(Connection::new(Arc::new(replica_end))));
            engine.attach_replica(shard, Arc::new(primary_end)).unwrap();
            replica
        })
        .collect()
}

fn lags(engine: &Engine) -> Vec<u64> {
    let epoch = engine.snapshot().epoch();
    engine
        .replica_statuses()
        .iter()
        .map(|s| epoch.saturating_sub(s.acked_epoch))
        .collect()
}

fn main() {
    let db = SocialGenerator::new(SocialConfig {
        persons: PERSONS,
        restaurants: 100,
        ..SocialConfig::default()
    })
    .generate();
    let engine = Engine::new_sharded(
        db,
        serving_access_schema(5000),
        social_partition_map(),
        SHARDS,
        EngineConfig {
            materialize_after: u64::MAX, // both paths run the bounded plan
            ..EngineConfig::default()
        },
    )
    .expect("sharded engine construction");
    let replicas = attach_fleet(&engine);
    let requests: Vec<Request> = social_requests(PERSONS, READS, 7)
        .into_iter()
        .map(|g| Request::new(g.query, g.parameters, g.values))
        .collect();

    // Pre-pass: transport-backed serving must be answer- and meter-exact.
    let mut divergent = 0usize;
    for request in requests.iter().take(VERIFY_SAMPLE) {
        let local = engine.execute(request).expect("local execution");
        let remote = engine
            .execute_replicated(request)
            .expect("replicated execution");
        let mut a = local.answers.clone();
        let mut b = remote.answers.clone();
        a.sort();
        b.sort();
        if a != b || local.accesses != remote.accesses {
            divergent += 1;
        }
    }
    println!(
        "correctness: {divergent}/{VERIFY_SAMPLE} divergent responses \
         ({SHARDS}-shard engine, replicated vs primary-only)"
    );
    assert_eq!(divergent, 0, "replicated serving diverged");

    // Fan-out study: the transport tax per 1k reads, meters held equal.
    let primary_start = Instant::now();
    let mut primary_tuples = 0u64;
    for request in &requests {
        primary_tuples += engine
            .execute(request)
            .expect("local")
            .accesses
            .tuples_fetched;
    }
    let primary_elapsed = primary_start.elapsed();

    let replicated_start = Instant::now();
    let mut replicated_tuples = 0u64;
    for request in &requests {
        replicated_tuples += engine
            .execute_replicated(request)
            .expect("replicated")
            .accesses
            .tuples_fetched;
    }
    let replicated_elapsed = replicated_start.elapsed();

    assert_eq!(
        primary_tuples, replicated_tuples,
        "exact metering must agree across the transport boundary"
    );
    println!(
        "\n{:>14}  {:>14}  {:>16}",
        "mode", "tuples fetched", "wall / 1k reads"
    );
    println!(
        "{:>14}  {:>14}  {:>14.2?}",
        "primary-only", primary_tuples, primary_elapsed
    );
    println!(
        "{:>14}  {:>14}  {:>14.2?}",
        "replicated", replicated_tuples, replicated_elapsed
    );

    // Lag coherence: pause one replica, commit, and the gauges must tell
    // the truth — lag 1 on exactly that shard, refusal on reads, then
    // convergence back to all-zero after resume.
    replicas[0].pause();
    engine.set_replica_epoch_wait(Duration::from_millis(30));
    engine
        .commit(Delta::new().insert("visit", vec![1.into(), 9_999_999.into()].into()))
        .expect("commit");
    assert!(
        engine.execute_replicated(&requests[0]).is_err(),
        "a lagging replica must refuse the epoch wait"
    );
    assert_eq!(lags(&engine), {
        let mut want = vec![0u64; SHARDS];
        want[0] = 1;
        want
    });
    let page = engine.telemetry().render();
    assert!(
        page.contains("si_replica_lag") && page.contains("si_replication_ack_ns"),
        "replication gauges and histogram must be on the exposition page"
    );
    replicas[0].resume();
    engine.set_replica_epoch_wait(Duration::from_secs(5));
    engine
        .execute_replicated(&requests[0])
        .expect("post-resume replicated read");
    assert_eq!(lags(&engine), vec![0u64; SHARDS]);
    println!("\nlag gauges: coherent through pause → refusal → resume → convergence");
}
