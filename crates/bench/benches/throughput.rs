//! Serving throughput and latency: QPS and p50/p95/p99 service time for
//! 1/2/4/8 engine workers on the skewed social workload, with scaling
//! efficiency against the single-worker baseline.
//!
//! This bench uses a custom harness (`harness = false`, plain `main`): the
//! criterion shim measures mean time per iteration, while a serving bench
//! needs wall-clock QPS over an open-loop request queue plus per-request
//! latency percentiles.
//!
//! Before timing anything, a correctness pre-pass answers a sample of the
//! request stream both through the engine (4 workers, 4-way sharded
//! executions, concurrent) and by naive single-threaded evaluation; any
//! divergence fails the bench.  The timed runs then drain REQUESTS pooled
//! requests per worker count.  Reported latency is *service* time (plan
//! cache + snapshot pin + bounded execution, measured inside the worker) —
//! queueing delay in an open-loop drain is an artefact of submitting
//! everything up front, not of the engine.
//!
//! A final arm compares **batched** against **unbatched** serving on a
//! bursty workload (waves of identical hot requests).  It deliberately
//! reports *work*, not wall-clock: tuples fetched and snapshot pins (each
//! pin is one lock-guarded version acquisition) per 1 000 requests — the
//! axes shared-fetch grouping actually moves, and ones a laptop-noise
//! timing run cannot blur.

use si_data::Tuple;
use si_engine::{Engine, EngineConfig, Request};
use si_query::evaluate_cq;
use si_telemetry::LatencyHistogram;
use si_workload::{
    burst_requests, serving_access_schema, social_requests, SocialConfig, SocialGenerator,
};
use std::time::Instant;

const PERSONS: usize = 2_000;
const REQUESTS: usize = 6_000;
const VERIFY_SAMPLE: usize = 300;
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn generated_requests(count: usize, seed: u64) -> Vec<Request> {
    social_requests(PERSONS, count, seed)
        .into_iter()
        .map(|g| Request::new(g.query, g.parameters, g.values))
        .collect()
}

fn make_engine(workers: usize, shards: usize) -> Engine {
    let db = SocialGenerator::new(SocialConfig {
        persons: PERSONS,
        restaurants: 200,
        ..SocialConfig::default()
    })
    .generate();
    Engine::new(
        db,
        serving_access_schema(5000),
        EngineConfig {
            workers,
            shards_per_query: shards,
            max_queue: 0, // the bench intentionally floods the queue
            ..EngineConfig::default()
        },
    )
    .expect("engine construction")
}

fn naive_answers(request: &Request, db: &si_data::Database) -> Vec<Tuple> {
    let bindings: Vec<(String, si_data::Value)> = request
        .parameters
        .iter()
        .cloned()
        .zip(request.values.iter().copied())
        .collect();
    let mut answers = evaluate_cq(&request.query.bind(&bindings), db, None).unwrap();
    answers.sort();
    answers
}

/// Concurrent engine answers vs single-threaded evaluation: must be 0 apart.
fn correctness_prepass() {
    let engine = make_engine(4, 4);
    let requests = generated_requests(VERIFY_SAMPLE, 17);
    let ground_truth_db = engine.snapshot().to_database();
    let pending: Vec<_> = requests
        .iter()
        .map(|r| engine.submit(r.clone()).expect("submit"))
        .collect();
    let mut divergent = 0usize;
    for (request, pending) in requests.iter().zip(pending) {
        let response = pending.wait().expect("response");
        let mut served = response.answers;
        served.sort();
        if served != naive_answers(request, &ground_truth_db) {
            divergent += 1;
        }
    }
    println!(
        "correctness: {divergent}/{VERIFY_SAMPLE} divergent answers (engine vs single-threaded)"
    );
    assert_eq!(
        divergent, 0,
        "concurrent serving diverged from single-threaded evaluation"
    );
}

/// Batched vs unbatched serving on a bursty stream: identical answers,
/// work (tuples fetched, snapshot pins) reported per 1 000 requests.
fn batched_vs_unbatched() {
    const BURSTS: usize = 125;
    const BURST_SIZE: usize = 8;
    let total = (BURSTS * BURST_SIZE) as f64;
    let stream = burst_requests(PERSONS, BURSTS, BURST_SIZE, 99);
    let requests: Vec<Request> = stream
        .into_iter()
        .map(|g| Request::new(g.query, g.parameters, g.values))
        .collect();
    let batched = make_engine(1, 1);
    let unbatched = make_engine(1, 1);

    let mut divergent = 0usize;
    for wave in requests.chunks(BURST_SIZE) {
        let grouped = batched.execute_batch(wave);
        for (request, response) in wave.iter().zip(grouped) {
            let single = unbatched.execute(request).expect("unbatched serve");
            let response = response.expect("batched serve");
            if response.answers != single.answers {
                divergent += 1;
            }
        }
    }
    assert_eq!(divergent, 0, "batched serving diverged from unbatched");

    println!(
        "\nbatched vs unbatched serving: {BURSTS} bursts x {BURST_SIZE} identical requests \
         (60% Q1 / 40% Q2, quadratic person skew); work per 1k requests, not wall-clock\n"
    );
    println!(
        "{:>9}  {:>12}  {:>10}  {:>14}",
        "arm", "tuples/1k", "pins/1k", "shared_fetches"
    );
    let mb = batched.metrics();
    let mu = unbatched.metrics();
    for (arm, m) in [("unbatched", &mu), ("batched", &mb)] {
        println!(
            "{:>9}  {:>12.1}  {:>10.1}  {:>14}",
            arm,
            m.accesses.tuples_fetched as f64 * 1_000.0 / total,
            m.snapshot_pins as f64 * 1_000.0 / total,
            m.shared_fetches,
        );
    }
    println!(
        "\nbatching: {:.1}x fewer tuples fetched, {:.1}x fewer snapshot pins \
         ({} fetch executions served {} requests)",
        mu.accesses.tuples_fetched as f64 / mb.accesses.tuples_fetched.max(1) as f64,
        mu.snapshot_pins as f64 / mb.snapshot_pins.max(1) as f64,
        mb.shared_fetches,
        mb.batched_requests,
    );
    assert!(
        4 * mb.accesses.tuples_fetched <= mu.accesses.tuples_fetched,
        "shared-fetch batching must cut tuple accesses at least 4x on bursts"
    );
}

fn main() {
    correctness_prepass();
    batched_vs_unbatched();

    println!(
        "\nserving {REQUESTS} requests (80% Q1 / 20% Q2, quadratic person skew) over \
         {PERSONS} persons\n"
    );
    println!(
        "{:>7}  {:>10}  {:>9}  {:>9}  {:>9}  {:>10}",
        "workers", "qps", "p50(us)", "p95(us)", "p99(us)", "efficiency"
    );

    let mut baseline_qps = None;
    for workers in WORKER_COUNTS {
        let engine = make_engine(workers, 1);
        let requests = generated_requests(REQUESTS, 42);
        // Warm up: build the lazy indexes and the plan cache before timing.
        for request in requests.iter().take(100) {
            engine.execute(request).unwrap();
        }

        // One feeder (client connection) per pool worker: a single submitter
        // costs ~30µs per submission (request clone + reply channel) and
        // would cap throughput below what even two workers can drain.
        let mut slices: Vec<Vec<Request>> = Vec::with_capacity(workers);
        let per_slice = REQUESTS.div_ceil(workers);
        for chunk in requests.chunks(per_slice) {
            slices.push(chunk.to_vec());
        }

        // Per-request service time goes straight into the lock-free
        // log-linear histogram shared by all feeders — the same primitive
        // the engine's own serve path records into — and the percentiles
        // below are read from its snapshot (≤ 1/64 relative error, exact
        // max), replacing the sort-and-index percentile math this bench
        // used to hand-roll.
        let latency = LatencyHistogram::new();
        let start = Instant::now();
        std::thread::scope(|scope| {
            for slice in slices {
                let engine = &engine;
                let latency = &latency;
                scope.spawn(move || {
                    let pending: Vec<_> = slice
                        .into_iter()
                        .map(|r| engine.submit(r).expect("submit"))
                        .collect();
                    for p in pending {
                        latency.record_duration(p.wait().expect("response").service);
                    }
                });
            }
        });
        let wall = start.elapsed().as_secs_f64();
        let lat = latency.snapshot();

        let qps = REQUESTS as f64 / wall;
        let base = *baseline_qps.get_or_insert(qps);
        println!(
            "{:>7}  {:>10.0}  {:>9.1}  {:>9.1}  {:>9.1}  {:>9.2}x",
            workers,
            qps,
            lat.p50() as f64 / 1e3,
            lat.p95() as f64 / 1e3,
            lat.p99() as f64 / 1e3,
            qps / base,
        );

        let metrics = engine.metrics();
        assert_eq!(metrics.requests as usize, REQUESTS + 100);
        assert!(metrics.cache_hits > metrics.cache_misses);
    }
    println!("\nefficiency = QPS relative to the 1-worker pool baseline");
}
