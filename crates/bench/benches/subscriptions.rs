//! Push vs poll on a hot shape under a commit storm: what does it cost a
//! consumer to *stay current* with a query answer across 1 000 commits?
//!
//! Both arms run the same engine config (materialization on, so the
//! maintenance path — not serving — propagates every commit into the hot
//! answers) over the same seeded friend-churn storm:
//!
//! * **poll-re-serve** — the pre-reactive consumer: after every commit it
//!   re-executes each hot request, because without a change stream a poll
//!   is the only way to learn whether the answer moved.  Every poll hauls
//!   the *full* answer back across the interface, almost always to
//!   discover nothing changed.
//! * **coalesced push** — the consumer holds an `ObservableQuery` per hot
//!   shape and drains its queue after every commit: unchanged answers are
//!   elided outright, changed ones arrive as a `ChangeSet` carrying only
//!   the tuples that moved.
//!
//! Reported per arm: answer tuples crossing the consumer interface, updates
//! delivered vs polls issued (per 1 000 commits), and the engine's own
//! base-data fetch counters (serve + maintenance) for context — the
//! maintenance cost is identical by construction; the delta is pure
//! delivery.  The asserted contract is the ISSUE's: push moves **≥ 4×
//! fewer** answer tuples than poll-re-serve on the hot-shape storm.

use si_data::{Database, Delta, Tuple, Value};
use si_engine::{AnswerUpdate, Engine, EngineConfig, Request};
use si_workload::rng::SplitMix64;
use si_workload::{serving_access_schema, SocialConfig, SocialGenerator};

const PERSONS: usize = 2_000;
const HOT: usize = 8;
const COMMITS: usize = 1_000;

fn make_engine(db: &Database) -> Engine {
    Engine::new(
        db.clone(),
        serving_access_schema(5000),
        EngineConfig {
            workers: 1,
            materialize_capacity: 32,
            materialize_after: 1,
            ..EngineConfig::default()
        },
    )
    .expect("engine construction")
}

fn hot_requests() -> Vec<Request> {
    (0..HOT)
        .map(|p| {
            Request::new(
                si_workload::q1(),
                vec!["p".into()],
                vec![Value::int(p as i64)],
            )
        })
        .collect()
}

/// One friend insert-or-delete per commit, biased towards the hot persons
/// so the storm actually moves the watched answers now and then.
fn gen_storm(db: &Database, seed: u64) -> Vec<Delta> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut evolving = db.clone();
    (0..COMMITS)
        .map(|_| {
            let mut delta = Delta::new();
            loop {
                if rng.gen_range(0..2u8) == 0 {
                    let a = if rng.gen_range(0..4u8) < 3 {
                        rng.gen_range(0..HOT)
                    } else {
                        rng.gen_range(0..PERSONS)
                    } as i64;
                    let b = rng.gen_range(0..PERSONS) as i64;
                    let t: Tuple = vec![Value::int(a), Value::int(b)].into();
                    if !evolving.contains("friend", &t).unwrap() {
                        delta.insert("friend", t);
                        break;
                    }
                } else {
                    let rel = evolving.relation("friend").unwrap();
                    let i = rng.gen_range(0..rel.len());
                    if let Some(t) = rel.iter().nth(i).cloned() {
                        delta.delete("friend", t);
                        break;
                    }
                }
            }
            delta.apply_in_place(&mut evolving).unwrap();
            delta
        })
        .collect()
}

/// Base-data tuples the engine itself fetched so far (serving plus
/// maintenance) — identical across arms by construction, printed as proof.
fn base_fetches(engine: &Engine) -> u64 {
    let m = engine.metrics();
    m.accesses.tuples_fetched + m.maintenance_accesses.tuples_fetched
}

fn main() {
    let db = SocialGenerator::new(SocialConfig {
        persons: PERSONS,
        restaurants: 200,
        ..SocialConfig::default()
    })
    .generate();
    let storm = gen_storm(&db, 0xF10F);
    let requests = hot_requests();

    // Poll arm: re-serve every hot shape after every commit.
    let poll = make_engine(&db);
    for request in &requests {
        poll.execute(request).expect("poll warmup"); // admit + materialize
        poll.execute(request).expect("poll warmup");
    }
    let poll_base_before = base_fetches(&poll);
    let mut poll_tuples = 0u64;
    let mut polls = 0u64;
    for delta in &storm {
        poll.commit(delta).expect("poll commit");
        for request in &requests {
            let response = poll.execute(request).expect("poll re-serve");
            poll_tuples += response.answers.len() as u64;
            polls += 1;
        }
    }
    let poll_base = base_fetches(&poll) - poll_base_before;

    // Push arm: hold a subscription per hot shape, drain after every commit.
    let push = make_engine(&db);
    let subs: Vec<_> = requests
        .iter()
        .map(|request| push.subscribe(request).expect("subscribe"))
        .collect();
    for sub in &subs {
        sub.drain(); // the fenced initial Resync is registration, not delivery
    }
    let push_base_before = base_fetches(&push);
    let mut push_tuples = 0u64;
    let mut deliveries = 0u64;
    for delta in &storm {
        push.commit(delta).expect("push commit");
        for sub in &subs {
            for update in sub.drain() {
                deliveries += 1;
                push_tuples += match &update {
                    AnswerUpdate::Changes(set) => (set.added.len() + set.removed.len()) as u64,
                    AnswerUpdate::Resync { full_answer, .. } => full_answer.len() as u64,
                };
            }
        }
    }
    let push_base = base_fetches(&push) - push_base_before;

    let per_k = |n: u64| n as f64 * 1_000.0 / COMMITS as f64;
    println!(
        "staying current with {HOT} hot Q1 shapes across {COMMITS} commits \
         (friend churn, {PERSONS} persons; both arms materialize + maintain)\n"
    );
    println!(
        "{:>14}  {:>13}  {:>15}  {:>13}",
        "arm", "answer tuples", "updates/1k com.", "base fetches"
    );
    println!(
        "{:>14}  {:>13}  {:>15.0}  {:>13}",
        "poll-re-serve",
        poll_tuples,
        per_k(polls),
        poll_base
    );
    println!(
        "{:>14}  {:>13}  {:>15.0}  {:>13}",
        "push",
        push_tuples,
        per_k(deliveries),
        push_base
    );

    // The push arm really streamed (and its counters agree with the drain).
    let m = push.metrics();
    assert!(deliveries > 0, "the storm never moved a watched answer");
    assert_eq!(m.subscribers, HOT as u64);
    assert!(
        m.subscription_deliveries + m.subscription_resyncs >= deliveries,
        "registry counters lost deliveries"
    );
    // Maintenance did the same bounded work in both arms; the saving is in
    // delivery, not in a cheaper commit path.
    assert!(
        push_base <= poll_base,
        "push must not fetch more base data than poll ({push_base} vs {poll_base})"
    );

    let ratio = poll_tuples as f64 / push_tuples.max(1) as f64;
    assert!(
        ratio >= 4.0,
        "push must move >=4x fewer answer tuples than poll-re-serve, got {ratio:.1}x \
         ({push_tuples} vs {poll_tuples})"
    );
    println!(
        "\ncontract: push moved {ratio:.0}x fewer answer tuples than poll-re-serve \
         (>=4x required)"
    );
}
