//! Durability-plane bench: fsync amortization under group commit.
//!
//! A WAL that syncs on every commit pays one fsync per writer; the group
//! commit path gathers a storm of concurrent writers into one merged
//! delta, one WAL record and **one** fsync.  This bench drives the same
//! 64-commit storm through both paths on the simulated disk (which counts
//! `sync` calls exactly) and reports the amortization factor — the
//! headline bar is **≥ 4× fewer fsyncs** for the group path, and in
//! practice a quiet machine gathers the whole storm into one pass.
//!
//! Like the other custom-harness benches this is a plain `main`: the
//! measured quantity is a *count* (fsyncs), not wall-clock, so it is
//! immune to laptop noise — and a correctness pre-pass proves both paths
//! end at identical durable state by crash-recovering each disk and
//! comparing the recovered databases both ways.

use si_data::{Database, Delta, Value};
use si_durability::{DurabilityConfig, SimDisk, Wal};
use si_engine::{Engine, EngineConfig};
use si_workload::{SocialConfig, SocialGenerator};
use std::time::{Duration, Instant};

const STORM: usize = 64;

fn social_db() -> Database {
    SocialGenerator::new(SocialConfig {
        persons: 200,
        restaurants: 20,
        ..SocialConfig::default()
    })
    .generate()
}

/// 64 disjoint singleton deltas: each inserts one fresh `visit` tuple, so
/// any gathering of them merges cleanly into one batch.
fn storm_deltas() -> Vec<Delta> {
    (0..STORM)
        .map(|i| {
            let mut delta = Delta::new();
            delta.insert(
                "visit",
                vec![Value::from(i % 200), Value::from(5_000_000 + i)].into(),
            );
            delta
        })
        .collect()
}

fn durable_engine(db: Database, disk: &SimDisk, linger: Duration) -> Engine {
    Engine::new_durable(
        db,
        si_access::facebook_access_schema(5_000),
        Box::new(disk.clone()),
        EngineConfig {
            workers: 1,
            commit_batch_max: STORM,
            commit_linger: linger,
            durability: Some(DurabilityConfig {
                checkpoint_every: 0, // isolate commit fsyncs from checkpoint ones
                keep_checkpoints: 2,
            }),
            ..EngineConfig::default()
        },
    )
    .expect("engine construction")
}

fn main() {
    let db = social_db();
    let mut expected = db.clone();
    for delta in storm_deltas() {
        delta.apply_in_place(&mut expected).unwrap();
    }

    // -- Per-commit path: every commit is its own WAL record + fsync. --
    let per_disk = SimDisk::new();
    let per_engine = durable_engine(db.clone(), &per_disk, Duration::ZERO);
    let base_syncs = per_engine.metrics().wal_syncs; // WAL creation cost
    let start = Instant::now();
    for delta in storm_deltas() {
        per_engine.commit(&delta).unwrap();
    }
    let per_elapsed = start.elapsed();
    let per_metrics = per_engine.metrics();
    let per_syncs = per_metrics.wal_syncs - base_syncs;
    drop(per_engine);

    // -- Group path: the committer thread gathers the async storm. --
    let group_disk = SimDisk::new();
    let group_engine = durable_engine(db.clone(), &group_disk, Duration::from_millis(400));
    let group_base_syncs = group_engine.metrics().wal_syncs;
    let start = Instant::now();
    let tickets: Vec<_> = storm_deltas()
        .into_iter()
        .map(|delta| group_engine.commit_async(delta).unwrap())
        .collect();
    for ticket in tickets {
        ticket.wait().unwrap();
    }
    let group_elapsed = start.elapsed();
    let group_metrics = group_engine.metrics();
    let group_syncs = group_metrics.wal_syncs - group_base_syncs;
    drop(group_engine);

    // -- Correctness: both disks crash-recover to the same final state. --
    for (name, disk, epoch) in [
        ("per-commit", &per_disk, per_metrics.snapshot_epoch),
        ("group", &group_disk, group_metrics.snapshot_epoch),
    ] {
        let (rec, _) = Wal::recover(Box::new(disk.clone())).expect("recovery");
        assert_eq!(rec.epoch, epoch, "{name}: recovered epoch");
        let got = &rec.databases[0];
        assert!(
            got.contains_database(&expected) && expected.contains_database(got),
            "{name}: recovered state diverged from the applied storm"
        );
    }

    assert_eq!(per_metrics.commits, STORM as u64);
    assert_eq!(group_metrics.commits, STORM as u64);
    let amortization = per_syncs as f64 / group_syncs.max(1) as f64;

    println!("durability: {STORM}-commit storm, both paths recover identically");
    println!(
        "  per-commit : {:>3} fsyncs, {:>3} wal records, {:>4} epochs, {:>8.2?}",
        per_syncs, per_metrics.wal_records, per_metrics.snapshot_epoch, per_elapsed
    );
    println!(
        "  group      : {:>3} fsyncs, {:>3} wal records, {:>4} epochs, {:>8.2?} ({} passes)",
        group_syncs,
        group_metrics.wal_records,
        group_metrics.snapshot_epoch,
        group_elapsed,
        group_metrics.group_commits
    );
    println!("  amortization: {amortization:.1}x fewer fsyncs under group commit");

    assert_eq!(
        per_syncs, STORM as u64,
        "per-commit path must fsync per commit"
    );
    assert!(
        per_syncs >= 4 * group_syncs,
        "group commit must amortize fsyncs at least 4x ({per_syncs} vs {group_syncs})"
    );
}
