//! E3: Q3 with embedded constraints (Example 4.6) vs naive evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use si_access::AccessIndexedDatabase;
use si_bench::dated_social_database;
use si_core::prelude::*;
use si_data::Value;
use si_workload::{example_46_access_schema, q3};

fn bench_q3(c: &mut Criterion) {
    let access = example_46_access_schema(5000);
    let query = q3();
    let mut group = c.benchmark_group("q3_embedded");
    group.sample_size(10);
    for persons in [1_000usize, 8_000] {
        let db = dated_social_database(persons);
        let schema = db.schema().clone();
        let plan = BoundedPlanner::new(&schema, &access)
            .plan(&query, &["p".into(), "yy".into()])
            .unwrap();
        let adb = AccessIndexedDatabase::new(db, access.clone()).unwrap();
        group.bench_with_input(BenchmarkId::new("bounded", persons), &adb, |b, adb| {
            b.iter(|| execute_bounded(&plan, &[Value::int(7), Value::int(2013)], adb).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("naive", persons), &adb, |b, adb| {
            b.iter(|| {
                execute_naive(
                    &query,
                    &["p".into(), "yy".into()],
                    &[Value::int(7), Value::int(2013)],
                    adb.database(),
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_q3);
criterion_main!(benches);
