//! E5: Q2 answered through the views V1, V2 vs direct evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use si_access::{facebook_access_schema, AccessIndexedDatabase};
use si_bench::social_database;
use si_core::prelude::*;
use si_data::Value;
use si_workload::{paper_views, q2, q2_rewriting};

fn bench_views(c: &mut Criterion) {
    let views = paper_views();
    let rewriting = q2_rewriting();
    let mut group = c.benchmark_group("q2_views");
    group.sample_size(10);
    for persons in [1_000usize, 8_000] {
        let db = social_database(persons);
        let materialized = views.materialize_views_only(&db).unwrap();
        let adb = AccessIndexedDatabase::new(db, facebook_access_schema(5000)).unwrap();
        group.bench_with_input(BenchmarkId::new("with_views", persons), &adb, |b, adb| {
            b.iter(|| {
                execute_with_views(
                    &rewriting,
                    &views,
                    &["p".into()],
                    &[Value::int(7)],
                    adb,
                    &materialized,
                )
                .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("naive", persons), &adb, |b, adb| {
            b.iter(|| {
                execute_naive(&q2(), &["p".into()], &[Value::int(7)], adb.database()).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_views);
criterion_main!(benches);
