//! E7: RA_A controllability derivation and incremental maintenance.

use criterion::{criterion_group, criterion_main, Criterion};
use si_bench::{q2_access_schema, social_database};
use si_core::controllability::{AlgebraControllability, ExprForm};
use si_core::incremental::{maintain, propagate};
use si_data::schema::social_schema;
use si_query::{cq_to_ra, evaluate_ra};
use si_workload::{q2, visit_insertions};

fn bench_ra(c: &mut Criterion) {
    let schema = social_schema();
    let access = q2_access_schema();
    let expr = cq_to_ra(&q2(), &schema).unwrap();
    let mut group = c.benchmark_group("ra_rules");
    group.sample_size(10);
    group.bench_function("controllability_derivation", |b| {
        let analyzer = AlgebraControllability::new(&schema, &access);
        b.iter(|| {
            (
                analyzer.controlling_sets(&expr, ExprForm::Plain).unwrap(),
                analyzer.controlling_sets(&expr, ExprForm::Delta).unwrap(),
                analyzer.controlling_sets(&expr, ExprForm::Nabla).unwrap(),
            )
        })
    });
    group.bench_function("change_propagation_derivation", |b| {
        b.iter(|| propagate(&expr).unwrap())
    });
    let db = social_database(2_000);
    let old = evaluate_ra(&expr, &db).unwrap();
    let delta = visit_insertions(&db, 50, 11);
    group.bench_function("maintain_materialised_result", |b| {
        b.iter(|| maintain(&expr, &old, &db, &delta).unwrap().len())
    });
    group.finish();
}

criterion_group!(benches, bench_ra);
criterion_main!(benches);
