//! E4: incremental maintenance of Q2 vs recomputation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use si_access::AccessIndexedDatabase;
use si_bench::{q2_access_schema, social_database};
use si_core::prelude::*;
use si_data::Value;
use si_workload::{q2, visit_insertions};

fn bench_incremental(c: &mut Criterion) {
    let access = q2_access_schema();
    let mut group = c.benchmark_group("q2_incremental");
    group.sample_size(10);
    for persons in [2_000usize, 16_000] {
        let base = social_database(persons);
        group.bench_with_input(
            BenchmarkId::new("maintain_100_insertions", persons),
            &base,
            |b, base| {
                b.iter(|| {
                    let mut adb = AccessIndexedDatabase::new(base.clone(), access.clone()).unwrap();
                    let mut evaluator = IncrementalBoundedEvaluator::new(
                        q2(),
                        vec!["p".into()],
                        vec![Value::int(7)],
                        &adb,
                    )
                    .unwrap();
                    let delta = visit_insertions(adb.database(), 100, 99);
                    evaluator.apply_update(&mut adb, &delta).unwrap();
                    evaluator.answers().len()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("recompute_from_scratch", persons),
            &base,
            |b, base| {
                b.iter(|| {
                    execute_naive(&q2(), &["p".into()], &[Value::int(7)], base)
                        .unwrap()
                        .answers
                        .len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);
