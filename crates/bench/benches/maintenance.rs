//! Maintain-vs-reexecute: what the materialized answer cache saves on an
//! update-heavy workload.
//!
//! Two engines serve the same hot Q1/Q2 requests across the same stream of
//! small `visit` insert/delete commits: one maintains materialized answers
//! by bounded delta propagation (`materialize_capacity > 0`), the other
//! re-executes its bounded plan on every request.  This bench uses a custom
//! harness (`harness = false`) because the number that matters is not mean
//! time per iteration but **tuples fetched per commit+query cycle** — the
//! paper's access-cost currency — plus the serve latency split.
//!
//! Every cycle cross-checks the two engines against each other, and every
//! 20th cycle against naive single-threaded evaluation of the evolved
//! instance; any divergence fails the bench.  The acceptance bar asserted at
//! the end: maintaining a cached answer across a small commit fetches ≥5×
//! fewer tuples than re-executing its bounded plan.

use si_data::{Database, Tuple, Value};
use si_engine::{Engine, EngineConfig, Request};
use si_query::evaluate_cq;
use si_workload::{
    serving_access_schema, update_heavy_scenario, visit_update_stream, ScenarioOp, SocialConfig,
    SocialGenerator,
};
use std::time::Instant;

const PERSONS: usize = 2_000;
const ROUNDS: usize = 200;

fn social_db() -> Database {
    SocialGenerator::new(SocialConfig {
        persons: PERSONS,
        restaurants: 200,
        ..SocialConfig::default()
    })
    .generate()
}

/// The person with the most outgoing friend edges: the hottest profile.
fn hottest_person(db: &Database) -> i64 {
    let mut counts: std::collections::HashMap<i64, usize> = std::collections::HashMap::new();
    for t in db.relation("friend").unwrap().iter() {
        if let Some(Value::Int(p)) = t.get(0) {
            *counts.entry(*p).or_default() += 1;
        }
    }
    counts
        .into_iter()
        .max_by_key(|(p, n)| (*n, -*p))
        .map(|(p, _)| p)
        .unwrap_or(0)
}

fn make_engine(materialize: bool) -> Engine {
    Engine::new(
        social_db(),
        serving_access_schema(5000),
        EngineConfig {
            workers: 1,
            materialize_capacity: if materialize { 64 } else { 0 },
            materialize_after: 1,
            ..EngineConfig::default()
        },
    )
    .expect("engine construction")
}

fn naive_answers(request: &Request, db: &Database) -> Vec<Tuple> {
    let bindings: Vec<(String, Value)> = request
        .parameters
        .iter()
        .cloned()
        .zip(request.values.iter().copied())
        .collect();
    let mut answers = evaluate_cq(&request.query.bind(&bindings), db, None).unwrap();
    answers.sort();
    answers
}

fn percentile_us(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let db = social_db();
    let hot = hottest_person(&db);
    let requests = [
        Request::new(si_workload::q1(), vec!["p".into()], vec![Value::int(hot)]),
        Request::new(si_workload::q2(), vec!["p".into()], vec![Value::int(hot)]),
    ];
    let commits = visit_update_stream(&db, ROUNDS, 2, 1, 4242);

    let maintained = make_engine(true);
    let reexecuting = make_engine(false);
    // Warm both engines: plans cached everywhere, answers admitted on the
    // maintaining engine (threshold 1).
    for request in &requests {
        maintained.execute(request).unwrap();
        reexecuting.execute(request).unwrap();
    }

    let mut oracle = db;
    let mut maintain_tuples = 0u64;
    let mut reexec_tuples = 0u64;
    let mut materialized_hits = 0usize;
    let mut maintained_latency_us: Vec<f64> = Vec::new();
    let mut reexec_latency_us: Vec<f64> = Vec::new();
    let mut divergent = 0usize;

    for (round, delta) in commits.iter().enumerate() {
        let before = maintained.metrics().maintenance_accesses;
        maintained.commit(delta).unwrap();
        reexecuting.commit(delta).unwrap();
        delta.apply_in_place(&mut oracle).unwrap();
        maintain_tuples += maintained
            .metrics()
            .maintenance_accesses
            .since(&before)
            .tuples_fetched;

        for request in &requests {
            let warm = maintained.execute(request).unwrap();
            let cold = reexecuting.execute(request).unwrap();
            maintain_tuples += warm.accesses.tuples_fetched;
            reexec_tuples += cold.accesses.tuples_fetched;
            if warm.materialized {
                materialized_hits += 1;
            }
            maintained_latency_us.push(warm.service.as_secs_f64() * 1e6);
            reexec_latency_us.push(cold.service.as_secs_f64() * 1e6);

            let mut a = warm.answers.clone();
            a.sort();
            let mut b = cold.answers.clone();
            b.sort();
            if a != b {
                divergent += 1;
            }
            if round % 20 == 0 && a != naive_answers(request, &oracle) {
                divergent += 1;
            }
        }
    }

    maintained_latency_us.sort_by(f64::total_cmp);
    reexec_latency_us.sort_by(f64::total_cmp);
    let cycles = ROUNDS * requests.len();
    let metrics = maintained.metrics();
    println!(
        "update-heavy maintenance: {ROUNDS} commits (2 ins + 1 del visit tuples each) × \
         {} hot requests over {PERSONS} persons (hot person {hot})\n",
        requests.len()
    );
    println!(
        "{:>14}  {:>16}  {:>16}  {:>9}  {:>9}",
        "path", "tuples/cycle", "tuples total", "p50(us)", "p95(us)"
    );
    println!(
        "{:>14}  {:>16.1}  {:>16}  {:>9.2}  {:>9.2}",
        "maintain",
        maintain_tuples as f64 / cycles as f64,
        maintain_tuples,
        percentile_us(&maintained_latency_us, 0.50),
        percentile_us(&maintained_latency_us, 0.95),
    );
    println!(
        "{:>14}  {:>16.1}  {:>16}  {:>9.2}  {:>9.2}",
        "re-execute",
        reexec_tuples as f64 / cycles as f64,
        reexec_tuples,
        percentile_us(&reexec_latency_us, 0.50),
        percentile_us(&reexec_latency_us, 0.95),
    );
    println!(
        "\nfetch ratio: {:.1}× fewer tuples on the maintenance path \
         ({materialized_hits}/{cycles} served from maintained answers, \
         {} maintenance runs, {} fallbacks, {} evictions)",
        reexec_tuples as f64 / maintain_tuples.max(1) as f64,
        metrics.maintenance_runs,
        metrics.maintenance_fallbacks,
        metrics.materialized_evictions,
    );
    println!("correctness: {divergent} divergent answer sets");

    assert_eq!(divergent, 0, "maintained answers diverged");
    assert!(
        materialized_hits * 2 > cycles,
        "materialized cache barely hit: {materialized_hits}/{cycles}"
    );
    assert!(
        reexec_tuples >= 5 * maintain_tuples,
        "maintenance must fetch ≥5× fewer tuples: {maintain_tuples} vs {reexec_tuples}"
    );

    mixed_schedule();
}

/// Second phase: the packaged update-heavy schedule (random interleaving of
/// commits and repeated hot queries rather than strict alternation), driven
/// through both engines with per-query cross-checks.
fn mixed_schedule() {
    let db = social_db();
    let schedule = update_heavy_scenario(&db, 2_000, 20, 8, 2, 1, 77);
    let maintained = make_engine(true);
    let reexecuting = make_engine(false);
    let start = Instant::now();
    let (mut queries, mut commits, mut hits, mut divergent) = (0usize, 0usize, 0usize, 0usize);
    for op in &schedule {
        match op {
            ScenarioOp::Commit(delta) => {
                maintained.commit(delta).unwrap();
                reexecuting.commit(delta).unwrap();
                commits += 1;
            }
            ScenarioOp::Query(g) => {
                let request = Request::new(g.query.clone(), g.parameters.clone(), g.values.clone());
                let warm = maintained.execute(&request).unwrap();
                let cold = reexecuting.execute(&request).unwrap();
                let mut a = warm.answers;
                a.sort();
                let mut b = cold.answers;
                b.sort();
                if a != b {
                    divergent += 1;
                }
                if warm.materialized {
                    hits += 1;
                }
                queries += 1;
            }
        }
    }
    println!(
        "\nmixed schedule (update_heavy_scenario, 2000 ops): {queries} queries / {commits} \
         commits in {:.1}ms — {hits}/{queries} materialized hits, {divergent} divergent",
        start.elapsed().as_secs_f64() * 1e3,
    );
    assert_eq!(divergent, 0, "mixed schedule diverged");
    assert!(
        hits * 2 > queries,
        "materialized cache barely hit on the mixed schedule: {hits}/{queries}"
    );
}
