//! Micro-benchmarks of the copy-cheap data plane: assignment extension and
//! hash-join throughput.
//!
//! These isolate the two inner loops every evaluator runs millions of times —
//! extending a flat [`Binding`] by one variable (a `memcpy` since the
//! interned-value refactor) and probing/joining hash tables keyed by interned
//! values — so regressions in the data plane show up directly in the BENCH
//! trajectory instead of being smeared across the end-to-end experiments.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use si_data::{tuple, Tuple, TupleSet, Value};
use si_query::binding::{Binding, VarTable};
use si_query::{evaluate_cq, parse_cq};
use si_workload::{q1, SocialConfig, SocialGenerator};

/// Extending a binding over `n` variables, one slot at a time — the hot loop
/// of `execute_bounded` and `satisfying_bindings`.
fn bench_binding_extension(c: &mut Criterion) {
    let mut group = c.benchmark_group("joins/binding_extension");
    group.sample_size(20);
    for vars in [4usize, 16, 64] {
        let names: Vec<String> = (0..vars).map(|i| format!("x{i}")).collect();
        let table = VarTable::from_names(names.iter().cloned());
        let values: Vec<Value> = (0..vars)
            .map(|i| {
                if i % 2 == 0 {
                    Value::int(i as i64)
                } else {
                    Value::str("NYC")
                }
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("extend_copy", vars), &vars, |b, _| {
            b.iter(|| {
                // Simulates a join chain: each step clones the partial
                // binding (copy-cheap) and binds one more variable.
                let mut binding = Binding::for_table(&table);
                for (i, v) in values.iter().enumerate() {
                    let mut next = binding.clone();
                    next.bind(i as u32, *v);
                    binding = next;
                }
                black_box(binding)
            })
        });
        // The seed representation, kept here as a measured baseline: a
        // `BTreeMap<Var, Value>` assignment cloned at every extension step.
        group.bench_with_input(BenchmarkId::new("extend_btreemap", vars), &vars, |b, _| {
            b.iter(|| {
                let mut assignment: std::collections::BTreeMap<String, Value> =
                    std::collections::BTreeMap::new();
                for (name, v) in names.iter().zip(values.iter()) {
                    let mut next = assignment.clone();
                    next.insert(name.clone(), *v);
                    assignment = next;
                }
                black_box(assignment)
            })
        });
    }
    group.finish();
}

/// Deduplicating answer streams through the shared insertion-ordered set.
fn bench_tuple_set(c: &mut Criterion) {
    let mut group = c.benchmark_group("joins/tuple_set");
    group.sample_size(20);
    for n in [1_000usize, 10_000] {
        let tuples: Vec<Tuple> = (0..n).map(|i| tuple![i % (n / 2), "NYC", i]).collect();
        group.bench_with_input(BenchmarkId::new("insert_dedup", n), &tuples, |b, tuples| {
            b.iter(|| {
                let mut set = TupleSet::with_capacity(tuples.len());
                for t in tuples {
                    set.insert(t.clone());
                }
                black_box(set.len())
            })
        });
    }
    group.finish();
}

/// End-to-end hash-join throughput of the CQ evaluator on the social schema.
fn bench_hash_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("joins/hash_join");
    group.sample_size(10);
    let q_join = parse_cq(r#"Q(p, name) :- friend(p, id), person(id, name, "NYC")"#).unwrap();
    for persons in [1_000usize, 4_000] {
        let db = SocialGenerator::new(SocialConfig {
            persons,
            restaurants: (persons / 20).max(10),
            ..SocialConfig::default()
        })
        .generate();
        group.bench_with_input(BenchmarkId::new("q1_unbound", persons), &db, |b, db| {
            b.iter(|| evaluate_cq(&q_join, db, None).unwrap().len())
        });
        group.bench_with_input(BenchmarkId::new("q1_bound", persons), &db, |b, db| {
            let bound = q1().bind(&[("p".into(), Value::int(7))]);
            b.iter(|| evaluate_cq(&bound, db, None).unwrap().len())
        });
    }
    group.finish();
}

/// Index probes on interned keys: the retrieval primitive under every fetch.
fn bench_index_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("joins/index_probe");
    group.sample_size(20);
    let db = SocialGenerator::new(SocialConfig {
        persons: 10_000,
        restaurants: 500,
        ..SocialConfig::default()
    })
    .generate();
    let mut friend = db.relation("friend").unwrap().clone();
    friend.ensure_index(&["id1".into()]).unwrap();
    group.bench_function("select_eq_indexed", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for p in 0..64i64 {
                let (rows, _) = friend.select_eq(&["id1".into()], &[Value::int(p)]).unwrap();
                total += rows.len();
            }
            black_box(total)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_binding_extension,
    bench_tuple_set,
    bench_hash_join,
    bench_index_probe
);
criterion_main!(benches);
