//! E1 (Table 1): cost of the exact QDSI decision procedures by language.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use si_bench::social_database;
use si_core::{decide_qdsi, AnyQuery, SearchLimits};
use si_data::Value;
use si_query::parse_fo_query;
use si_workload::q1;

fn bench_qdsi(c: &mut Criterion) {
    let limits = SearchLimits::default();
    let mut group = c.benchmark_group("qdsi");
    group.sample_size(10);
    for persons in [6usize, 10, 14] {
        let db = social_database(persons);
        let cq: AnyQuery = q1().bind(&[("p".into(), Value::int(0))]).into();
        group.bench_with_input(
            BenchmarkId::new("cq_data_selecting", persons),
            &db,
            |b, db| b.iter(|| decide_qdsi(&cq, db, 4, &limits).unwrap()),
        );
        let boolean: AnyQuery = si_query::ConjunctiveQuery {
            name: "B".into(),
            head: vec![],
            atoms: q1().atoms.clone(),
            equalities: vec![],
        }
        .into();
        group.bench_with_input(
            BenchmarkId::new("cq_boolean_fast_path", persons),
            &db,
            |b, db| b.iter(|| decide_qdsi(&boolean, db, 2, &limits).unwrap()),
        );
    }
    // FO subset enumeration only on a very small instance.
    let db = social_database(5);
    let fo: AnyQuery = parse_fo_query(
        r#"NoFriends() := exists x, n, c. person(x, n, c) & ! (exists y. friend(x, y))"#,
    )
    .unwrap()
    .into();
    group.bench_function("fo_boolean_subsets", |b| {
        b.iter(|| decide_qdsi(&fo, &db, 1, &limits).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_qdsi);
criterion_main!(benches);
