//! Tracing overhead: the serving workload with tracing off, sampled
//! (1-in-64), and on for every request, measured as tuples fetched per
//! microsecond of wall clock.
//!
//! This pins the observability plane's cost contract: with sampling off the
//! serve path pays one relaxed load plus a handful of relaxed atomic adds
//! (serve histogram + in-flight gauge) — no allocation — so its throughput
//! must stay within the **5% tuples/ns regression budget** of the sampled
//! arm, and the production-recommended 1-in-64 sampling must stay within
//! the same budget of fully-off.  The full-tracing arm (every request
//! builds and publishes a `RequestTrace`) is reported for scale but not
//! asserted: its cost is proportional to traffic by design, which is why
//! tracing is a sampling knob in the first place.
//!
//! All three arms run on **one** engine, retuned between rounds with
//! `Engine::set_trace_sampling` — separate engine instances differ by
//! several percent from heap-layout luck alone, which would drown a 5%
//! budget.  Rounds are interleaved in rotated order (each round index runs
//! every arm under the same machine conditions, and no arm systematically
//! leads) and each arm reports its **median** round — robust against both
//! throttled rounds and lucky spikes, either of which a best-of or a mean
//! would let a single outlier decide.

use si_engine::{Engine, EngineConfig, Request};
use si_workload::{serving_access_schema, social_requests, SocialConfig, SocialGenerator};
use std::time::Instant;

const PERSONS: usize = 2_000;
const REQUESTS: usize = 3_000;
const ROUNDS: usize = 11;
/// Drains of the whole request list per timed round: long rounds average out
/// scheduler noise that would swamp a 5% budget over a ~100 ms sample.
const DRAINS_PER_ROUND: usize = 4;
const ARMS: [(&str, u64); 3] = [("off", 0), ("1-in-64", 64), ("every", 1)];

fn make_engine() -> Engine {
    let db = SocialGenerator::new(SocialConfig {
        persons: PERSONS,
        restaurants: 200,
        ..SocialConfig::default()
    })
    .generate();
    Engine::new(
        db,
        serving_access_schema(5000),
        EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        },
    )
    .expect("engine construction")
}

/// Cumulative on-CPU nanoseconds of the calling thread (Linux scheduler
/// accounting; 0 when unavailable).  Serving here is entirely on the
/// caller's thread, so on-CPU time measures the code's own cost and is
/// immune to the preemption bursts of a shared machine that would swamp a
/// 5% wall-clock budget.
fn on_cpu_nanos() -> u64 {
    std::fs::read_to_string("/proc/thread-self/schedstat")
        .ok()
        .and_then(|s| s.split_whitespace().next()?.parse().ok())
        .unwrap_or(0)
}

/// One timed drain of the request list on the caller's thread, returning
/// tuples fetched per microsecond (of on-CPU time where the kernel reports
/// it, wall clock otherwise).
fn round(engine: &Engine, requests: &[Request]) -> f64 {
    let before = engine.metrics().accesses.tuples_fetched;
    let cpu_before = on_cpu_nanos();
    let start = Instant::now();
    for _ in 0..DRAINS_PER_ROUND {
        for request in requests {
            engine.execute(request).expect("serve");
        }
    }
    let cpu = on_cpu_nanos().saturating_sub(cpu_before);
    let elapsed_us = if cpu > 0 {
        cpu as f64 / 1e3
    } else {
        start.elapsed().as_secs_f64() * 1e6
    };
    (engine.metrics().accesses.tuples_fetched - before) as f64 / elapsed_us
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let requests: Vec<Request> = social_requests(PERSONS, REQUESTS, 42)
        .into_iter()
        .map(|g| Request::new(g.query, g.parameters, g.values))
        .collect();
    let engine = make_engine();

    // Warm the plan cache and lazy indexes outside the timed rounds.
    for request in requests.iter().take(200) {
        engine.execute(request).expect("warmup");
    }

    let mut samples: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for r in 0..ROUNDS {
        // Rotate which arm goes first each round: thermal/boost decay over a
        // round-triple otherwise systematically favours whichever arm leads.
        for offset in 0..ARMS.len() {
            let i = (r + offset) % ARMS.len();
            engine.set_trace_sampling(ARMS[i].1);
            samples[i].push(round(&engine, &requests));
        }
    }
    engine.set_trace_sampling(0);
    // The asserted quantity is the *paired* per-round ratio, not a ratio of
    // medians: machine speed drifts over the run (builds finishing, boost
    // decay), but within one round-triple — a ~1 s window — both arms see
    // the same conditions, so the ratio isolates the code's own cost.
    let ratio = median(
        samples[0]
            .iter()
            .zip(&samples[1])
            .map(|(off, sampled)| sampled / off)
            .collect(),
    );
    let medians: Vec<f64> = samples.into_iter().map(median).collect();
    let t_off = medians[0];

    println!(
        "tracing overhead on the serving workload ({} requests x {ROUNDS} interleaved \
         rounds on one engine, median round per arm; 80% Q1 / 20% Q2 over {PERSONS} persons)\n",
        REQUESTS * DRAINS_PER_ROUND
    );
    println!("{:>9}  {:>11}  {:>7}", "tracing", "tuples/us", "vs off");
    for (i, (arm, _)) in ARMS.iter().enumerate() {
        println!(
            "{:>9}  {:>11.1}  {:>+6.1}%",
            arm,
            medians[i],
            (medians[i] / t_off - 1.0) * 100.0
        );
    }

    // The traced rounds really traced (and the scrape page shows it all).
    let metrics = engine.metrics();
    assert!(metrics.traces_emitted >= (REQUESTS * ROUNDS) as u64);
    let page = engine.telemetry().render();
    assert!(page.contains("si_serve_latency_ns"));
    assert!(page.contains("si_traces_emitted_total"));

    // The budget: near-zero-cost tracing-off and cheap 1-in-64 sampling.
    // Both directions, because "off is not slower than sampled" alone would
    // also pass if the sampler accidentally did work when disabled.
    assert!(
        ratio >= 0.95,
        "1-in-64 sampling lost more than the 5% tuples/ns budget vs off \
         (median paired ratio {ratio:.3})"
    );
    assert!(
        ratio <= 1.0 / 0.95,
        "tracing-off lost more than the 5% tuples/ns budget vs sampled \
         (median paired ratio {ratio:.3})"
    );
    println!(
        "\nbudget: off and 1-in-64 sampling within 5% of each other \
         (median paired ratio {:+.1}%); full tracing reported above for scale",
        (ratio - 1.0) * 100.0
    );
}
