//! Offline drop-in replacement for the subset of the `criterion` API used by
//! this workspace's benches.
//!
//! The container this repository builds in has no network access and no
//! vendored registry, so the real `criterion` crate cannot be compiled.  This
//! shim keeps the bench sources unchanged (`criterion_group!`,
//! `criterion_main!`, `Criterion::benchmark_group`, `bench_with_input`,
//! `Bencher::iter`, …) and implements a small but honest measurement loop:
//! each benchmark is warmed up, then timed over enough iterations to fill a
//! fixed measurement window, and the mean wall-clock time per iteration is
//! printed in a `name ... time: X` line that downstream tooling can grep.

pub use std::hint::black_box;

use std::fmt;
use std::time::{Duration, Instant};

/// Minimum wall-clock time spent measuring one benchmark (after warm-up).
const MEASURE_WINDOW: Duration = Duration::from_millis(300);
/// Warm-up budget before measurement starts.
const WARMUP_WINDOW: Duration = Duration::from_millis(100);

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Creates a driver with default settings.
    pub fn new() -> Self {
        Criterion::default()
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            name,
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), f);
        self
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes its sample by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput lines are not printed.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Benchmarks a closure with no external input.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Ends the group (no-op beyond a trailing newline).
    pub fn finish(self) {
        eprintln!();
    }
}

/// Identifies a benchmark by function name and parameter, like criterion's.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// Creates an id carrying only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Throughput hints, accepted for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Runs the closure handed to `b.iter(..)` and records timing.
#[derive(Debug, Default)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, first warming up, then measuring until the window is
    /// filled.  The routine's return value is passed through `black_box` so
    /// the optimiser cannot delete the work.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also estimates the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP_WINDOW {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));
        // Batch size aiming at ~10 batches per window, at least 1.
        let batch = (MEASURE_WINDOW.as_nanos() / 10 / per_iter.max(1)).clamp(1, 1 << 24) as u64;

        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        while total < MEASURE_WINDOW {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += start.elapsed();
            iters += batch;
        }
        self.total = total;
        self.iters = iters;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    if bencher.iters == 0 {
        eprintln!("{label:<48} time: (no iterations recorded)");
        return;
    }
    let ns = bencher.total.as_nanos() as f64 / bencher.iters as f64;
    eprintln!(
        "{label:<48} time: {}   ({} iters)",
        format_ns(ns),
        bencher.iters
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} µs/iter", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:8.2} ms/iter", ns / 1_000_000.0)
    } else {
        format!("{:8.3}  s/iter", ns / 1_000_000_000.0)
    }
}

/// Declares a named group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::new();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut b = Bencher::default();
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            count
        });
        assert!(b.iters > 0);
        assert!(b.total >= MEASURE_WINDOW);
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(
            BenchmarkId::new("bounded", 1000).to_string(),
            "bounded/1000"
        );
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn format_ns_scales_units() {
        assert!(format_ns(12.0).contains("ns"));
        assert!(format_ns(12_000.0).contains("µs"));
        assert!(format_ns(12_000_000.0).contains("ms"));
    }
}
