//! Scaling series for the "cost stays flat as |D| grows" experiments.

use crate::social::{SocialConfig, SocialGenerator};
use si_data::Database;

/// One point of a scaling series: a person count and the generated instance.
#[derive(Debug)]
pub struct ScalePoint {
    /// Number of persons at this point.
    pub persons: usize,
    /// Total size `|D|` of the generated instance.
    pub database_size: usize,
    /// The instance itself.
    pub database: Database,
}

/// Generates a geometric series of instances: `base, base·factor, …` with
/// `steps` points, all sharing the default generator knobs (and seed, so the
/// smaller instances are *not* prefixes of the larger ones but are drawn from
/// the same distribution).
pub fn geometric_sizes(base: usize, factor: usize, steps: usize) -> Vec<ScalePoint> {
    let mut out = Vec::with_capacity(steps);
    let mut persons = base;
    for _ in 0..steps {
        let config = SocialConfig::with_persons(persons);
        let database = SocialGenerator::new(config).generate();
        out.push(ScalePoint {
            persons,
            database_size: database.size(),
            database,
        });
        persons = persons.saturating_mul(factor);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_series_grows() {
        let series = geometric_sizes(20, 4, 3);
        assert_eq!(series.len(), 3);
        assert_eq!(series[0].persons, 20);
        assert_eq!(series[1].persons, 80);
        assert_eq!(series[2].persons, 320);
        assert!(series[2].database_size > series[0].database_size);
        for p in &series {
            assert_eq!(p.database.size(), p.database_size);
        }
    }

    #[test]
    fn single_step_series() {
        let series = geometric_sizes(10, 2, 1);
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].persons, 10);
    }
}
