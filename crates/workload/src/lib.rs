//! # `si-workload` — synthetic workloads for the scale-independence experiments
//!
//! The paper motivates scale independence with Facebook Graph-Search-style
//! queries over a social schema (`person`, `friend`, `restr`, `visit`).  Real
//! social-graph data is proprietary, so this crate generates synthetic
//! instances that preserve exactly the properties the theory depends on:
//! the schema, the key constraints, and the per-key fanout caps (e.g. the
//! 5000-friends-per-person limit).  It also packages the paper's queries,
//! their access schemas, scaling series and update streams so that the
//! benchmark harness and the examples share one source of truth.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod concurrent;
pub mod queries;
pub mod rng;
pub mod scaling;
pub mod social;
pub mod updates;

pub use concurrent::{
    burst_requests, serving_access_schema, small_commit_storm, social_partition_map,
    social_requests, subscriber_churn_scenario, update_heavy_scenario, ChurnOp, GeneratedRequest,
    ScenarioOp,
};
pub use queries::{example_46_access_schema, paper_views, q1, q2, q2_rewriting, q3};
pub use scaling::{geometric_sizes, ScalePoint};
pub use social::{SocialConfig, SocialGenerator};
pub use updates::{visit_insertions, visit_update_stream};
