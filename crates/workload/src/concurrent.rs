//! Concurrent serving workload: deterministic, skewed request streams and
//! the writer's update batches.
//!
//! The throughput experiments of `si-engine` need traffic that looks like a
//! social search box: many readers asking the paper's parameterised queries
//! with a *skewed* choice of person (hot profiles are asked about far more
//! often than cold ones), while a writer keeps inserting fresh `visit`
//! facts.  Everything here is seed-deterministic, so a bench run and its
//! single-threaded cross-check see byte-identical request streams.

use crate::queries::{q1, q2};
use crate::rng::SplitMix64;
use crate::updates::visit_update_stream;
use si_access::{facebook_access_schema, AccessConstraint, AccessSchema};
use si_data::{Database, Delta, PartitionMap, Value};
use si_query::{ConjunctiveQuery, Var};

/// One generated request: a query template, its parameter variables and this
/// invocation's values — the exact shape `si_engine::Request` is built from
/// (this crate cannot name that type without a dependency cycle).
#[derive(Debug, Clone)]
pub struct GeneratedRequest {
    /// The query template (alternates over the paper's Q1/Q2).
    pub query: ConjunctiveQuery,
    /// Parameter variables (always `["p"]` for the social templates).
    pub parameters: Vec<Var>,
    /// The parameter values for this invocation.
    pub values: Vec<Value>,
}

/// The access schema the serving experiments run under: the Facebook
/// constraints plus a `visit(id → rid)` bound, which is what makes Q2
/// boundedly plannable with only `p` as parameter (the exec tests of
/// `si-core` use the same augmentation).
pub fn serving_access_schema(friend_cap: usize) -> AccessSchema {
    facebook_access_schema(friend_cap).with(AccessConstraint::new("visit", &["id"], 1000, 1))
}

/// The canonical partition declaration of the social schema for sharded
/// serving: every relation partitions on the column its hot probes bind —
/// `person.id`, `friend.id1` and `visit.id` (Q1/Q2's per-person probes
/// route to one shard), `restr.rid` (Q2's restaurant completion routes
/// too).  Fan-out then only happens for probes that genuinely cannot pin a
/// shard, e.g. a visit fetch by `rid`.
pub fn social_partition_map() -> PartitionMap {
    PartitionMap::new()
        .with("person", "id")
        .with("friend", "id1")
        .with("visit", "id")
        .with("restr", "rid")
}

/// Draws a person id with quadratic skew towards 0: squaring a uniform
/// draw concentrates ~½ of the traffic on the lowest quarter of the id
/// space — hot ids 0, 1, 2 … soak up disproportionate load, which is what
/// stresses a plan cache (few shapes, many values) and a snapshot store
/// (readers pile onto the same relations).
fn skewed_person(rng: &mut SplitMix64, persons: usize) -> usize {
    let u = rng.next_u64() as f64 / u64::MAX as f64;
    let skewed = u * u;
    ((skewed * persons as f64) as usize).min(persons.saturating_sub(1))
}

/// Generates a deterministic stream of `count` requests over a social
/// instance with `persons` people: 80% Q1 (friends in NYC), 20% Q2
/// (A-rated NYC restaurants visited by NYC friends), person parameter drawn
/// with quadratic skew.
pub fn social_requests(persons: usize, count: usize, seed: u64) -> Vec<GeneratedRequest> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let q1 = q1();
    let q2 = q2();
    (0..count)
        .map(|_| {
            let p = skewed_person(&mut rng, persons) as i64;
            let query = if rng.gen_range(0..100u8) < 80 {
                q1.clone()
            } else {
                q2.clone()
            };
            GeneratedRequest {
                query,
                parameters: vec!["p".into()],
                values: vec![Value::int(p)],
            }
        })
        .collect()
}

/// Generates a deterministic **bursty** request stream: `bursts` waves of
/// `burst_size` *identical* requests each (same template, same person
/// parameter), person drawn with quadratic skew and template split 60/40
/// over Q1/Q2.
///
/// This is the traffic shape shared-fetch request batching is built for —
/// a hot profile page being hammered — where an engine that groups
/// identical (shape, values) pairs onto one fetch pays the fetch cost once
/// per wave instead of once per request.
pub fn burst_requests(
    persons: usize,
    bursts: usize,
    burst_size: usize,
    seed: u64,
) -> Vec<GeneratedRequest> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let q1 = q1();
    let q2 = q2();
    let mut requests = Vec::with_capacity(bursts * burst_size);
    for _ in 0..bursts {
        let p = skewed_person(&mut rng, persons) as i64;
        let query = if rng.gen_range(0..100u8) < 60 {
            q1.clone()
        } else {
            q2.clone()
        };
        for _ in 0..burst_size {
            requests.push(GeneratedRequest {
                query: query.clone(),
                parameters: vec!["p".into()],
                values: vec![Value::int(p)],
            });
        }
    }
    requests
}

/// Generates a deterministic storm of `commits` **single-tuple** `visit`
/// deltas that toggle a hot set of `hot_tuples` facts round-robin: each
/// commit inserts its fact if the previous toggle deleted it (or it never
/// existed) and deletes it otherwise.
///
/// Every delta is valid against the instance as evolved by its
/// predecessors, and — this is the point — the **net effect of the whole
/// storm is at most `hot_tuples` tuples**, however long it runs: a fact
/// deleted and reinserted (or inserted and re-deleted) cancels out.  A
/// group committer that folds the storm into one merged delta therefore
/// pays one maintenance pass over ≤ `hot_tuples` tuples where individual
/// commits pay `commits` passes over one tuple each.
///
/// The toggled facts use fresh restaurant ids (from 900 000 up, adjusted
/// past any collision with `db`), so the storm composes with any social
/// instance without disturbing its existing `visit` facts.
pub fn small_commit_storm(
    db: &Database,
    commits: usize,
    hot_tuples: usize,
    seed: u64,
) -> Vec<Delta> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let hot = hot_tuples.max(1);
    let visit = db
        .relation("visit")
        .expect("social instances declare `visit`");
    let mut facts = Vec::with_capacity(hot);
    let mut rid = 900_000i64;
    for _ in 0..hot {
        let person = rng.gen_range(0..64u8) as i64;
        let mut tuple = si_data::tuple![person, rid];
        while visit.contains(&tuple) {
            rid += 1;
            tuple = si_data::tuple![person, rid];
        }
        facts.push(tuple);
        rid += 1;
    }
    let mut present = vec![false; hot];
    (0..commits)
        .map(|i| {
            let k = i % hot;
            let mut delta = Delta::new();
            if present[k] {
                delta.delete("visit", facts[k].clone());
            } else {
                delta.insert("visit", facts[k].clone());
            }
            present[k] = !present[k];
            delta
        })
        .collect()
}

/// One step of an update-heavy serving schedule.
#[derive(Debug, Clone)]
pub enum ScenarioOp {
    /// Serve a query (repeatedly drawn from a small hot set, so answer
    /// caches are exercised).
    Query(GeneratedRequest),
    /// Commit an update batch (well formed against the instance as evolved
    /// by every earlier `Commit` of the schedule).
    Commit(Delta),
}

/// Generates an update-heavy schedule over `db`: `ops` steps of which
/// roughly `commit_percent`% are `visit` insert/delete batches
/// (`batch_inserts`/`batch_deletes` tuples each, valid against the evolving
/// instance) and the rest are Q1/Q2 requests whose person parameter is
/// drawn from the `hot_persons` lowest ids — the repeated-hot-query,
/// frequent-small-commit traffic that an incrementally maintained answer
/// cache is built for.  Deterministic per seed.
pub fn update_heavy_scenario(
    db: &Database,
    ops: usize,
    commit_percent: u8,
    hot_persons: usize,
    batch_inserts: usize,
    batch_deletes: usize,
    seed: u64,
) -> Vec<ScenarioOp> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    // Draw the commit batches up front (they form one evolving-state-valid
    // stream, and any prefix of it is valid), then deal them into the
    // schedule.  Sized to the expected commit count plus slack for the
    // binomial tail; if the draw runs past the slack, the remaining commit
    // slots simply become queries.
    let planned = ops * (commit_percent.min(100) as usize) / 100 + ops / 8 + 4;
    let mut commits =
        visit_update_stream(db, planned, batch_inserts, batch_deletes, seed ^ 0x5eed).into_iter();
    let q1 = q1();
    let q2 = q2();
    (0..ops)
        .map(|_| {
            if rng.gen_range(0..100u8) < commit_percent {
                if let Some(delta) = commits.next() {
                    return ScenarioOp::Commit(delta);
                }
            }
            let p = rng.gen_range(0..hot_persons.max(1)) as i64;
            let query = if rng.gen_range(0..100u8) < 60 {
                q1.clone()
            } else {
                q2.clone()
            };
            ScenarioOp::Query(GeneratedRequest {
                query,
                parameters: vec!["p".into()],
                values: vec![Value::int(p)],
            })
        })
        .collect()
}

/// One step of a subscriber-churn schedule.
#[derive(Debug, Clone)]
pub enum ChurnOp {
    /// Open a subscription in `slot` (the slot is empty when this op runs).
    Subscribe {
        /// Which subscription slot to fill.
        slot: usize,
        /// What to subscribe to (a hot Q1/Q2 request shape).
        request: GeneratedRequest,
    },
    /// Drop the subscription held in `slot` (occupied when this op runs).
    Unsubscribe {
        /// Which subscription slot to vacate.
        slot: usize,
    },
    /// Commit an update batch (well formed against the instance as evolved
    /// by every earlier `Commit` of the schedule).
    Commit(Delta),
}

/// Generates a subscriber-churn schedule over `db`: `ops` steps of which
/// roughly `commit_percent`% are `visit` insert/delete batches and the rest
/// toggle one of `slots` subscription slots — an empty slot subscribes to a
/// hot Q1/Q2 shape (person drawn from the `hot_persons` lowest ids, so
/// slots repeatedly re-subscribe to shapes other slots watch too), an
/// occupied slot drops its subscription.  Registration and teardown thereby
/// interleave with commits, which is the traffic the reactive plane's
/// epoch-fenced registration and pin accounting must survive.
/// Deterministic per seed.
pub fn subscriber_churn_scenario(
    db: &Database,
    ops: usize,
    slots: usize,
    hot_persons: usize,
    commit_percent: u8,
    seed: u64,
) -> Vec<ChurnOp> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let planned = ops * (commit_percent.min(100) as usize) / 100 + ops / 8 + 4;
    let mut commits = visit_update_stream(db, planned, 2, 1, seed ^ 0xC4A1).into_iter();
    let q1 = q1();
    let q2 = q2();
    let slots = slots.max(1);
    let mut occupied = vec![false; slots];
    (0..ops)
        .map(|_| {
            if rng.gen_range(0..100u8) < commit_percent {
                if let Some(delta) = commits.next() {
                    return ChurnOp::Commit(delta);
                }
            }
            let slot = rng.gen_range(0..slots);
            if occupied[slot] {
                occupied[slot] = false;
                ChurnOp::Unsubscribe { slot }
            } else {
                occupied[slot] = true;
                let p = rng.gen_range(0..hot_persons.max(1)) as i64;
                let query = if rng.gen_range(0..100u8) < 60 {
                    q1.clone()
                } else {
                    q2.clone()
                };
                ChurnOp::Subscribe {
                    slot,
                    request: GeneratedRequest {
                        query,
                        parameters: vec!["p".into()],
                        values: vec![Value::int(p)],
                    },
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::social::{SocialConfig, SocialGenerator};
    use si_access::conforms;
    use si_data::schema::social_schema;

    #[test]
    fn streams_are_deterministic_and_well_formed() {
        let a = social_requests(1000, 64, 7);
        let b = social_requests(1000, 64, 7);
        let c = social_requests(1000, 64, 8);
        assert_eq!(a.len(), 64);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.values, y.values);
            assert_eq!(x.query.name, y.query.name);
        }
        assert!(a.iter().zip(&c).any(|(x, y)| x.values != y.values));
        let schema = social_schema();
        for r in &a {
            r.query.validate(&schema).unwrap();
            assert_eq!(r.parameters, vec!["p".to_string()]);
            assert_eq!(r.values.len(), 1);
        }
        // Both templates appear.
        assert!(a.iter().any(|r| r.query.name == "Q1"));
        assert!(a.iter().any(|r| r.query.name == "Q2"));
    }

    #[test]
    fn person_draws_are_skewed_towards_low_ids() {
        let reqs = social_requests(1000, 2000, 42);
        let low = reqs
            .iter()
            .filter(|r| matches!(r.values[0], Value::Int(p) if p < 250))
            .count();
        // A uniform draw would put ~25% below 250; the quadratic skew puts
        // half there.
        assert!(low as f64 / reqs.len() as f64 > 0.4, "low share {low}");
    }

    #[test]
    fn update_heavy_schedules_are_valid_against_the_evolving_instance() {
        let db = SocialGenerator::new(SocialConfig {
            persons: 100,
            restaurants: 20,
            ..SocialConfig::default()
        })
        .generate();
        let a = update_heavy_scenario(&db, 80, 30, 8, 3, 2, 11);
        let b = update_heavy_scenario(&db, 80, 30, 8, 3, 2, 11);
        assert_eq!(a.len(), 80);
        // Deterministic per seed.
        for (x, y) in a.iter().zip(&b) {
            match (x, y) {
                (ScenarioOp::Commit(dx), ScenarioOp::Commit(dy)) => assert_eq!(dx, dy),
                (ScenarioOp::Query(qx), ScenarioOp::Query(qy)) => {
                    assert_eq!(qx.values, qy.values);
                    assert_eq!(qx.query.name, qy.query.name);
                }
                _ => panic!("schedules diverged in op kind"),
            }
        }
        // Both op kinds appear, commits interleave with queries, every
        // commit validates against the instance evolved so far, and hot
        // queries repeat.
        let mut evolving = db.clone();
        let mut commits = 0;
        let mut queries = 0;
        let mut seen_values: Vec<Value> = Vec::new();
        for op in &a {
            match op {
                ScenarioOp::Commit(delta) => {
                    delta.apply_in_place(&mut evolving).unwrap();
                    commits += 1;
                    assert!(!delta.is_insertion_only() || delta.size() > 0);
                }
                ScenarioOp::Query(g) => {
                    queries += 1;
                    seen_values.push(g.values[0]);
                }
            }
        }
        assert!(commits >= 10, "only {commits} commits");
        assert!(queries >= 30, "only {queries} queries");
        let distinct: std::collections::BTreeSet<_> =
            seen_values.iter().map(|v| format!("{v:?}")).collect();
        assert!(
            distinct.len() < queries,
            "hot persons must repeat across queries"
        );
    }

    #[test]
    fn burst_requests_repeat_identical_requests_within_each_wave() {
        let a = burst_requests(1000, 6, 8, 21);
        let b = burst_requests(1000, 6, 8, 21);
        assert_eq!(a.len(), 48);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.values, y.values);
            assert_eq!(x.query.name, y.query.name);
        }
        let schema = social_schema();
        for wave in a.chunks(8) {
            for r in wave {
                r.query.validate(&schema).unwrap();
                // Every request in a wave is identical to the wave's first.
                assert_eq!(r.values, wave[0].values);
                assert_eq!(r.query.name, wave[0].query.name);
            }
        }
        // Across enough waves both templates appear.
        let many = burst_requests(1000, 40, 2, 21);
        assert!(many.iter().any(|r| r.query.name == "Q1"));
        assert!(many.iter().any(|r| r.query.name == "Q2"));
    }

    #[test]
    fn small_commit_storms_are_valid_and_cancel_down_to_the_hot_set() {
        let db = SocialGenerator::new(SocialConfig {
            persons: 100,
            restaurants: 20,
            ..SocialConfig::default()
        })
        .generate();
        let storm = small_commit_storm(&db, 64, 4, 9);
        assert_eq!(storm.len(), 64);
        assert_eq!(storm, small_commit_storm(&db, 64, 4, 9));
        // Every delta is one tuple and valid against the evolving instance.
        let mut evolving = db.clone();
        for delta in &storm {
            assert_eq!(delta.size(), 1);
            delta.apply_in_place(&mut evolving).unwrap();
        }
        // The merged net effect collapses: 64 toggles of 4 hot facts (16
        // each, an even count) cancel to nothing — and sequential
        // application agrees.
        let merged = Delta::merge(&db, &storm).unwrap();
        assert!(merged.is_empty(), "merged storm must cancel, got {merged}");
        assert_eq!(evolving.size(), db.size());
        assert!(evolving.contains_database(&db));
        // An odd storm leaves at most the hot set.
        let odd = small_commit_storm(&db, 63, 4, 9);
        let merged = Delta::merge(&db, &odd).unwrap();
        assert!(merged.size() <= 4, "net effect {} > hot set", merged.size());
        assert!(!merged.is_empty());
    }

    #[test]
    fn churn_schedules_balance_subscribes_drops_and_commits() {
        let db = SocialGenerator::new(SocialConfig {
            persons: 100,
            restaurants: 20,
            ..SocialConfig::default()
        })
        .generate();
        let a = subscriber_churn_scenario(&db, 120, 6, 8, 30, 13);
        let b = subscriber_churn_scenario(&db, 120, 6, 8, 30, 13);
        assert_eq!(a.len(), 120);
        // Deterministic per seed.
        for (x, y) in a.iter().zip(&b) {
            match (x, y) {
                (ChurnOp::Commit(dx), ChurnOp::Commit(dy)) => assert_eq!(dx, dy),
                (
                    ChurnOp::Subscribe {
                        slot: sx,
                        request: rx,
                    },
                    ChurnOp::Subscribe {
                        slot: sy,
                        request: ry,
                    },
                ) => {
                    assert_eq!(sx, sy);
                    assert_eq!(rx.values, ry.values);
                    assert_eq!(rx.query.name, ry.query.name);
                }
                (ChurnOp::Unsubscribe { slot: sx }, ChurnOp::Unsubscribe { slot: sy }) => {
                    assert_eq!(sx, sy)
                }
                _ => panic!("schedules diverged in op kind"),
            }
        }
        // The schedule is consistent with its slot model (subscribe only
        // into empty slots, drop only occupied ones), commits are valid
        // against the evolving instance, and all three op kinds occur.
        let schema = social_schema();
        let mut evolving = db.clone();
        let mut occupied = [false; 6];
        let (mut subs, mut drops, mut commits) = (0, 0, 0);
        for op in &a {
            match op {
                ChurnOp::Subscribe { slot, request } => {
                    assert!(!occupied[*slot], "subscribed into an occupied slot");
                    occupied[*slot] = true;
                    request.query.validate(&schema).unwrap();
                    subs += 1;
                }
                ChurnOp::Unsubscribe { slot } => {
                    assert!(occupied[*slot], "dropped an empty slot");
                    occupied[*slot] = false;
                    drops += 1;
                }
                ChurnOp::Commit(delta) => {
                    delta.apply_in_place(&mut evolving).unwrap();
                    commits += 1;
                }
            }
        }
        assert!(subs >= 20, "only {subs} subscribes");
        assert!(drops >= 15, "only {drops} drops");
        assert!(commits >= 20, "only {commits} commits");
    }

    #[test]
    fn social_partition_map_resolves_and_balances_generated_instances() {
        let db = SocialGenerator::new(SocialConfig {
            persons: 400,
            restaurants: 40,
            ..SocialConfig::default()
        })
        .generate();
        let positions = social_partition_map().resolve(db.schema()).unwrap();
        assert_eq!(positions.len(), 4);
        assert_eq!(positions["friend"], 0);
        // Hash-partitioning a generated instance is roughly balanced: no
        // shard holds more than twice its fair share.
        let store =
            si_data::ShardedSnapshotStore::new(db.clone(), social_partition_map(), 4).unwrap();
        let fair = db.size() / 4;
        for stats in store.shard_stats() {
            assert!(
                stats.rows < 2 * fair,
                "shard {} holds {} of {} tuples",
                stats.shard,
                stats.rows,
                db.size()
            );
            assert!(stats.rows > fair / 2, "shard {} starved", stats.shard);
        }
    }

    #[test]
    fn serving_schema_admits_generated_instances_and_plans_q2() {
        let db = SocialGenerator::new(SocialConfig {
            persons: 200,
            restaurants: 30,
            ..SocialConfig::default()
        })
        .generate();
        let access = serving_access_schema(5000);
        assert!(conforms(&db, &access));
        let schema = social_schema();
        let planner = si_core::BoundedPlanner::new(&schema, &access);
        assert!(planner.is_plannable(&q2(), &["p".into()]));
    }
}
