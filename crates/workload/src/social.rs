//! Synthetic social-graph generator.
//!
//! Generates instances of the paper's social schema with the invariants the
//! access schemas promise:
//!
//! * `person(id, name, city)` — `id` is a key;
//! * `friend(id1, id2)` — at most `friend_cap` friends per person;
//! * `restr(rid, name, city, rating)` — `rid` is a key;
//! * `visit(id, rid)` or `visit(id, rid, yy, mm, dd)` (dated variant) — at
//!   most one restaurant per person per day in the dated variant (the FD of
//!   Example 4.6).

use crate::rng::SplitMix64;
use si_data::schema::{social_schema, social_schema_dated};
use si_data::{Database, Tuple, Value};

/// Configuration of the generator.
#[derive(Debug, Clone, PartialEq)]
pub struct SocialConfig {
    /// Number of persons.
    pub persons: usize,
    /// Maximum number of friends per person (the Facebook cap).
    pub friend_cap: usize,
    /// Average number of friends per person (≤ `friend_cap`).
    pub avg_friends: usize,
    /// Number of restaurants.
    pub restaurants: usize,
    /// Average number of visits per person.
    pub avg_visits: usize,
    /// Fraction (0..=100) of persons living in NYC.
    pub nyc_percent: u8,
    /// Fraction (0..=100) of restaurants located in NYC.
    pub nyc_restaurant_percent: u8,
    /// Fraction (0..=100) of restaurants rated "A".
    pub a_rating_percent: u8,
    /// Whether `visit` carries a date (`yy, mm, dd`).
    pub dated_visits: bool,
    /// RNG seed (generation is fully deterministic given the config).
    pub seed: u64,
}

impl Default for SocialConfig {
    fn default() -> Self {
        SocialConfig {
            persons: 1_000,
            friend_cap: 5_000,
            avg_friends: 20,
            restaurants: 200,
            avg_visits: 5,
            nyc_percent: 40,
            nyc_restaurant_percent: 50,
            a_rating_percent: 30,
            dated_visits: false,
            seed: 42,
        }
    }
}

impl SocialConfig {
    /// A configuration scaled to roughly `persons` people, keeping the other
    /// knobs at their defaults.
    pub fn with_persons(persons: usize) -> Self {
        SocialConfig {
            persons,
            ..SocialConfig::default()
        }
    }
}

/// Deterministic generator for social-graph instances.
#[derive(Debug, Clone)]
pub struct SocialGenerator {
    config: SocialConfig,
}

impl SocialGenerator {
    /// Creates a generator for the given configuration.
    pub fn new(config: SocialConfig) -> Self {
        SocialGenerator { config }
    }

    /// The configuration.
    pub fn config(&self) -> &SocialConfig {
        &self.config
    }

    /// Generates a database instance.
    pub fn generate(&self) -> Database {
        let c = &self.config;
        let mut rng = SplitMix64::seed_from_u64(c.seed);
        let schema = if c.dated_visits {
            social_schema_dated()
        } else {
            social_schema()
        };
        let mut db = Database::empty(schema);

        let cities = ["NYC", "LA", "SF", "CHI", "BOS"];
        for id in 0..c.persons {
            let city = if rng.gen_range(0..100u8) < c.nyc_percent {
                "NYC"
            } else {
                cities[1 + rng.gen_range(0..cities.len() - 1)]
            };
            let t: Tuple = vec![
                Value::from(id),
                Value::str(format!("person-{id}")),
                Value::str(city),
            ]
            .into();
            db.insert("person", t).expect("person arity");
        }

        for rid in 0..c.restaurants {
            let city = if rng.gen_range(0..100u8) < c.nyc_restaurant_percent {
                "NYC"
            } else {
                cities[1 + rng.gen_range(0..cities.len() - 1)]
            };
            let rating = if rng.gen_range(0..100u8) < c.a_rating_percent {
                "A"
            } else {
                "B"
            };
            let t: Tuple = vec![
                Value::from(1_000_000 + rid),
                Value::str(format!("restaurant-{rid}")),
                Value::str(city),
                Value::str(rating),
            ]
            .into();
            db.insert("restr", t).expect("restr arity");
        }

        if c.persons > 1 {
            for id in 0..c.persons {
                let n_friends = rng.gen_range(0..=(2 * c.avg_friends)).min(c.friend_cap);
                for _ in 0..n_friends {
                    let other = rng.gen_range(0..c.persons);
                    if other == id {
                        continue;
                    }
                    let t: Tuple = vec![Value::from(id), Value::from(other)].into();
                    db.insert("friend", t).expect("friend arity");
                }
            }
        }

        if c.restaurants > 0 {
            for id in 0..c.persons {
                let n_visits = rng.gen_range(0..=(2 * c.avg_visits));
                for v in 0..n_visits {
                    let rid = 1_000_000 + rng.gen_range(0..c.restaurants);
                    let t: Tuple = if c.dated_visits {
                        // One visit per day per person keeps the Example 4.6
                        // FD (id, yy, mm, dd → rid) satisfied by construction.
                        let yy = 2013 + (v % 3) as i64;
                        let mm = 1 + (v % 12) as i64;
                        let dd = 1 + ((id + v) % 28) as i64;
                        vec![
                            Value::from(id),
                            Value::from(rid),
                            Value::Int(yy),
                            Value::Int(mm),
                            Value::Int(dd),
                        ]
                        .into()
                    } else {
                        vec![Value::from(id), Value::from(rid)].into()
                    };
                    db.insert("visit", t).expect("visit arity");
                }
            }
        }

        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_access::{conforms, facebook_access_schema};

    #[test]
    fn generation_is_deterministic() {
        let config = SocialConfig {
            persons: 50,
            restaurants: 10,
            ..SocialConfig::default()
        };
        let a = SocialGenerator::new(config.clone()).generate();
        let b = SocialGenerator::new(config).generate();
        assert_eq!(a.size(), b.size());
        assert_eq!(a.all_facts(), b.all_facts());
    }

    #[test]
    fn generated_instances_conform_to_the_access_schema() {
        let config = SocialConfig {
            persons: 200,
            avg_friends: 10,
            restaurants: 30,
            ..SocialConfig::default()
        };
        let db = SocialGenerator::new(config.clone()).generate();
        assert!(conforms(&db, &facebook_access_schema(config.friend_cap)));
        assert_eq!(db.relation("person").unwrap().len(), 200);
        assert_eq!(db.relation("restr").unwrap().len(), 30);
        assert!(!db.relation("friend").unwrap().is_empty());
        // Friend fanout respects the cap.
        assert!(
            db.relation("friend")
                .unwrap()
                .fanout_on(&["id1".into()])
                .unwrap()
                <= config.friend_cap
        );
    }

    #[test]
    fn dated_visits_satisfy_the_example_46_constraints() {
        let config = SocialConfig {
            persons: 100,
            restaurants: 20,
            dated_visits: true,
            ..SocialConfig::default()
        };
        let db = SocialGenerator::new(config).generate();
        assert_eq!(db.relation("visit").unwrap().schema().arity(), 5);
        let access = crate::queries::example_46_access_schema(5000);
        assert!(conforms(&db, &access));
    }

    #[test]
    fn size_scales_with_person_count() {
        let small = SocialGenerator::new(SocialConfig::with_persons(50)).generate();
        let large = SocialGenerator::new(SocialConfig::with_persons(500)).generate();
        assert!(large.size() > small.size() * 5);
    }

    #[test]
    fn degenerate_configurations_still_generate() {
        let db = SocialGenerator::new(SocialConfig {
            persons: 1,
            restaurants: 0,
            avg_friends: 0,
            avg_visits: 0,
            ..SocialConfig::default()
        })
        .generate();
        assert_eq!(db.relation("person").unwrap().len(), 1);
        assert_eq!(db.relation("friend").unwrap().len(), 0);
        assert_eq!(db.relation("visit").unwrap().len(), 0);
    }
}
