//! The paper's example queries, views and access schemas, packaged for reuse
//! by examples, integration tests and the benchmark harness.

use si_access::{facebook_access_schema, AccessSchema, EmbeddedConstraint};
use si_core::{ViewDef, ViewSet};
use si_query::{parse_cq, ConjunctiveQuery};

/// Q1 (Example 1.1(a)): friends of `p` who live in NYC.
pub fn q1() -> ConjunctiveQuery {
    parse_cq(r#"Q1(p, name) :- friend(p, id), person(id, name, "NYC")"#).expect("Q1 is well-formed")
}

/// Q2 (Example 1.1(b)): A-rated NYC restaurants visited by `p`'s NYC friends.
pub fn q2() -> ConjunctiveQuery {
    parse_cq(
        r#"Q2(p, rn) :- friend(p, id), visit(id, rid), person(id, pn, "NYC"), restr(rid, rn, "NYC", "A")"#,
    )
    .expect("Q2 is well-formed")
}

/// Q3 (Example 4.1): like Q2 but restricted to visits in a given year `yy`
/// over the dated `visit` relation.
pub fn q3() -> ConjunctiveQuery {
    parse_cq(
        r#"Q3(rn, p, yy) :- friend(p, id), visit(id, rid, yy, mm, dd), person(id, pn, "NYC"), restr(rid, rn, "NYC", "A")"#,
    )
    .expect("Q3 is well-formed")
}

/// The views of Example 1.1(c): `V1` = NYC restaurants, `V2` = visits by NYC
/// residents.
pub fn paper_views() -> ViewSet {
    ViewSet::new()
        .with(ViewDef::new(
            "v1",
            parse_cq(r#"V1(rid, rn, rating) :- restr(rid, rn, "NYC", rating)"#)
                .expect("V1 is well-formed"),
        ))
        .with(ViewDef::new(
            "v2",
            parse_cq(r#"V2(id, rid) :- visit(id, rid), person(id, pn, "NYC")"#)
                .expect("V2 is well-formed"),
        ))
}

/// The paper's rewriting Q'2 of Q2 using V1 and V2.
pub fn q2_rewriting() -> ConjunctiveQuery {
    parse_cq(r#"Q2p(p, rn) :- friend(p, id), v2(id, rid), v1(rid, rn, "A")"#)
        .expect("Q'2 is well-formed")
}

/// The enriched access schema of Example 4.6: the plain Facebook constraints
/// plus the 366-days-per-year embedded bound and the functional dependency
/// `id, yy, mm, dd → rid` ("each person dines out at most once a day").
pub fn example_46_access_schema(friend_cap: usize) -> AccessSchema {
    facebook_access_schema(friend_cap)
        .with_embedded(EmbeddedConstraint::new(
            "visit",
            &["yy"],
            &["mm", "dd"],
            366,
            3,
        ))
        .with_embedded(EmbeddedConstraint::functional_dependency(
            "visit",
            &["id", "yy", "mm", "dd"],
            &["rid"],
            1,
        ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_data::schema::{social_schema, social_schema_dated};

    #[test]
    fn paper_queries_validate_against_their_schemas() {
        q1().validate(&social_schema()).unwrap();
        q2().validate(&social_schema()).unwrap();
        q3().validate(&social_schema_dated()).unwrap();
        assert_eq!(q1().head, vec!["p".to_string(), "name".to_string()]);
        assert_eq!(q3().tableau_size(), 4);
    }

    #[test]
    fn rewriting_is_a_rewriting_of_q2() {
        let views = paper_views();
        assert!(si_core::is_rewriting(&q2(), &views, &q2_rewriting()).unwrap());
    }

    #[test]
    fn example_46_schema_has_the_two_embedded_constraints() {
        let access = example_46_access_schema(5000);
        assert_eq!(access.embedded().len(), 2);
        assert!(access.embedded().iter().any(|e| e.bound == 366));
        assert!(access.embedded().iter().any(|e| e.is_functional()));
        access.validate(&social_schema_dated()).unwrap();
    }
}
