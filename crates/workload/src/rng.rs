//! A tiny deterministic PRNG used by the generators.
//!
//! The build environment has no network access, so this crate cannot depend
//! on `rand`.  The generators only need reproducible, reasonably-distributed
//! draws, which SplitMix64 (Steele, Lea & Flood, OOPSLA 2014) provides in a
//! dozen lines.  The API mirrors the small slice of `rand` the generators
//! use: seeding from a `u64` and uniform draws from half-open / inclusive
//! ranges.

use std::ops::{Range, RangeInclusive};

/// A SplitMix64 generator: full 64-bit state, period 2^64, passes BigCrush
/// for the uses here (uniform small-range draws).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator; equal seeds give equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from a range, mirroring `rand::Rng::gen_range`.
    pub fn gen_range<T, R: UniformRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Uniform draw from `0..bound` (`bound = 0` yields 0).
    fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift bounded draw (Lemire); bias is < 2^-32 for the small
        // bounds used by the generators, and determinism is what matters.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Range types [`SplitMix64::gen_range`] can sample from.
pub trait UniformRange<T> {
    /// Draws a uniform value from `self`.
    fn sample(self, rng: &mut SplitMix64) -> T;
}

impl UniformRange<usize> for Range<usize> {
    fn sample(self, rng: &mut SplitMix64) -> usize {
        assert!(self.start < self.end, "empty range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl UniformRange<usize> for RangeInclusive<usize> {
    fn sample(self, rng: &mut SplitMix64) -> usize {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range");
        start + rng.below((end - start) as u64 + 1) as usize
    }
}

impl UniformRange<u8> for Range<u8> {
    fn sample(self, rng: &mut SplitMix64) -> u8 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.below(u64::from(self.end - self.start)) as u8
    }
}

impl UniformRange<i64> for Range<i64> {
    fn sample(self, rng: &mut SplitMix64) -> i64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.below((self.end - self.start) as u64) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SplitMix64::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(0usize..=5);
            assert!(y <= 5);
            let z = rng.gen_range(0..100u8);
            assert!(z < 100);
        }
    }

    #[test]
    fn draws_cover_the_range() {
        let mut rng = SplitMix64::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
