//! Update streams for the incremental experiments (Example 1.1(b)).

use crate::rng::SplitMix64;
use si_data::{Database, Delta, Tuple, Value};
use std::collections::BTreeSet;

/// Builds an insertion-only update of `count` fresh `visit(id, rid)` tuples,
/// with person ids drawn uniformly from the persons of `db` and restaurant
/// ids from its restaurants.  Tuples already present in `db` (or generated
/// twice) are skipped, so the update is always well formed.
pub fn visit_insertions(db: &Database, count: usize, seed: u64) -> Delta {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let persons = db.relation("person").map(|r| r.len()).unwrap_or(0).max(1);
    let restaurants = db.relation("restr").map(|r| r.len()).unwrap_or(0).max(1);
    let visit = db.relation("visit").ok();
    let mut tuples: Vec<Tuple> = Vec::with_capacity(count);
    let mut attempts = 0;
    while tuples.len() < count && attempts < count * 20 {
        attempts += 1;
        let id = rng.gen_range(0..persons);
        let rid = 1_000_000 + rng.gen_range(0..restaurants);
        let t: Tuple = vec![Value::from(id), Value::from(rid)].into();
        if visit.map(|v| v.contains(&t)).unwrap_or(false) || tuples.contains(&t) {
            continue;
        }
        tuples.push(t);
    }
    Delta::insertions_into("visit", tuples)
}

/// Builds a stream of `batches` mixed insert/delete `visit` batches that are
/// each well formed **against the evolving instance** (batch `i` is valid
/// after batches `0..i` have been applied) — the writer side of the
/// update-heavy serving scenario.
///
/// Every batch deletes up to `deletes_per_batch` tuples currently present
/// and inserts `inserts_per_batch` fresh ones; about half of the insertions
/// target *existing* restaurants (so they can change query answers), the
/// rest use fresh synthetic rids (pure growth).  Fully deterministic per
/// seed.
pub fn visit_update_stream(
    db: &Database,
    batches: usize,
    inserts_per_batch: usize,
    deletes_per_batch: usize,
    seed: u64,
) -> Vec<Delta> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let persons = db.relation("person").map(|r| r.len()).unwrap_or(0).max(1);
    let restaurant_ids: Vec<Value> = db
        .relation("restr")
        .map(|r| r.iter().filter_map(|t| t.get(0).copied()).collect())
        .unwrap_or_default();
    let mut current: Vec<Tuple> = db
        .relation("visit")
        .map(|r| r.iter().cloned().collect())
        .unwrap_or_default();
    let mut current_set: BTreeSet<Tuple> = current.iter().cloned().collect();
    let mut fresh_rid = 3_000_000usize; // disjoint from generated and `visit_insertions` rids

    let mut deltas = Vec::with_capacity(batches);
    for _ in 0..batches {
        let mut delta = Delta::new();
        let mut batch_deleted: BTreeSet<Tuple> = BTreeSet::new();
        for _ in 0..deletes_per_batch {
            if current.is_empty() {
                break;
            }
            let i = rng.gen_range(0..current.len());
            let t = current.swap_remove(i);
            current_set.remove(&t);
            batch_deleted.insert(t.clone());
            delta.delete("visit", t);
        }
        let mut inserted = 0;
        let mut attempts = 0;
        while inserted < inserts_per_batch && attempts < inserts_per_batch * 20 {
            attempts += 1;
            let id = Value::from(rng.gen_range(0..persons));
            let rid = if !restaurant_ids.is_empty() && rng.gen_range(0..2usize) == 0 {
                restaurant_ids[rng.gen_range(0..restaurant_ids.len())]
            } else {
                fresh_rid += 1;
                Value::from(fresh_rid)
            };
            let t: Tuple = vec![id, rid].into();
            // A tuple deleted by this same batch must not also be inserted
            // by it (∆D ∩ ∇D = ∅); re-insertion in a *later* batch is fine
            // (and a deliberately covered edge case).
            if batch_deleted.contains(&t) || !current_set.insert(t.clone()) {
                continue;
            }
            current.push(t.clone());
            delta.insert("visit", t);
            inserted += 1;
        }
        deltas.push(delta);
    }
    deltas
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::social::{SocialConfig, SocialGenerator};

    #[test]
    fn insertions_are_fresh_and_well_formed() {
        let db = SocialGenerator::new(SocialConfig {
            persons: 100,
            restaurants: 20,
            ..SocialConfig::default()
        })
        .generate();
        let delta = visit_insertions(&db, 50, 7);
        assert_eq!(delta.size(), 50);
        assert!(delta.is_insertion_only());
        delta.validate(&db).unwrap();
    }

    #[test]
    fn update_streams_are_valid_against_the_evolving_instance() {
        let db = SocialGenerator::new(SocialConfig {
            persons: 60,
            restaurants: 12,
            ..SocialConfig::default()
        })
        .generate();
        let stream = visit_update_stream(&db, 30, 3, 2, 9);
        assert_eq!(stream.len(), 30);
        assert_eq!(stream, visit_update_stream(&db, 30, 3, 2, 9));
        let mut evolving = db.clone();
        let mut deletions = 0;
        let mut insertions = 0;
        for delta in &stream {
            // Valid exactly when applied in order.
            delta.apply_in_place(&mut evolving).unwrap();
            for (_, rd) in delta.iter() {
                deletions += rd.deletions.len();
                insertions += rd.insertions.len();
            }
        }
        assert_eq!(insertions, 30 * 3);
        assert!(deletions > 0);
        // Batches really mix polarities.
        assert!(stream.iter().any(|d| !d.is_insertion_only()));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let db = SocialGenerator::new(SocialConfig::with_persons(50)).generate();
        let a = visit_insertions(&db, 10, 3);
        let b = visit_insertions(&db, 10, 3);
        let c = visit_insertions(&db, 10, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
