//! Update streams for the incremental experiments (Example 1.1(b)).

use crate::rng::SplitMix64;
use si_data::{Database, Delta, Tuple, Value};

/// Builds an insertion-only update of `count` fresh `visit(id, rid)` tuples,
/// with person ids drawn uniformly from the persons of `db` and restaurant
/// ids from its restaurants.  Tuples already present in `db` (or generated
/// twice) are skipped, so the update is always well formed.
pub fn visit_insertions(db: &Database, count: usize, seed: u64) -> Delta {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let persons = db.relation("person").map(|r| r.len()).unwrap_or(0).max(1);
    let restaurants = db.relation("restr").map(|r| r.len()).unwrap_or(0).max(1);
    let visit = db.relation("visit").ok();
    let mut tuples: Vec<Tuple> = Vec::with_capacity(count);
    let mut attempts = 0;
    while tuples.len() < count && attempts < count * 20 {
        attempts += 1;
        let id = rng.gen_range(0..persons);
        let rid = 1_000_000 + rng.gen_range(0..restaurants);
        let t: Tuple = vec![Value::from(id), Value::from(rid)].into();
        if visit.map(|v| v.contains(&t)).unwrap_or(false) || tuples.contains(&t) {
            continue;
        }
        tuples.push(t);
    }
    Delta::insertions_into("visit", tuples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::social::{SocialConfig, SocialGenerator};

    #[test]
    fn insertions_are_fresh_and_well_formed() {
        let db = SocialGenerator::new(SocialConfig {
            persons: 100,
            restaurants: 20,
            ..SocialConfig::default()
        })
        .generate();
        let delta = visit_insertions(&db, 50, 7);
        assert_eq!(delta.size(), 50);
        assert!(delta.is_insertion_only());
        delta.validate(&db).unwrap();
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let db = SocialGenerator::new(SocialConfig::with_persons(50)).generate();
        let a = visit_insertions(&db, 10, 3);
        let b = visit_insertions(&db, 10, 3);
        let c = visit_insertions(&db, 10, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
