//! The two-sided cost model: worst-case bounds and statistical estimates.
//!
//! Theorem 4.2 of the paper guarantees that a controlled query can be
//! answered in time that depends only on the access schema and the query.
//! [`StaticCost`] is the quantity that makes this concrete for a chain of
//! indexed fetches: the product/sum structure of per-step cardinality bounds
//! `N` and time bounds `T`, *independent of `|D|`*.  Bounded plans in
//! `si-core` compute their worst-case budget with this type and experiments
//! compare it against the measured [`si_data::MeterSnapshot`].
//!
//! [`CostModel`] is the *expected*-case counterpart, driven by the
//! per-relation statistics of [`si_data::stats`] (row counts, per-column
//! distinct counts).  The cost-based planner enumerates atom orderings with
//! the estimates and certifies the winner with the static bounds, so the two
//! sides of the model obey strict roles:
//!
//! * **Static bounds gate admissibility.**  A plan is bounded iff every step
//!   is covered by a constraint, and its fetch budget is the [`StaticCost`]
//!   accumulated from the constraints' `N`/`T` — never from estimates.
//! * **Estimates only rank admissible plans.**  They may be stale or wrong
//!   by any factor; the chosen plan still answers the query exactly and
//!   still fetches at most its static budget on conforming data.
//! * **Estimates never exceed declared bounds.**  A fetch through
//!   `(R, X, N, T)` touches at most `N` tuples per probe on conforming data,
//!   so [`CostModel::estimated_fetch_via`] clamps the statistical estimate
//!   at `N` (see `fetch`'s metering in [`crate::indexed`] for what exactly is
//!   charged).
//!
//! ```
//! use si_access::{AccessConstraint, CostModel};
//! use si_data::schema::social_schema;
//! use si_data::stats::DatabaseStats;
//! use si_data::{tuple, Database};
//!
//! let mut db = Database::empty(social_schema());
//! db.insert_all("friend", vec![tuple![1, 2], tuple![1, 3], tuple![2, 3]]).unwrap();
//! let stats = DatabaseStats::collect(&db);
//! let model = CostModel::new(&stats);
//!
//! // The constraint promises ≤ 5000 friends per person; the statistics say
//! // a random person has 1.5 on average — that is what the planner ranks by.
//! let c = AccessConstraint::new("friend", &["id1"], 5000, 2);
//! assert_eq!(model.estimated_fetch_via(&c), 1.5);
//! // The declared bound still caps the estimate when statistics are stale.
//! let tight = AccessConstraint::new("friend", &["id1"], 1, 1);
//! assert_eq!(model.estimated_fetch_via(&tight), 1.0);
//! ```

use si_data::stats::DatabaseStats;
use std::fmt;

/// A static (data-independent) bound on the work performed by a bounded plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StaticCost {
    /// Worst-case number of base tuples fetched.
    pub max_tuples: u64,
    /// Worst-case number of index probes issued.
    pub max_probes: u64,
    /// Worst-case abstract time units (sum of the `T` bounds, weighted by how
    /// often each access can run).
    pub max_time: u64,
}

impl StaticCost {
    /// The zero cost.
    pub fn zero() -> Self {
        StaticCost::default()
    }

    /// Cost of a single fetch through a constraint with bounds `(N, T)`.
    pub fn single_fetch(bound: usize, time: u64) -> Self {
        StaticCost {
            max_tuples: bound as u64,
            max_probes: 1,
            max_time: time,
        }
    }

    /// Sequential composition: both costs are always paid.
    pub fn then(self, other: StaticCost) -> Self {
        StaticCost {
            max_tuples: self.max_tuples.saturating_add(other.max_tuples),
            max_probes: self.max_probes.saturating_add(other.max_probes),
            max_time: self.max_time.saturating_add(other.max_time),
        }
    }

    /// Nested composition: `other` is paid once per tuple that `self` can
    /// produce (`multiplicity`), e.g. probing `person` once per fetched
    /// `friend` tuple.
    pub fn per_result(self, multiplicity: u64, other: StaticCost) -> Self {
        StaticCost {
            max_tuples: self
                .max_tuples
                .saturating_add(multiplicity.saturating_mul(other.max_tuples)),
            max_probes: self
                .max_probes
                .saturating_add(multiplicity.saturating_mul(other.max_probes)),
            max_time: self
                .max_time
                .saturating_add(multiplicity.saturating_mul(other.max_time)),
        }
    }

    /// Branch composition (e.g. a union): both sides are paid.
    pub fn either(self, other: StaticCost) -> Self {
        self.then(other)
    }

    /// True iff the tuple budget fits within `m`.
    pub fn within_tuple_budget(&self, m: u64) -> bool {
        self.max_tuples <= m
    }
}

/// A statistics-driven estimator of fetch costs, used by the cost-based
/// planner to *rank* bounded plans (never to admit them — see the module
/// docs for the invariants).
#[derive(Debug, Clone, Copy)]
pub struct CostModel<'a> {
    stats: &'a DatabaseStats,
}

impl<'a> CostModel<'a> {
    /// Creates a cost model over a statistics snapshot.
    pub fn new(stats: &'a DatabaseStats) -> Self {
        CostModel { stats }
    }

    /// The statistics snapshot backing the model.
    pub fn stats(&self) -> &'a DatabaseStats {
        self.stats
    }

    /// Expected number of tuples matching an equality selection on
    /// `attributes` of `relation` for a random key.  Unknown relations
    /// estimate to `0` (an empty relation matches nothing).
    pub fn estimated_matches(&self, relation: &str, attributes: &[String]) -> f64 {
        self.stats
            .relation(relation)
            .map(|s| s.estimated_matches(attributes))
            .unwrap_or(0.0)
    }

    /// Expected number of tuples *fetched* by one probe through `constraint`:
    /// the statistical estimate on the constraint's `X`, clamped by the
    /// declared bound `N` (on conforming data no probe can return more).
    pub fn estimated_fetch_via(&self, constraint: &crate::AccessConstraint) -> f64 {
        self.estimated_matches(&constraint.relation, &constraint.on)
            .min(constraint.bound as f64)
    }

    /// Expected number of tuples a full scan of `relation` touches.
    pub fn estimated_scan(&self, relation: &str) -> f64 {
        self.stats
            .relation(relation)
            .map(|s| s.rows as f64)
            .unwrap_or(0.0)
    }

    /// Expected number of rows that survive a membership probe: the chance a
    /// random fully-bound tuple is present, at most `1`.
    pub fn estimated_check(&self, relation: &str, attributes: &[String]) -> f64 {
        self.estimated_matches(relation, attributes).min(1.0)
    }
}

impl fmt::Display for StaticCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "≤{} tuples, ≤{} probes, ≤{} time units",
            self.max_tuples, self.max_probes, self.max_time
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_fetch_and_then() {
        let friend = StaticCost::single_fetch(5000, 2);
        let person = StaticCost::single_fetch(1, 1);
        let seq = friend.then(person);
        assert_eq!(seq.max_tuples, 5001);
        assert_eq!(seq.max_probes, 2);
        assert_eq!(seq.max_time, 3);
    }

    #[test]
    fn per_result_multiplies_the_inner_cost() {
        // Q1's plan: fetch ≤5000 friends, then 1 person probe per friend.
        let friend = StaticCost::single_fetch(5000, 2);
        let person = StaticCost::single_fetch(1, 1);
        let plan = friend.per_result(5000, person);
        assert_eq!(plan.max_tuples, 5000 + 5000);
        assert_eq!(plan.max_probes, 1 + 5000);
        assert_eq!(plan.max_time, 2 + 5000);
        assert!(plan.within_tuple_budget(10_000));
        assert!(!plan.within_tuple_budget(9_999));
    }

    #[test]
    fn zero_is_the_identity_for_then() {
        let c = StaticCost::single_fetch(7, 3);
        assert_eq!(StaticCost::zero().then(c), c);
        assert_eq!(c.then(StaticCost::zero()), c);
        assert_eq!(c.either(StaticCost::zero()), c);
    }

    #[test]
    fn saturation_prevents_overflow() {
        let huge = StaticCost {
            max_tuples: u64::MAX,
            max_probes: u64::MAX,
            max_time: u64::MAX,
        };
        let combined = huge.per_result(u64::MAX, huge);
        assert_eq!(combined.max_tuples, u64::MAX);
    }

    #[test]
    fn display_mentions_all_components() {
        let s = StaticCost::single_fetch(5, 1).to_string();
        assert!(s.contains("≤5 tuples"));
        assert!(s.contains("≤1 probes"));
    }

    #[test]
    fn cost_model_estimates_and_clamps() {
        use crate::AccessConstraint;
        use si_data::schema::social_schema;
        use si_data::{tuple, Database};

        let mut db = Database::empty(social_schema());
        db.insert_all(
            "friend",
            vec![tuple![1, 2], tuple![1, 3], tuple![1, 4], tuple![2, 3]],
        )
        .unwrap();
        let stats = db.statistics();
        let model = CostModel::new(&stats);
        assert_eq!(model.estimated_matches("friend", &["id1".into()]), 2.0);
        assert_eq!(model.estimated_scan("friend"), 4.0);
        // Declared bound caps the estimate; the estimate caps nothing.
        let loose = AccessConstraint::new("friend", &["id1"], 5000, 2);
        assert_eq!(model.estimated_fetch_via(&loose), 2.0);
        let tight = AccessConstraint::new("friend", &["id1"], 1, 1);
        assert_eq!(model.estimated_fetch_via(&tight), 1.0);
        // Membership probes return at most one expected row.
        assert_eq!(
            model.estimated_check("friend", &["id1".into(), "id2".into()]),
            4.0f64 / (2.0 * 3.0)
        );
        assert_eq!(model.estimated_check("friend", &[]), 1.0);
        // Unknown relations estimate to zero rather than failing.
        assert_eq!(model.estimated_matches("enemy", &[]), 0.0);
        assert_eq!(model.estimated_scan("enemy"), 0.0);
        assert!(model.stats().relation("friend").is_some());
    }
}
