//! Static cost bounds derived from an access schema.
//!
//! Theorem 4.2 of the paper guarantees that a controlled query can be
//! answered in time that depends only on the access schema and the query.
//! [`StaticCost`] is the quantity that makes this concrete for a chain of
//! indexed fetches: the product/sum structure of per-step cardinality bounds
//! `N` and time bounds `T`, *independent of `|D|`*.  Bounded plans in
//! `si-core` compute their worst-case budget with this type and experiments
//! compare it against the measured [`si_data::MeterSnapshot`].

use std::fmt;

/// A static (data-independent) bound on the work performed by a bounded plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StaticCost {
    /// Worst-case number of base tuples fetched.
    pub max_tuples: u64,
    /// Worst-case number of index probes issued.
    pub max_probes: u64,
    /// Worst-case abstract time units (sum of the `T` bounds, weighted by how
    /// often each access can run).
    pub max_time: u64,
}

impl StaticCost {
    /// The zero cost.
    pub fn zero() -> Self {
        StaticCost::default()
    }

    /// Cost of a single fetch through a constraint with bounds `(N, T)`.
    pub fn single_fetch(bound: usize, time: u64) -> Self {
        StaticCost {
            max_tuples: bound as u64,
            max_probes: 1,
            max_time: time,
        }
    }

    /// Sequential composition: both costs are always paid.
    pub fn then(self, other: StaticCost) -> Self {
        StaticCost {
            max_tuples: self.max_tuples.saturating_add(other.max_tuples),
            max_probes: self.max_probes.saturating_add(other.max_probes),
            max_time: self.max_time.saturating_add(other.max_time),
        }
    }

    /// Nested composition: `other` is paid once per tuple that `self` can
    /// produce (`multiplicity`), e.g. probing `person` once per fetched
    /// `friend` tuple.
    pub fn per_result(self, multiplicity: u64, other: StaticCost) -> Self {
        StaticCost {
            max_tuples: self
                .max_tuples
                .saturating_add(multiplicity.saturating_mul(other.max_tuples)),
            max_probes: self
                .max_probes
                .saturating_add(multiplicity.saturating_mul(other.max_probes)),
            max_time: self
                .max_time
                .saturating_add(multiplicity.saturating_mul(other.max_time)),
        }
    }

    /// Branch composition (e.g. a union): both sides are paid.
    pub fn either(self, other: StaticCost) -> Self {
        self.then(other)
    }

    /// True iff the tuple budget fits within `m`.
    pub fn within_tuple_budget(&self, m: u64) -> bool {
        self.max_tuples <= m
    }
}

impl fmt::Display for StaticCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "≤{} tuples, ≤{} probes, ≤{} time units",
            self.max_tuples, self.max_probes, self.max_time
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_fetch_and_then() {
        let friend = StaticCost::single_fetch(5000, 2);
        let person = StaticCost::single_fetch(1, 1);
        let seq = friend.then(person);
        assert_eq!(seq.max_tuples, 5001);
        assert_eq!(seq.max_probes, 2);
        assert_eq!(seq.max_time, 3);
    }

    #[test]
    fn per_result_multiplies_the_inner_cost() {
        // Q1's plan: fetch ≤5000 friends, then 1 person probe per friend.
        let friend = StaticCost::single_fetch(5000, 2);
        let person = StaticCost::single_fetch(1, 1);
        let plan = friend.per_result(5000, person);
        assert_eq!(plan.max_tuples, 5000 + 5000);
        assert_eq!(plan.max_probes, 1 + 5000);
        assert_eq!(plan.max_time, 2 + 5000);
        assert!(plan.within_tuple_budget(10_000));
        assert!(!plan.within_tuple_budget(9_999));
    }

    #[test]
    fn zero_is_the_identity_for_then() {
        let c = StaticCost::single_fetch(7, 3);
        assert_eq!(StaticCost::zero().then(c), c);
        assert_eq!(c.then(StaticCost::zero()), c);
        assert_eq!(c.either(StaticCost::zero()), c);
    }

    #[test]
    fn saturation_prevents_overflow() {
        let huge = StaticCost {
            max_tuples: u64::MAX,
            max_probes: u64::MAX,
            max_time: u64::MAX,
        };
        let combined = huge.per_result(u64::MAX, huge);
        assert_eq!(combined.max_tuples, u64::MAX);
    }

    #[test]
    fn display_mentions_all_components() {
        let s = StaticCost::single_fetch(5, 1).to_string();
        assert!(s.contains("≤5 tuples"));
        assert!(s.contains("≤1 probes"));
    }
}
