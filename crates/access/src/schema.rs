//! Access schemas: collections of (embedded) access constraints.

use crate::constraint::AccessConstraint;
use crate::embedded::EmbeddedConstraint;
use si_data::DatabaseSchema;
use std::collections::BTreeSet;
use std::fmt;

/// An access schema `A` over a relational schema: a set of plain constraints
/// `(R, X, N, T)`, a set of embedded constraints `(R, X[Y], N, T)`, and an
/// optional set of relations declared fully accessible (the `A(R)`
/// augmentation of Proposition 5.5, which states that the entire relation
/// `R` can be obtained in constant time).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccessSchema {
    constraints: Vec<AccessConstraint>,
    embedded: Vec<EmbeddedConstraint>,
    full_access: BTreeSet<String>,
}

impl AccessSchema {
    /// Creates an empty access schema.
    pub fn new() -> Self {
        AccessSchema::default()
    }

    /// Adds a plain access constraint.
    pub fn add(&mut self, constraint: AccessConstraint) -> &mut Self {
        self.constraints.push(constraint);
        self
    }

    /// Adds an embedded access constraint.
    pub fn add_embedded(&mut self, constraint: EmbeddedConstraint) -> &mut Self {
        self.embedded.push(constraint);
        self
    }

    /// Builder-style variant of [`AccessSchema::add`].
    pub fn with(mut self, constraint: AccessConstraint) -> Self {
        self.constraints.push(constraint);
        self
    }

    /// Builder-style variant of [`AccessSchema::add_embedded`].
    pub fn with_embedded(mut self, constraint: EmbeddedConstraint) -> Self {
        self.embedded.push(constraint);
        self
    }

    /// Declares `relation` fully accessible, i.e. augments `A` to `A(R)` as
    /// in Proposition 5.5 of the paper (the paper writes this as adding
    /// `(R, ∅, 1, 1)` with the reading "the entire relation is obtainable in
    /// constant time"; we record the intent explicitly instead of abusing the
    /// cardinality bound).
    pub fn with_full_access(mut self, relation: impl Into<String>) -> Self {
        self.full_access.insert(relation.into());
        self
    }

    /// Mutating variant of [`AccessSchema::with_full_access`].
    pub fn grant_full_access(&mut self, relation: impl Into<String>) -> &mut Self {
        self.full_access.insert(relation.into());
        self
    }

    /// True iff `relation` was declared fully accessible.
    pub fn has_full_access(&self, relation: &str) -> bool {
        self.full_access.contains(relation)
    }

    /// All plain constraints.
    pub fn constraints(&self) -> &[AccessConstraint] {
        &self.constraints
    }

    /// All embedded constraints.
    pub fn embedded(&self) -> &[EmbeddedConstraint] {
        &self.embedded
    }

    /// Plain constraints on a given relation.
    pub fn constraints_on<'a>(
        &'a self,
        relation: &'a str,
    ) -> impl Iterator<Item = &'a AccessConstraint> {
        self.constraints
            .iter()
            .filter(move |c| c.relation == relation)
    }

    /// Embedded constraints on a given relation.
    pub fn embedded_on<'a>(
        &'a self,
        relation: &'a str,
    ) -> impl Iterator<Item = &'a EmbeddedConstraint> {
        self.embedded.iter().filter(move |c| c.relation == relation)
    }

    /// Every constraint (plain and embedded) on `relation`, lifted into the
    /// embedded form (plain constraints become `X[attr(R)]`).
    pub fn all_embedded_on(
        &self,
        relation: &str,
        schema: &DatabaseSchema,
    ) -> Vec<EmbeddedConstraint> {
        let mut out: Vec<EmbeddedConstraint> = self.embedded_on(relation).cloned().collect();
        if let Ok(rel) = schema.relation(relation) {
            for c in self.constraints_on(relation) {
                out.push(EmbeddedConstraint::from_plain(c, rel.attributes()));
            }
        }
        out
    }

    /// Finds the tightest (smallest-`N`) plain constraint on `relation` whose
    /// input attributes are contained in `bound_attrs`.
    pub fn best_constraint<'a>(
        &'a self,
        relation: &str,
        bound_attrs: &BTreeSet<&str>,
    ) -> Option<&'a AccessConstraint> {
        self.constraints
            .iter()
            .filter(|c| c.relation == relation && c.usable_with(bound_attrs))
            .min_by_key(|c| c.bound)
    }

    /// The set of index specifications `(relation, X)` this schema requires
    /// to be built, deduplicated.
    pub fn required_indexes(&self) -> Vec<(String, Vec<String>)> {
        let mut out: Vec<(String, Vec<String>)> = Vec::new();
        let mut push = |relation: &str, attrs: &[String]| {
            let mut key: Vec<String> = attrs.to_vec();
            key.sort();
            key.dedup();
            let entry = (relation.to_owned(), key);
            if !out.contains(&entry) {
                out.push(entry);
            }
        };
        for c in &self.constraints {
            push(&c.relation, &c.on);
        }
        for e in &self.embedded {
            push(&e.relation, &e.from);
        }
        out
    }

    /// Total number of constraints (plain + embedded).
    pub fn len(&self) -> usize {
        self.constraints.len() + self.embedded.len()
    }

    /// True iff the schema contains no constraints and grants no full access.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty() && self.embedded.is_empty() && self.full_access.is_empty()
    }

    /// Validates that every constraint mentions a known relation and known
    /// attributes of that relation.
    pub fn validate(&self, schema: &DatabaseSchema) -> Result<(), si_data::DataError> {
        for c in &self.constraints {
            let rel = schema.relation(&c.relation)?;
            for a in &c.on {
                rel.position_of(a)?;
            }
        }
        for e in &self.embedded {
            let rel = schema.relation(&e.relation)?;
            for a in e.from.iter().chain(e.onto.iter()) {
                rel.position_of(a)?;
            }
        }
        for r in &self.full_access {
            schema.relation(r)?;
        }
        Ok(())
    }
}

impl fmt::Display for AccessSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "AccessSchema {{")?;
        for c in &self.constraints {
            writeln!(f, "  {c}")?;
        }
        for e in &self.embedded {
            writeln!(f, "  {e}")?;
        }
        for r in &self.full_access {
            writeln!(f, "  full-access({r})")?;
        }
        write!(f, "}}")
    }
}

/// The access schema of the paper's running example (Section 4):
/// `(friend, {id1}, 5000, T)` — at most 5000 friends per person — and
/// `(person, {id}, 1, T')` — `id` is a key of `person`.  We also include the
/// analogous key constraint on `restr` (rid is a key) used by Example 4.6 and
/// a city index on `restr` used when rewriting with views.
pub fn facebook_access_schema(friend_cap: usize) -> AccessSchema {
    AccessSchema::new()
        .with(AccessConstraint::new("friend", &["id1"], friend_cap, 2))
        .with(AccessConstraint::key("person", &["id"], 1))
        .with(AccessConstraint::key("restr", &["rid"], 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_data::schema::{social_schema, social_schema_dated};

    #[test]
    fn builders_accumulate_constraints() {
        let a = facebook_access_schema(5000)
            .with_embedded(EmbeddedConstraint::new(
                "visit",
                &["yy"],
                &["mm", "dd"],
                366,
                3,
            ))
            .with_full_access("visit");
        assert_eq!(a.constraints().len(), 3);
        assert_eq!(a.embedded().len(), 1);
        assert!(a.has_full_access("visit"));
        assert!(!a.has_full_access("friend"));
        assert_eq!(a.len(), 4);
        assert!(!a.is_empty());
        assert!(AccessSchema::new().is_empty());
    }

    #[test]
    fn constraints_on_filters_by_relation() {
        let a = facebook_access_schema(5000);
        assert_eq!(a.constraints_on("friend").count(), 1);
        assert_eq!(a.constraints_on("person").count(), 1);
        assert_eq!(a.constraints_on("visit").count(), 0);
    }

    #[test]
    fn best_constraint_picks_smallest_bound() {
        let a = AccessSchema::new()
            .with(AccessConstraint::new("person", &["city"], 100_000, 5))
            .with(AccessConstraint::key("person", &["id"], 1));
        let bound: BTreeSet<&str> = ["id", "city"].into_iter().collect();
        let best = a.best_constraint("person", &bound).unwrap();
        assert_eq!(best.bound, 1);
        let bound: BTreeSet<&str> = ["city"].into_iter().collect();
        let best = a.best_constraint("person", &bound).unwrap();
        assert_eq!(best.bound, 100_000);
        let bound: BTreeSet<&str> = ["name"].into_iter().collect();
        assert!(a.best_constraint("person", &bound).is_none());
        assert!(a.best_constraint("friend", &bound).is_none());
    }

    #[test]
    fn all_embedded_on_lifts_plain_constraints() {
        let schema = social_schema_dated();
        let a = facebook_access_schema(5000).with_embedded(EmbeddedConstraint::new(
            "visit",
            &["yy"],
            &["mm", "dd"],
            366,
            3,
        ));
        let person = a.all_embedded_on("person", &schema);
        assert_eq!(person.len(), 1);
        assert_eq!(person[0].onto.len(), 3);
        let visit = a.all_embedded_on("visit", &schema);
        assert_eq!(visit.len(), 1);
        assert_eq!(visit[0].bound, 366);
    }

    #[test]
    fn required_indexes_deduplicate() {
        let a = facebook_access_schema(5000)
            .with(AccessConstraint::new("friend", &["id1"], 4000, 1))
            .with_embedded(EmbeddedConstraint::new(
                "friend",
                &["id1"],
                &["id2"],
                4000,
                1,
            ));
        let idx = a.required_indexes();
        assert_eq!(
            idx.iter()
                .filter(|(r, k)| r == "friend" && k == &vec!["id1".to_string()])
                .count(),
            1
        );
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn validation_checks_relations_and_attributes() {
        let schema = social_schema();
        facebook_access_schema(5000).validate(&schema).unwrap();
        let bad = AccessSchema::new().with(AccessConstraint::new("enemy", &["id"], 1, 1));
        assert!(bad.validate(&schema).is_err());
        let bad = AccessSchema::new().with(AccessConstraint::new("person", &["zip"], 1, 1));
        assert!(bad.validate(&schema).is_err());
        let bad = AccessSchema::new().with_full_access("enemy");
        assert!(bad.validate(&schema).is_err());
        let bad = AccessSchema::new().with_embedded(EmbeddedConstraint::new(
            "visit",
            &["yy"],
            &["mm"],
            366,
            1,
        ));
        // `yy` only exists in the dated schema.
        assert!(bad.validate(&schema).is_err());
        assert!(bad.validate(&social_schema_dated()).is_ok());
    }

    #[test]
    fn display_lists_everything() {
        let a = facebook_access_schema(5000).with_full_access("visit");
        let s = a.to_string();
        assert!(s.contains("(friend, {id1}, 5000, 2)"));
        assert!(s.contains("full-access(visit)"));
    }
}
