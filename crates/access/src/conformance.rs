//! Conformance of a database to an access schema.
//!
//! A database `D` conforms to an access schema `A` when every constraint's
//! cardinality bound holds in `D` (paper, Section 4).  The retrieval-time
//! component `T` is a promise about the physical design (indexes), which
//! [`crate::indexed::AccessIndexedDatabase`] discharges by building the
//! required indexes; it is not checkable against the data itself.

use crate::schema::AccessSchema;
use si_data::{Database, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A single conformance violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The relation on which the violation occurred.
    pub relation: String,
    /// Human-readable description of the violated constraint.
    pub constraint: String,
    /// The key value combination whose group exceeds the bound.
    pub witness_key: Vec<Value>,
    /// The number of tuples (or projected tuples) observed for that key.
    pub observed: usize,
    /// The bound `N` promised by the constraint.
    pub bound: usize,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "relation `{}` violates {}: key {:?} has {} tuples (bound {})",
            self.relation, self.constraint, self.witness_key, self.observed, self.bound
        )
    }
}

/// Checks every constraint of `access` against `db`, returning all
/// violations (empty means `db` conforms to `access`).
pub fn violations(db: &Database, access: &AccessSchema) -> Vec<Violation> {
    let mut out = Vec::new();

    for c in access.constraints() {
        let Ok(relation) = db.relation(&c.relation) else {
            continue;
        };
        let Ok(positions) = relation.schema().positions_of(&c.on) else {
            continue;
        };
        let mut groups: BTreeMap<Vec<Value>, usize> = BTreeMap::new();
        for t in relation.iter() {
            let key: Vec<Value> = positions.iter().map(|&p| t[p]).collect();
            *groups.entry(key).or_insert(0) += 1;
        }
        for (key, count) in groups {
            if count > c.bound {
                out.push(Violation {
                    relation: c.relation.clone(),
                    constraint: c.to_string(),
                    witness_key: key,
                    observed: count,
                    bound: c.bound,
                });
            }
        }
    }

    for e in access.embedded() {
        let Ok(relation) = db.relation(&e.relation) else {
            continue;
        };
        let Ok(from_positions) = relation.schema().positions_of(&e.from) else {
            continue;
        };
        let Ok(onto_positions) = relation.schema().positions_of(&e.onto) else {
            continue;
        };
        let mut groups: BTreeMap<Vec<Value>, BTreeSet<Vec<Value>>> = BTreeMap::new();
        for t in relation.iter() {
            let key: Vec<Value> = from_positions.iter().map(|&p| t[p]).collect();
            let proj: Vec<Value> = onto_positions.iter().map(|&p| t[p]).collect();
            groups.entry(key).or_default().insert(proj);
        }
        for (key, projections) in groups {
            if projections.len() > e.bound {
                out.push(Violation {
                    relation: e.relation.clone(),
                    constraint: e.to_string(),
                    witness_key: key,
                    observed: projections.len(),
                    bound: e.bound,
                });
            }
        }
    }

    out
}

/// True iff `db` conforms to `access`.
pub fn conforms(db: &Database, access: &AccessSchema) -> bool {
    violations(db, access).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::AccessConstraint;
    use crate::embedded::EmbeddedConstraint;
    use crate::schema::facebook_access_schema;
    use si_data::schema::{social_schema, social_schema_dated};
    use si_data::tuple;

    fn db() -> Database {
        let mut db = Database::empty(social_schema());
        db.insert_all(
            "person",
            vec![tuple![1, "ann", "NYC"], tuple![2, "bob", "NYC"]],
        )
        .unwrap();
        db.insert_all("friend", vec![tuple![1, 2], tuple![2, 1]])
            .unwrap();
        db
    }

    #[test]
    fn conforming_database_has_no_violations() {
        let a = facebook_access_schema(5000);
        assert!(conforms(&db(), &a));
        assert!(violations(&db(), &a).is_empty());
    }

    #[test]
    fn fanout_violation_is_detected() {
        let mut d = db();
        // Give person 1 three friends while the cap is 2.
        d.insert("friend", tuple![1, 3]).unwrap();
        d.insert("friend", tuple![1, 4]).unwrap();
        let a = AccessSchema::new().with(AccessConstraint::new("friend", &["id1"], 2, 1));
        let vs = violations(&d, &a);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].relation, "friend");
        assert_eq!(vs[0].observed, 3);
        assert_eq!(vs[0].bound, 2);
        assert_eq!(vs[0].witness_key, vec![Value::int(1)]);
        assert!(!conforms(&d, &a));
        assert!(vs[0].to_string().contains("friend"));
    }

    #[test]
    fn key_violation_is_detected() {
        let mut d = db();
        d.insert("person", tuple![1, "ann2", "LA"]).unwrap();
        let a = AccessSchema::new().with(AccessConstraint::key("person", &["id"], 1));
        assert!(!conforms(&d, &a));
    }

    #[test]
    fn empty_x_bounds_relation_size() {
        let d = db();
        let tight = AccessSchema::new().with(AccessConstraint::new("friend", &[], 1, 1));
        assert!(!conforms(&d, &tight));
        let loose = AccessSchema::new().with(AccessConstraint::new("friend", &[], 10, 1));
        assert!(conforms(&d, &loose));
    }

    #[test]
    fn embedded_constraint_counts_projections() {
        let mut d = Database::empty(social_schema_dated());
        // Two visits by the same person on the same date to the same
        // restaurant differ only in the full tuple, not in the projection.
        d.insert_all(
            "visit",
            vec![
                tuple![1, 10, 2013, 5, 1],
                tuple![1, 11, 2013, 5, 1],
                tuple![1, 12, 2013, 6, 2],
            ],
        )
        .unwrap();
        // At most 2 distinct (mm, dd) pairs per year here; bound 2 passes,
        // bound 1 fails.
        let pass = AccessSchema::new().with_embedded(EmbeddedConstraint::new(
            "visit",
            &["yy"],
            &["mm", "dd"],
            2,
            1,
        ));
        assert!(conforms(&d, &pass));
        let fail = AccessSchema::new().with_embedded(EmbeddedConstraint::new(
            "visit",
            &["yy"],
            &["mm", "dd"],
            1,
            1,
        ));
        let vs = violations(&d, &fail);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].observed, 2);

        // The FD id,yy,mm,dd → rid is violated by the first two tuples.
        let fd = AccessSchema::new().with_embedded(EmbeddedConstraint::functional_dependency(
            "visit",
            &["id", "yy", "mm", "dd"],
            &["rid"],
            1,
        ));
        assert!(!conforms(&d, &fd));
    }

    #[test]
    fn unknown_relations_are_skipped_not_fatal() {
        let a = AccessSchema::new().with(AccessConstraint::new("enemy", &["x"], 1, 1));
        // The constraint refers to a relation the database does not have;
        // conformance checking skips it (validation catches it separately).
        assert!(conforms(&db(), &a));
    }
}
