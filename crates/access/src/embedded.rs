//! Embedded access constraints `(R, X[Y], N, T)`.
//!
//! Embedded constraints (paper, Section 4, "Embedded controllability and
//! query answering under constraints") state that for a given tuple `a̅` of
//! values over `X`, the projection `π_Y(σ_{X=a̅}(R))` has at most `N` tuples
//! and can be retrieved in time `T`, where `X ⊆ Y`.
//!
//! Two special cases matter in practice:
//!
//! * `Y = attr(R)` recovers a plain [`AccessConstraint`];
//! * a functional dependency `X → Y` with retrieval time `T` is the embedded
//!   constraint `(R, X[X ∪ Y], 1, T)` ([`EmbeddedConstraint::functional_dependency`]).

use crate::constraint::AccessConstraint;
use std::collections::BTreeSet;
use std::fmt;

/// An embedded access constraint `(R, X[Y], N, T)` with `X ⊆ Y`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmbeddedConstraint {
    /// The relation `R`.
    pub relation: String,
    /// The input attributes `X`.
    pub from: Vec<String>,
    /// The output attributes `Y` (must contain `X`).
    pub onto: Vec<String>,
    /// Cardinality bound `N` on `π_Y(σ_{X=a̅}(R))`.
    pub bound: usize,
    /// Retrieval-time bound `T`.
    pub time: u64,
}

impl EmbeddedConstraint {
    /// Creates an embedded constraint; `onto` is extended with `from` if the
    /// caller did not already include it (the paper requires `X ⊆ Y`).
    pub fn new(
        relation: impl Into<String>,
        from: &[&str],
        onto: &[&str],
        bound: usize,
        time: u64,
    ) -> Self {
        let from: Vec<String> = from.iter().map(|a| (*a).to_owned()).collect();
        let mut onto: Vec<String> = onto.iter().map(|a| (*a).to_owned()).collect();
        for a in &from {
            if !onto.contains(a) {
                onto.push(a.clone());
            }
        }
        EmbeddedConstraint {
            relation: relation.into(),
            from,
            onto,
            bound,
            time,
        }
    }

    /// Builds the embedded constraint encoding the functional dependency
    /// `X → Y` on `R`: `(R, X[X ∪ Y], 1, T)`.
    pub fn functional_dependency(
        relation: impl Into<String>,
        determinant: &[&str],
        dependent: &[&str],
        time: u64,
    ) -> Self {
        EmbeddedConstraint::new(relation, determinant, dependent, 1, time)
    }

    /// Lifts a plain constraint `(R, X, N, T)` into the embedded form
    /// `(R, X[attr(R)], N, T)`; `all_attributes` must be `attr(R)`.
    pub fn from_plain(constraint: &AccessConstraint, all_attributes: &[String]) -> Self {
        EmbeddedConstraint {
            relation: constraint.relation.clone(),
            from: constraint.on.clone(),
            onto: all_attributes.to_vec(),
            bound: constraint.bound,
            time: constraint.time,
        }
    }

    /// The input attribute set `X`.
    pub fn from_set(&self) -> BTreeSet<&str> {
        self.from.iter().map(String::as_str).collect()
    }

    /// The output attribute set `Y`.
    pub fn onto_set(&self) -> BTreeSet<&str> {
        self.onto.iter().map(String::as_str).collect()
    }

    /// True iff providing `bound_attrs` suffices to use the constraint.
    pub fn usable_with(&self, bound_attrs: &BTreeSet<&str>) -> bool {
        self.from_set().iter().all(|a| bound_attrs.contains(a))
    }

    /// True iff the constraint behaves like a functional dependency
    /// (`N = 1`).
    pub fn is_functional(&self) -> bool {
        self.bound == 1
    }
}

impl fmt::Display for EmbeddedConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({}, {{{}}}[{{{}}}], {}, {})",
            self.relation,
            self.from.join(", "),
            self.onto.join(", "),
            self.bound,
            self.time
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_ensures_x_subset_of_y() {
        let e = EmbeddedConstraint::new("visit", &["yy"], &["mm", "dd"], 366, 3);
        assert!(e.onto_set().contains("yy"));
        assert_eq!(e.bound, 366);
        assert!(e.from_set().is_subset(&e.onto_set()));
    }

    #[test]
    fn functional_dependency_has_bound_one() {
        let fd = EmbeddedConstraint::functional_dependency(
            "visit",
            &["id", "yy", "mm", "dd"],
            &["rid"],
            1,
        );
        assert!(fd.is_functional());
        assert!(fd.onto_set().contains("rid"));
        assert!(fd.onto_set().contains("id"));
    }

    #[test]
    fn from_plain_uses_all_attributes() {
        let plain = AccessConstraint::new("person", &["id"], 1, 1);
        let attrs = vec!["id".to_string(), "name".to_string(), "city".to_string()];
        let e = EmbeddedConstraint::from_plain(&plain, &attrs);
        assert_eq!(e.onto, attrs);
        assert_eq!(e.from, vec!["id"]);
        assert!(e.is_functional());
    }

    #[test]
    fn usable_with_checks_input_attributes() {
        let e = EmbeddedConstraint::new("visit", &["yy"], &["mm", "dd"], 366, 3);
        let have: BTreeSet<&str> = ["yy", "id"].into_iter().collect();
        assert!(e.usable_with(&have));
        let have: BTreeSet<&str> = ["mm"].into_iter().collect();
        assert!(!e.usable_with(&have));
    }

    #[test]
    fn display_uses_bracket_notation() {
        let e = EmbeddedConstraint::new("visit", &["yy"], &["mm"], 366, 3);
        assert_eq!(e.to_string(), "(visit, {yy}[{mm, yy}], 366, 3)");
    }
}
