//! Access-schema-aware retrieval.
//!
//! [`AccessIndexedDatabase`] wraps a [`Database`] together with an
//! [`AccessSchema`] and *declares* the indexes promised by the schema; each
//! index is materialised lazily by its first probe (see
//! [`si_data::IndexPool`]) and maintained incrementally from then on.  The
//! `fetch*` methods are the *only* retrieval primitives the bounded
//! (scale-independent) executors in `si-core` are allowed to use.
//!
//! ## Fetch-bound semantics
//!
//! Every fetch is authorised by an access constraint `(R, X, N, T)` and is
//! charged to the built-in [`AccessMeter`] as follows:
//!
//! * what the index returns for the `X`-part of the probe — i.e.
//!   `σ_{X=a̅}(R)`, at most `N` tuples on conforming data — is charged as
//!   `tuples_fetched`, *before* any residual equalities on
//!   `attrs ∖ X` are applied as a post-filter (the paper's accounting:
//!   the post-filter runs on already-fetched tuples);
//! * one `index_probe` and `T` `time_units` are charged per probe,
//!   regardless of how many tuples come back;
//! * membership probes ([`AccessIndexedDatabase::contains`]) charge one
//!   probe and at most one tuple;
//! * full scans are permitted only for relations the schema declares fully
//!   accessible (the `A(R)` augmentation of Proposition 5.5) and charge
//!   every tuple of the relation.
//!
//! Consequently a plan's measured `tuples_fetched` is bounded by the
//! [`crate::StaticCost`] accumulated from its constraints — the invariant
//! the experiments check — while the *expected* charge is what
//! [`crate::CostModel`] estimates from statistics.

use crate::conformance::{violations, Violation};
use crate::constraint::AccessConstraint;
use crate::schema::AccessSchema;
use crate::source::AccessSource;
use si_data::{
    AccessMeter, DataError, Database, DatabaseSchema, MeterSink, MeterSnapshot, Relation, Tuple,
    Value,
};
use std::fmt;

/// Errors raised by access-schema-mediated retrieval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessError {
    /// Underlying storage error.
    Data(DataError),
    /// No access constraint authorises the requested fetch.
    NoConstraint {
        /// Relation that was probed.
        relation: String,
        /// Attributes the caller could bind.
        bound_attributes: Vec<String>,
    },
    /// A full scan was requested on a relation without full access.
    FullScanNotAllowed(String),
    /// The database does not conform to the access schema.
    NotConforming(Vec<Violation>),
    /// The relation is hash-partitioned across shards: no single-relation
    /// surface exists (raised by [`crate::ShardedAccess::source_relation`];
    /// every retrieval primitive routes or fans out instead).
    ShardedRelation(String),
    /// A remote shard server could not serve the probe (wire failure,
    /// disconnected replica, malformed reply).
    Remote(String),
    /// The remote replica does not retain the epoch the read was pinned to:
    /// it is either ahead of replication (`requested > newest`) or past the
    /// replica's retention window (`requested < oldest`).
    EpochUnavailable {
        /// The epoch the read was pinned to.
        requested: u64,
        /// Oldest epoch the replica still retains.
        oldest: u64,
        /// Newest epoch the replica has applied.
        newest: u64,
    },
}

impl fmt::Display for AccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessError::Data(e) => write!(f, "{e}"),
            AccessError::NoConstraint {
                relation,
                bound_attributes,
            } => write!(
                f,
                "no access constraint on `{relation}` is usable with bound attributes {bound_attributes:?}"
            ),
            AccessError::FullScanNotAllowed(r) => {
                write!(f, "relation `{r}` is not declared fully accessible")
            }
            AccessError::NotConforming(vs) => {
                write!(f, "database does not conform to the access schema ({} violations)", vs.len())
            }
            AccessError::ShardedRelation(r) => {
                write!(
                    f,
                    "relation `{r}` is hash-partitioned across shards; use the fetch primitives, \
                     not the single-relation surface"
                )
            }
            AccessError::Remote(msg) => {
                write!(f, "remote shard fetch failed: {msg}")
            }
            AccessError::EpochUnavailable {
                requested,
                oldest,
                newest,
            } => write!(
                f,
                "epoch {requested} unavailable on replica (retains [{oldest}, {newest}])"
            ),
        }
    }
}

impl std::error::Error for AccessError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AccessError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataError> for AccessError {
    fn from(e: DataError) -> Self {
        AccessError::Data(e)
    }
}

/// A database wrapped with an access schema, its indexes and an access meter.
#[derive(Debug)]
pub struct AccessIndexedDatabase {
    db: Database,
    access: AccessSchema,
    meter: AccessMeter,
}

impl AccessIndexedDatabase {
    /// Declares the indexes required by `access` over `db`.
    ///
    /// Declaration is O(1) per index: the physical structures are built by
    /// their first probe and maintained incrementally afterwards, so wrapping
    /// a large instance costs nothing for constraints that are never probed.
    ///
    /// This does *not* require `db` to conform to `access`; use
    /// [`AccessIndexedDatabase::checked`] for the conforming variant.
    pub fn new(mut db: Database, access: AccessSchema) -> Result<Self, AccessError> {
        access.validate(db.schema()).map_err(AccessError::Data)?;
        for (relation, attrs) in access.required_indexes() {
            if !attrs.is_empty() {
                db.declare_index(&relation, &attrs)?;
            }
        }
        Ok(AccessIndexedDatabase {
            db,
            access,
            meter: AccessMeter::new(),
        })
    }

    /// Like [`AccessIndexedDatabase::new`] but additionally verifies that the
    /// database conforms to the access schema.
    pub fn checked(db: Database, access: AccessSchema) -> Result<Self, AccessError> {
        let vs = violations(&db, &access);
        if !vs.is_empty() {
            return Err(AccessError::NotConforming(vs));
        }
        AccessIndexedDatabase::new(db, access)
    }

    /// The underlying database (read only).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the underlying database.  Intended for applying
    /// updates; indexes are maintained by the relation layer.
    pub fn database_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// The access schema.
    pub fn access_schema(&self) -> &AccessSchema {
        &self.access
    }

    /// The access meter charged by every fetch.
    pub fn meter(&self) -> &AccessMeter {
        &self.meter
    }

    /// Collects a fresh statistics snapshot of the wrapped database, ready
    /// for [`crate::CostModel`] / the cost-based planner.  Statistics reads
    /// are not metered: they are planning-time work, not data access.
    pub fn statistics(&self) -> si_data::stats::DatabaseStats {
        self.db.statistics()
    }

    /// Snapshot of the meter (convenience).
    pub fn meter_snapshot(&self) -> MeterSnapshot {
        self.meter.snapshot()
    }

    /// Resets the access meter.
    pub fn reset_meter(&self) {
        self.meter.reset()
    }

    /// Fetches `σ_{attrs = key}(relation)` through an access constraint.
    ///
    /// The fetch is authorised by the tightest constraint whose input
    /// attribute set `X` is contained in `attrs`; the index is probed on `X`
    /// and the remaining `attrs ∖ X` equalities are applied as a post-filter
    /// (all fetched tuples are charged to the meter, matching the paper's
    /// accounting where `σ_{X=a̅}(R)` is what the index returns).
    pub fn fetch(
        &self,
        relation: &str,
        attrs: &[String],
        key: &[Value],
    ) -> Result<Vec<Tuple>, AccessError> {
        AccessSource::fetch(self, relation, attrs, key)
    }

    /// Fetches through a specific constraint (used by planners that have
    /// already chosen their constraint).
    pub fn fetch_via(
        &self,
        constraint: &AccessConstraint,
        relation: &str,
        attrs: &[String],
        key: &[Value],
    ) -> Result<Vec<Tuple>, AccessError> {
        AccessSource::fetch_via(self, constraint, relation, attrs, key)
    }

    /// Fetches the projection `π_onto(σ_{attrs = key}(relation))` through an
    /// embedded constraint.  The distinct projected tuples are what is
    /// charged to the meter, matching the embedded constraint's bound.
    pub fn fetch_embedded(
        &self,
        relation: &str,
        attrs: &[String],
        key: &[Value],
        onto: &[String],
    ) -> Result<Vec<Tuple>, AccessError> {
        AccessSource::fetch_embedded(self, relation, attrs, key, onto)
    }

    /// Membership probe: is `tuple` in `relation`?
    ///
    /// Providing values for *all* attributes identifies at most one tuple, so
    /// a membership probe is always permitted regardless of the access
    /// schema (this is the implicit "controlled by all its free variables"
    /// reading used in Example 4.1 of the paper).  It is charged as one probe
    /// fetching at most one tuple.
    pub fn contains(&self, relation: &str, tuple: &Tuple) -> Result<bool, AccessError> {
        AccessSource::contains(self, relation, tuple)
    }

    /// Retrieves the entire relation.  Only allowed when the access schema
    /// grants full access to it (Proposition 5.5's `A(R)`).
    pub fn full_scan(&self, relation: &str) -> Result<Vec<Tuple>, AccessError> {
        AccessSource::full_scan(self, relation)
    }

    /// Does any constraint authorise probing `relation` when `attrs` can be
    /// bound?
    pub fn can_fetch(&self, relation: &str, attrs: &[String]) -> bool {
        AccessSource::can_fetch(self, relation, attrs)
    }
}

impl AccessSource for AccessIndexedDatabase {
    fn db_schema(&self) -> &DatabaseSchema {
        self.db.schema()
    }

    fn access_schema(&self) -> &AccessSchema {
        &self.access
    }

    fn source_relation(&self, name: &str) -> Result<&Relation, AccessError> {
        self.db.relation(name).map_err(AccessError::Data)
    }

    fn meter_sink(&self) -> &dyn MeterSink {
        &self.meter
    }

    fn full_instance(&self) -> Option<&Database> {
        Some(&self.db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::AccessConstraint;
    use crate::embedded::EmbeddedConstraint;
    use crate::schema::facebook_access_schema;
    use si_data::schema::{social_schema, social_schema_dated};
    use si_data::tuple;

    fn db() -> Database {
        let mut db = Database::empty(social_schema());
        db.insert_all(
            "person",
            vec![
                tuple![1, "ann", "NYC"],
                tuple![2, "bob", "NYC"],
                tuple![3, "cat", "LA"],
            ],
        )
        .unwrap();
        db.insert_all("friend", vec![tuple![1, 2], tuple![1, 3], tuple![2, 3]])
            .unwrap();
        db.insert_all(
            "restr",
            vec![
                tuple![10, "sushi", "NYC", "A"],
                tuple![11, "taco", "LA", "B"],
            ],
        )
        .unwrap();
        db.insert_all("visit", vec![tuple![2, 10], tuple![3, 11]])
            .unwrap();
        db
    }

    #[test]
    fn construction_declares_indexes_and_first_probe_builds_them() {
        let adb = AccessIndexedDatabase::new(db(), facebook_access_schema(5000)).unwrap();
        let friend = adb.database().relation("friend").unwrap();
        assert!(friend.has_index(&["id1".into()]));
        assert!(!friend.has_built_index(&["id1".into()]));
        assert!(adb
            .database()
            .relation("person")
            .unwrap()
            .has_index(&["id".into()]));
        adb.fetch("friend", &["id1".into()], &[Value::int(1)])
            .unwrap();
        assert!(adb
            .database()
            .relation("friend")
            .unwrap()
            .has_built_index(&["id1".into()]));
    }

    #[test]
    fn statistics_snapshot_is_unmetered() {
        let adb = AccessIndexedDatabase::new(db(), facebook_access_schema(5000)).unwrap();
        let stats = adb.statistics();
        assert_eq!(stats.relation("friend").unwrap().rows, 3);
        assert_eq!(adb.meter_snapshot().tuples_fetched, 0);
        assert_eq!(adb.meter_snapshot().index_probes, 0);
    }

    #[test]
    fn checked_rejects_non_conforming_databases() {
        let a = AccessSchema::new().with(AccessConstraint::new("friend", &["id1"], 1, 1));
        let err = AccessIndexedDatabase::checked(db(), a).unwrap_err();
        assert!(matches!(err, AccessError::NotConforming(_)));
        assert!(err.to_string().contains("violations"));
        let ok = AccessIndexedDatabase::checked(db(), facebook_access_schema(5000));
        assert!(ok.is_ok());
    }

    #[test]
    fn construction_validates_schema() {
        let a = AccessSchema::new().with(AccessConstraint::new("enemy", &["x"], 1, 1));
        assert!(matches!(
            AccessIndexedDatabase::new(db(), a),
            Err(AccessError::Data(_))
        ));
    }

    #[test]
    fn fetch_uses_constraint_and_charges_meter() {
        let adb = AccessIndexedDatabase::new(db(), facebook_access_schema(5000)).unwrap();
        let friends = adb
            .fetch("friend", &["id1".into()], &[Value::int(1)])
            .unwrap();
        assert_eq!(friends.len(), 2);
        let snap = adb.meter_snapshot();
        assert_eq!(snap.index_probes, 1);
        assert_eq!(snap.tuples_fetched, 2);
        assert_eq!(snap.time_units, 2);
        assert_eq!(snap.full_scans, 0);
    }

    #[test]
    fn fetch_with_extra_bound_attributes_post_filters() {
        let adb = AccessIndexedDatabase::new(db(), facebook_access_schema(5000)).unwrap();
        // Bind both id and city; only the id constraint exists, city filters.
        let people = adb
            .fetch(
                "person",
                &["id".into(), "city".into()],
                &[Value::int(3), Value::str("LA")],
            )
            .unwrap();
        assert_eq!(people, vec![tuple![3, "cat", "LA"]]);
        let none = adb
            .fetch(
                "person",
                &["id".into(), "city".into()],
                &[Value::int(3), Value::str("NYC")],
            )
            .unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn fetch_without_constraint_is_rejected() {
        let adb = AccessIndexedDatabase::new(db(), facebook_access_schema(5000)).unwrap();
        let err = adb
            .fetch("visit", &["id".into()], &[Value::int(2)])
            .unwrap_err();
        assert!(matches!(err, AccessError::NoConstraint { .. }));
        assert!(err.to_string().contains("visit"));
        assert!(!adb.can_fetch("visit", &["id".into()]));
        assert!(adb.can_fetch("friend", &["id1".into()]));
    }

    #[test]
    fn empty_x_constraint_allows_bounded_whole_relation_fetch() {
        let a = facebook_access_schema(5000).with(AccessConstraint::new("restr", &[], 100, 1));
        let adb = AccessIndexedDatabase::new(db(), a).unwrap();
        let all = adb.fetch("restr", &[], &[]).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(adb.meter().tuples_fetched(), 2);
    }

    #[test]
    fn full_scan_requires_grant() {
        let a = facebook_access_schema(5000).with_full_access("visit");
        let adb = AccessIndexedDatabase::new(db(), a).unwrap();
        assert_eq!(adb.full_scan("visit").unwrap().len(), 2);
        assert_eq!(adb.meter().full_scans(), 1);
        assert!(matches!(
            adb.full_scan("friend"),
            Err(AccessError::FullScanNotAllowed(_))
        ));
    }

    #[test]
    fn fetch_embedded_projects_and_bounds() {
        let mut d = Database::empty(social_schema_dated());
        d.insert_all(
            "visit",
            vec![
                tuple![1, 10, 2013, 5, 1],
                tuple![1, 11, 2013, 5, 1],
                tuple![2, 12, 2013, 6, 2],
                tuple![1, 13, 2014, 1, 1],
            ],
        )
        .unwrap();
        let a = AccessSchema::new().with_embedded(EmbeddedConstraint::new(
            "visit",
            &["yy"],
            &["mm", "dd"],
            366,
            3,
        ));
        let adb = AccessIndexedDatabase::new(d, a).unwrap();
        let dates = adb
            .fetch_embedded(
                "visit",
                &["yy".into()],
                &[Value::int(2013)],
                &["mm".into(), "dd".into()],
            )
            .unwrap();
        // (5,1) appears twice but is projected once; (6,2) once.
        assert_eq!(dates.len(), 2);
        assert_eq!(adb.meter().tuples_fetched(), 2);
        assert_eq!(adb.meter().time_units(), 3);

        // Requesting attributes outside the constraint's Y fails.
        assert!(adb
            .fetch_embedded(
                "visit",
                &["yy".into()],
                &[Value::int(2013)],
                &["rid".into()],
            )
            .is_err());
        // Requesting with unbound X fails.
        assert!(adb
            .fetch_embedded("visit", &["mm".into()], &[Value::int(5)], &["dd".into()])
            .is_err());
    }

    #[test]
    fn membership_probe_is_always_allowed_and_cheap() {
        let adb = AccessIndexedDatabase::new(db(), facebook_access_schema(5000)).unwrap();
        assert!(adb.contains("visit", &tuple![2, 10]).unwrap());
        assert!(!adb.contains("visit", &tuple![9, 9]).unwrap());
        let snap = adb.meter_snapshot();
        assert_eq!(snap.index_probes, 2);
        assert_eq!(snap.tuples_fetched, 1);
        assert!(adb.contains("enemy", &tuple![1]).is_err());
    }

    #[test]
    fn meter_reset_and_snapshot() {
        let adb = AccessIndexedDatabase::new(db(), facebook_access_schema(5000)).unwrap();
        adb.fetch("friend", &["id1".into()], &[Value::int(1)])
            .unwrap();
        assert!(adb.meter_snapshot().tuples_fetched > 0);
        adb.reset_meter();
        assert_eq!(adb.meter_snapshot().tuples_fetched, 0);
    }

    #[test]
    fn database_mut_allows_updates_and_keeps_indexes() {
        let mut adb = AccessIndexedDatabase::new(db(), facebook_access_schema(5000)).unwrap();
        adb.database_mut().insert("friend", tuple![1, 4]).unwrap();
        let friends = adb
            .fetch("friend", &["id1".into()], &[Value::int(1)])
            .unwrap();
        assert_eq!(friends.len(), 3);
    }
}
