//! Access-mediated retrieval over a hash-partitioned store:
//! [`ShardedAccess`], the [`AccessSource`] of the sharded serving layer.
//!
//! A `ShardedAccess` wraps a pinned [`ShardedSnapshotView`] (one coherent
//! vector of per-shard snapshot versions) with an access schema and a
//! per-worker meter, and implements every retrieval primitive by *routing*
//! or *scatter-gathering*:
//!
//! * **Routed probe** — when the probe pushes an equality on the relation's
//!   partition column into the shard-local index probe (the partition
//!   attribute is in the chosen constraint's `X` and bound to a literal
//!   value), every matching tuple lives on one shard by construction, and
//!   that single shard-local probe returns *exactly* the set the unsharded
//!   probe would.  One shard touched, identical accounting.
//! * **Fan-out** — any other fetch probes every shard and concatenates the
//!   results **in shard order** (shard 0 first).  The union of per-shard
//!   matches is exactly the unsharded match set, so the charged tuple count
//!   is identical; only the sequence order may differ (a deterministic
//!   permutation — compare answers sorted).
//!
//! Either way a logical fetch is charged exactly like its unsharded
//! counterpart — one probe, the constraint's time, the matching tuples —
//! so [`si_data::MeterSnapshot`] accounting (and, through it, the paper's fetch
//! bound `M`) stays exact under sharding, and per-worker meters summed by
//! the morsel executor remain exact too.  This "mirror" accounting is what
//! the shard-equivalence harness pins down.
//!
//! ## Routing never guesses
//!
//! Routing fires **only** on a literal equality on the partition column
//! that is part of the pushed-down index probe.  A partition column bound
//! any other way — through an *embedded* constraint's output projection, or
//! as a residual post-filter outside the constraint's `X` — falls back to
//! fan-out: the value either does not exist at probe time (embedded
//! outputs enumerate many partition values) or is not part of the index
//! probe (routing would fetch a shard-local subset and break the mirror
//! accounting).  Wrong-single-shard routing is therefore impossible by
//! construction; the regression tests pin the embedded case.
//!
//! ## Pruned routing (opt-in)
//!
//! [`ShardedAccess::with_pruned_routing`] additionally routes on a literal
//! partition-column equality that the chosen constraint relegates to the
//! residual filter.  Answers are still exact — all result tuples carry the
//! partition value, hence live on the routed shard — but the shard-local
//! index probe now fetches a *subset* of what the unsharded probe would, so
//! accounting is `≤` rather than `=`.  On skewed instances this is the
//! payoff of partitioning (the `sharding` bench measures it); keep it off
//! when exact unsharded-mirror accounting is required.

use crate::constraint::AccessConstraint;
use crate::indexed::AccessError;
use crate::schema::AccessSchema;
use crate::source::{best_embedded, split_probe, AccessSource, ProbeSplit};
use si_data::{
    AccessMeter, DatabaseSchema, MeterSink, Relation, ShardedSnapshotView, Tuple, Value,
};
use std::cell::Cell;
use std::sync::Arc;

/// A pinned sharded view wrapped with an access schema and a per-worker
/// meter: the sharded counterpart of [`crate::SnapshotAccess`].
///
/// Cheap to create (two `Arc` clones) and to [`ShardedAccess::fork`] per
/// morsel worker.  The meter is charged once per *logical* fetch — mirror
/// accounting — while [`ShardedAccess::routed_fetches`] /
/// [`ShardedAccess::fanned_fetches`] count how often routing pinned a
/// single shard versus scattering.
#[derive(Debug)]
pub struct ShardedAccess<M: MeterSink = AccessMeter> {
    view: Arc<ShardedSnapshotView>,
    access: Arc<AccessSchema>,
    meter: M,
    prune_residual_routes: bool,
    routed: Cell<u64>,
    fanned: Cell<u64>,
}

impl<M: MeterSink + Default> ShardedAccess<M> {
    /// Wraps a pinned sharded view with an access schema and a fresh meter.
    pub fn new(view: Arc<ShardedSnapshotView>, access: Arc<AccessSchema>) -> Self {
        ShardedAccess {
            view,
            access,
            meter: M::default(),
            prune_residual_routes: false,
            routed: Cell::new(0),
            fanned: Cell::new(0),
        }
    }

    /// A sibling view over the same pinned shards with a fresh meter — what
    /// each worker thread of a partitioned execution gets.  The routing
    /// policy is inherited; the routing counters start at zero.
    pub fn fork(&self) -> Self {
        ShardedAccess {
            view: Arc::clone(&self.view),
            access: Arc::clone(&self.access),
            meter: M::default(),
            prune_residual_routes: self.prune_residual_routes,
            routed: Cell::new(0),
            fanned: Cell::new(0),
        }
    }
}

impl<M: MeterSink> ShardedAccess<M> {
    /// Wraps a pinned sharded view with an explicit meter.
    pub fn with_meter(view: Arc<ShardedSnapshotView>, access: Arc<AccessSchema>, meter: M) -> Self {
        ShardedAccess {
            view,
            access,
            meter,
            prune_residual_routes: false,
            routed: Cell::new(0),
            fanned: Cell::new(0),
        }
    }

    /// Enables (or disables) pruned routing: literal partition-column
    /// equalities in the *residual* filter also pin the shard.  Answers stay
    /// exact; the meter may charge fewer tuples than the unsharded probe
    /// (see the module docs).
    pub fn with_pruned_routing(mut self, prune: bool) -> Self {
        self.prune_residual_routes = prune;
        self
    }

    /// The pinned sharded view.
    pub fn view(&self) -> &Arc<ShardedSnapshotView> {
        &self.view
    }

    /// The meter charged by this view's fetches.
    pub fn meter(&self) -> &M {
        &self.meter
    }

    /// Logical fetches served by a single routed shard.
    pub fn routed_fetches(&self) -> u64 {
        self.routed.get()
    }

    /// Logical fetches scattered across every shard.
    pub fn fanned_fetches(&self) -> u64 {
        self.fanned.get()
    }

    /// The shard pinned by a literal equality on `relation`'s partition
    /// column among the `(attribute, value)` probe pairs, restricted to
    /// attributes in `index_part`; `None` forces fan-out.
    fn route_for(
        &self,
        relation: &str,
        index_attrs: &[String],
        index_key: &[Value],
    ) -> Option<usize> {
        let partition = self.view.partition_attribute(relation)?;
        index_attrs
            .iter()
            .position(|a| a == partition)
            .and_then(|i| self.view.route_value(relation, index_key[i]))
    }

    /// Pruned-mode fallback: a literal partition-column equality in the
    /// residual filter also pins the shard.
    fn route_for_residual(&self, relation: &str, filter: &[(usize, Value)]) -> Option<usize> {
        if !self.prune_residual_routes {
            return None;
        }
        let position = self.view.partition_position(relation)?;
        filter
            .iter()
            .find(|(p, _)| *p == position)
            .and_then(|(_, v)| self.view.route_value(relation, *v))
    }

    /// Runs the shared [`ProbeSplit`] index probe over the routed shard, or
    /// over every shard in shard order, concatenating the fetched tuples.
    fn gather_split(
        &self,
        relation: &str,
        target: Option<usize>,
        split: &ProbeSplit,
    ) -> Result<Vec<Tuple>, AccessError> {
        self.gather(relation, target, |rel, out| {
            out.extend(split.probe(rel)?);
            Ok(())
        })
    }

    /// Runs `probe` over the routed shard's relation, or over every shard's
    /// relation in shard order when `target` is `None`, collecting into one
    /// vector.
    fn gather(
        &self,
        relation: &str,
        target: Option<usize>,
        mut probe: impl FnMut(&Relation, &mut Vec<Tuple>) -> Result<(), AccessError>,
    ) -> Result<Vec<Tuple>, AccessError> {
        let mut out = Vec::new();
        match target {
            Some(shard) => {
                self.routed.set(self.routed.get() + 1);
                let rel = self.view.shard(shard).relation(relation)?;
                probe(rel, &mut out)?;
            }
            None => {
                self.fanned.set(self.fanned.get() + 1);
                for shard in self.view.shards() {
                    let rel = shard.relation(relation)?;
                    probe(rel, &mut out)?;
                }
            }
        }
        Ok(out)
    }
}

impl<M: MeterSink> AccessSource for ShardedAccess<M> {
    fn db_schema(&self) -> &DatabaseSchema {
        self.view.schema()
    }

    fn access_schema(&self) -> &AccessSchema {
        &self.access
    }

    /// There is no single relation behind a sharded source; every retrieval
    /// primitive is overridden to route or fan out instead.
    fn source_relation(&self, name: &str) -> Result<&Relation, AccessError> {
        Err(AccessError::ShardedRelation(name.to_owned()))
    }

    fn meter_sink(&self) -> &dyn MeterSink {
        &self.meter
    }

    fn fetch_via(
        &self,
        constraint: &AccessConstraint,
        relation: &str,
        attrs: &[String],
        key: &[Value],
    ) -> Result<Vec<Tuple>, AccessError> {
        debug_assert_eq!(constraint.relation, relation);
        let rel_schema = self.view.schema().relation(relation)?;
        // The exact split the unsharded surface runs (shared code, so the
        // mirror-accounting guarantee cannot drift): the constraint's X
        // forms the index key, the rest is a residual filter.
        let split = split_probe(&constraint.on, rel_schema, attrs, key)?;

        let target = self
            .route_for(relation, &split.index_attrs, &split.index_key)
            .or_else(|| self.route_for_residual(relation, &split.filter));

        self.meter.add_probe();
        self.meter.add_time(constraint.time);

        let fetched = self.gather_split(relation, target, &split)?;
        self.meter.add_tuples(fetched.len() as u64);

        Ok(fetched
            .into_iter()
            .filter(|t| split.residual_keeps(t))
            .collect())
    }

    fn fetch_embedded(
        &self,
        relation: &str,
        attrs: &[String],
        key: &[Value],
        onto: &[String],
    ) -> Result<Vec<Tuple>, AccessError> {
        // Constraint selection, probe split and the projection/dedup tail
        // are the unsharded surface's own helpers, so the charged count is
        // the unsharded one by construction.
        let constraint = best_embedded(&self.access, relation, attrs, onto)?;
        let rel_schema = self.view.schema().relation(relation)?;
        let positions = rel_schema.positions_of(onto)?;
        let split = split_probe(&constraint.from, rel_schema, attrs, key)?;

        // Route only on the pushed-down `X[ ]` part.  The partition column
        // appearing in `onto` binds it through the constraint's *output* —
        // its values vary per matching tuple, so single-shard routing would
        // be wrong; fan out (this is the regression the tests pin).
        let target = self.route_for(relation, &split.index_attrs, &split.index_key);

        self.meter.add_probe();
        self.meter.add_time(constraint.time);

        // Cross-shard fetch in shard-merged order, then one dedup over the
        // merged sequence: the deduplicated *set* equals the unsharded one.
        let fetched = self.gather_split(relation, target, &split)?;
        let out = split.project_dedup(fetched, &positions);
        self.meter.add_tuples(out.len() as u64);
        Ok(out)
    }

    fn contains(&self, relation: &str, tuple: &Tuple) -> Result<bool, AccessError> {
        // A membership probe carries the whole tuple, so its home shard is
        // always known — routing is total here.
        let shard = self.view.route_tuple(relation, tuple);
        let rel = self.view.shard(shard).relation(relation)?;
        self.meter.add_probe();
        self.meter.add_time(1);
        let found = rel.contains(tuple);
        if found {
            self.meter.add_tuples(1);
        }
        Ok(found)
    }

    fn full_scan(&self, relation: &str) -> Result<Vec<Tuple>, AccessError> {
        if !self.access.has_full_access(relation) {
            return Err(AccessError::FullScanNotAllowed(relation.to_owned()));
        }
        let mut out = Vec::new();
        for shard in self.view.shards() {
            out.extend(shard.relation(relation)?.iter().cloned());
        }
        self.meter.add_scan();
        self.meter.add_tuples(out.len() as u64);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::facebook_access_schema;
    use crate::{AccessIndexedDatabase, EmbeddedConstraint, SnapshotAccess};
    use si_data::schema::social_schema;
    use si_data::{tuple, Database, Delta, PartitionMap, ShardedSnapshotStore, SnapshotStore};

    fn social_partition() -> PartitionMap {
        PartitionMap::new()
            .with("person", "id")
            .with("friend", "id1")
            .with("visit", "id")
            .with("restr", "rid")
    }

    fn db() -> Database {
        let mut db = Database::empty(social_schema());
        for i in 0..30i64 {
            let city = if i % 3 == 0 { "NYC" } else { "LA" };
            db.insert("person", tuple![i, format!("p{i}"), city])
                .unwrap();
            db.insert("friend", tuple![0, i]).unwrap();
            db.insert("visit", tuple![i, 100 + i % 5]).unwrap();
        }
        for r in 0..5i64 {
            db.insert("restr", tuple![100 + r, format!("r{r}"), "NYC", "A"])
                .unwrap();
        }
        db
    }

    fn access() -> AccessSchema {
        facebook_access_schema(5000)
            .with(AccessConstraint::new("visit", &["id"], 1000, 1))
            .with(AccessConstraint::new("visit", &["rid"], 1000, 1))
    }

    fn declared(mut db: Database, access: &AccessSchema) -> Database {
        for (relation, attrs) in access.required_indexes() {
            if !attrs.is_empty() {
                db.declare_index(&relation, &attrs).unwrap();
            }
        }
        db
    }

    fn sharded(shards: usize) -> (Arc<ShardedSnapshotView>, Arc<AccessSchema>) {
        let access = access();
        let store =
            ShardedSnapshotStore::new(declared(db(), &access), social_partition(), shards).unwrap();
        (store.pin(), Arc::new(access))
    }

    fn unsharded() -> (SnapshotStore, Arc<AccessSchema>) {
        let access = access();
        (
            SnapshotStore::new(declared(db(), &access)),
            Arc::new(access),
        )
    }

    #[test]
    fn routed_probe_touches_one_shard_and_mirrors_unsharded_accounting() {
        let (store, access) = unsharded();
        let plain: SnapshotAccess = SnapshotAccess::new(store.pin(), access.clone());
        let expect = plain
            .fetch("friend", &["id1".into()], &[Value::int(0)])
            .unwrap();
        for shards in [1usize, 2, 3, 8] {
            let (view, access) = sharded(shards);
            let sa: ShardedAccess = ShardedAccess::new(view, access);
            let got = sa
                .fetch("friend", &["id1".into()], &[Value::int(0)])
                .unwrap();
            // id1 is the partition column and part of the constraint's X:
            // routed, and the fetched set equals the unsharded one exactly
            // (same order too — one shard holds every id1 = 0 tuple).
            assert_eq!(got, expect, "shards={shards}");
            assert_eq!(sa.routed_fetches(), 1);
            assert_eq!(sa.fanned_fetches(), 0);
            assert_eq!(
                sa.meter_snapshot(),
                plain.meter_snapshot(),
                "shards={shards}"
            );
        }
    }

    #[test]
    fn unbound_partition_column_fans_out_with_identical_counts() {
        let (store, access) = unsharded();
        let plain: SnapshotAccess = SnapshotAccess::new(store.pin(), access.clone());
        // visit is partitioned by id; probing by rid cannot route.
        let mut expect = plain
            .fetch("visit", &["rid".into()], &[Value::int(100)])
            .unwrap();
        expect.sort();
        for shards in [2usize, 3, 8] {
            let (view, access) = sharded(shards);
            let sa: ShardedAccess = ShardedAccess::new(view, access);
            let mut got = sa
                .fetch("visit", &["rid".into()], &[Value::int(100)])
                .unwrap();
            got.sort();
            assert_eq!(got, expect, "shards={shards}");
            assert_eq!(sa.fanned_fetches(), 1);
            assert_eq!(sa.routed_fetches(), 0);
            assert_eq!(
                sa.meter_snapshot(),
                plain.meter_snapshot(),
                "shards={shards}"
            );
        }
    }

    #[test]
    fn residual_partition_equality_fans_out_under_mirror_accounting() {
        // Probe visit by (rid, id) through the rid constraint: id — the
        // partition column — is a residual literal, not part of the index
        // probe.  Mirror mode must fan out and charge exactly what the
        // unsharded probe charges (all rid matches, filtered afterwards).
        let (store, access) = unsharded();
        let plain: SnapshotAccess = SnapshotAccess::new(store.pin(), access.clone());
        let rid_constraint = access
            .constraints()
            .iter()
            .find(|c| c.relation == "visit" && c.is_on(&["rid".into()]))
            .unwrap()
            .clone();
        let attrs = ["rid".to_string(), "id".to_string()];
        let key = [Value::int(100), Value::int(5)];
        let expect = plain
            .fetch_via(&rid_constraint, "visit", &attrs, &key)
            .unwrap();
        let (view, access2) = sharded(4);
        let sa: ShardedAccess = ShardedAccess::new(view.clone(), access2.clone());
        let mut got = sa
            .fetch_via(&rid_constraint, "visit", &attrs, &key)
            .unwrap();
        got.sort();
        let mut expect_sorted = expect.clone();
        expect_sorted.sort();
        assert_eq!(got, expect_sorted);
        assert_eq!(sa.fanned_fetches(), 1);
        assert_eq!(sa.meter_snapshot(), plain.meter_snapshot());

        // Pruned mode routes on the residual literal: same answers, fewer
        // (or equal) tuples fetched, one shard touched.
        let pruned: ShardedAccess = ShardedAccess::new(view, access2).with_pruned_routing(true);
        let mut got = pruned
            .fetch_via(&rid_constraint, "visit", &attrs, &key)
            .unwrap();
        got.sort();
        assert_eq!(got, expect_sorted);
        assert_eq!(pruned.routed_fetches(), 1);
        assert!(pruned.meter_snapshot().tuples_fetched <= plain.meter_snapshot().tuples_fetched);
    }

    #[test]
    fn embedded_output_binding_of_the_partition_column_fans_out() {
        // Embedded constraint visit(rid → id): the partition column (id) is
        // bound through the constraint's *output*, not a literal — a router
        // that trusted "id is bound" would pick one shard and silently lose
        // every projection living elsewhere.  The fetch must fan out.
        let access = Arc::new(access().with_embedded(EmbeddedConstraint::new(
            "visit",
            &["rid"],
            &["id"],
            1000,
            1,
        )));
        let store = SnapshotStore::new(declared(db(), &access));
        let plain: SnapshotAccess = SnapshotAccess::new(store.pin(), access.clone());
        let mut expect = plain
            .fetch_embedded("visit", &["rid".into()], &[Value::int(100)], &["id".into()])
            .unwrap();
        expect.sort();
        assert!(expect.len() > 1, "needs projections on several shards");
        for shards in [2usize, 3, 8] {
            let sharded_store =
                ShardedSnapshotStore::new(declared(db(), &access), social_partition(), shards)
                    .unwrap();
            let sa: ShardedAccess = ShardedAccess::new(sharded_store.pin(), access.clone());
            let mut got = sa
                .fetch_embedded("visit", &["rid".into()], &[Value::int(100)], &["id".into()])
                .unwrap();
            got.sort();
            assert_eq!(got, expect, "shards={shards}");
            assert_eq!(sa.fanned_fetches(), 1, "must fan out, never route");
            assert_eq!(sa.routed_fetches(), 0);
            // Cross-shard dedup keeps the charged count identical.
            assert_eq!(
                sa.meter_snapshot(),
                plain.meter_snapshot(),
                "shards={shards}"
            );
        }
    }

    #[test]
    fn contains_routes_to_the_home_shard() {
        let (view, access) = sharded(3);
        let sa: ShardedAccess = ShardedAccess::new(view, access);
        assert!(sa.contains("friend", &tuple![0, 7]).unwrap());
        assert!(!sa.contains("friend", &tuple![9, 9]).unwrap());
        let snap = sa.meter_snapshot();
        assert_eq!(snap.index_probes, 2);
        assert_eq!(snap.tuples_fetched, 1);
    }

    #[test]
    fn full_scan_merges_in_shard_order_and_is_gated() {
        let (view, access) = sharded(3);
        let sa: ShardedAccess = ShardedAccess::new(view.clone(), access.clone());
        assert!(matches!(
            sa.full_scan("friend"),
            Err(AccessError::FullScanNotAllowed(_))
        ));
        let open = Arc::new((*access).clone().with_full_access("friend"));
        let sa: ShardedAccess = ShardedAccess::new(view, open);
        let rows = sa.full_scan("friend").unwrap();
        assert_eq!(rows.len(), 30);
        let snap = sa.meter_snapshot();
        assert_eq!(snap.full_scans, 1);
        assert_eq!(snap.tuples_fetched, 30);
        // Shard-order merge: shard 0's rows first (each shard preserves the
        // global insertion order restricted to itself).
        let view = sa.view();
        let mut expected = Vec::new();
        for shard in view.shards() {
            expected.extend(shard.relation("friend").unwrap().iter().cloned());
        }
        assert_eq!(rows, expected);
    }

    #[test]
    fn source_relation_is_refused_and_full_instance_absent() {
        let (view, access) = sharded(2);
        let sa: ShardedAccess = ShardedAccess::new(view, access);
        assert!(matches!(
            sa.source_relation("friend"),
            Err(AccessError::ShardedRelation(_))
        ));
        assert!(sa.full_instance().is_none());
    }

    #[test]
    fn forked_views_share_shards_but_not_meters_or_counters() {
        let (view, access) = sharded(2);
        let sa: ShardedAccess = ShardedAccess::new(view, access).with_pruned_routing(true);
        let forked = sa.fork();
        forked
            .fetch("friend", &["id1".into()], &[Value::int(0)])
            .unwrap();
        assert_eq!(forked.meter_snapshot().index_probes, 1);
        assert_eq!(forked.routed_fetches(), 1);
        assert_eq!(sa.meter_snapshot().index_probes, 0);
        assert_eq!(sa.routed_fetches(), 0);
        assert!(Arc::ptr_eq(sa.view(), forked.view()));
        assert!(forked.prune_residual_routes, "fork inherits the policy");
    }

    #[test]
    fn pinned_views_ignore_later_commits() {
        let access = access();
        let store =
            ShardedSnapshotStore::new(declared(db(), &access), social_partition(), 3).unwrap();
        let access = Arc::new(access);
        let pinned: ShardedAccess = ShardedAccess::new(store.pin(), access.clone());
        store
            .commit(Delta::new().insert("friend", tuple![0, 99]))
            .unwrap();
        let fresh: ShardedAccess = ShardedAccess::new(store.pin(), access);
        let old = pinned
            .fetch("friend", &["id1".into()], &[Value::int(0)])
            .unwrap();
        let new = fresh
            .fetch("friend", &["id1".into()], &[Value::int(0)])
            .unwrap();
        assert_eq!(old.len(), 30);
        assert_eq!(new.len(), 31);
        assert_eq!(pinned.view().epoch(), 0);
        assert_eq!(fresh.view().epoch(), 1);
    }

    #[test]
    fn sharded_fetch_agrees_with_the_owned_surface() {
        // The same queries against AccessIndexedDatabase (the original
        // owned surface) and an 8-way sharded view: identical sets and
        // identical accounting.
        let access = access();
        let adb = AccessIndexedDatabase::new(db(), access.clone()).unwrap();
        let (view, shared_access) = sharded(8);
        let sa: ShardedAccess = ShardedAccess::new(view, shared_access);
        for p in 0..10i64 {
            let mut a = adb
                .fetch("visit", &["id".into()], &[Value::int(p)])
                .unwrap();
            let mut b = sa.fetch("visit", &["id".into()], &[Value::int(p)]).unwrap();
            a.sort();
            b.sort();
            assert_eq!(a, b, "p={p}");
        }
        assert_eq!(adb.meter_snapshot(), sa.meter_snapshot());
    }
}
