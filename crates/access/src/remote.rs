//! Access-mediated retrieval over *remote* shard replicas:
//! [`ReplicatedAccess`], the [`AccessSource`] of the replicated serving
//! plane.
//!
//! A `ReplicatedAccess` is [`crate::ShardedAccess`]'s transport-backed
//! twin.  Where `ShardedAccess` holds a pinned
//! [`si_data::ShardedSnapshotView`] and probes shard relations in-process,
//! `ReplicatedAccess` holds a [`PartitionRouter`] (the same routing state a
//! sharded store derives from its partition map) and a [`ShardProber`] —
//! anything that can run the raw shard-local index probe, typically a set
//! of wire clients talking to shard replica servers.
//!
//! ## The mirror split survives the wire
//!
//! The division of labour is chosen so transport-backed accounting is
//! *byte-identical* to in-process sharded accounting, not merely close:
//!
//! * The **replica** runs only [`crate::source::raw_index_probe`] — the
//!   pushed-down `select_eq` (or bounded iteration for `X = ∅`) — and
//!   returns the raw matches in shard-local order.  No residual filtering,
//!   no projection, no metering happens remotely.
//! * The **primary** (this type) does everything else exactly as
//!   `ShardedAccess` does: the `split_probe` decomposition, routing on
//!   literal partition-column equalities in the pushed-down part, the
//!   probe/time/tuple charges at the same points, residual filtering and
//!   embedded projection-dedup on the gathered rows.
//!
//! Since both surfaces share `split_probe`, `raw_index_probe`, the routing
//! state and the charge points, the fetched sets and
//! [`si_data::MeterSnapshot`]s cannot drift — the replication-equivalence
//! harness pins this with the sharded harness's own workload.
//!
//! Routing decisions are made against the router, never against data, so
//! they are exactly the decisions `ShardedAccess` makes
//! ([`PartitionRouter::attribute`] answers the same question
//! `ShardedSnapshotView::partition_attribute` does).  Fan-out gathers in
//! shard order (shard 0 first) like the in-process surface.

use crate::constraint::AccessConstraint;
use crate::indexed::AccessError;
use crate::schema::AccessSchema;
use crate::source::{best_embedded, split_probe, AccessSource, ProbeSplit};
use si_data::{AccessMeter, DatabaseSchema, MeterSink, PartitionRouter, Relation, Tuple, Value};
use std::cell::Cell;
use std::sync::Arc;

/// The raw shard-probe surface a [`ReplicatedAccess`] gathers from — one
/// replica server per shard, behind any transport.
///
/// Implementations execute the *pushed-down* probe only (see
/// [`crate::source::raw_index_probe`]); residual filtering, projection and
/// metering stay on the primary.  Probes are pinned to the epoch the
/// implementation was created for — a replica that does not retain that
/// epoch fails the probe with [`AccessError::EpochUnavailable`] rather than
/// serving from a different version.
pub trait ShardProber {
    /// Number of shards (must equal the router's).
    fn shard_count(&self) -> usize;

    /// Runs the pushed-down index probe on one shard's pinned version,
    /// returning raw matches in shard-local order.
    fn probe(
        &self,
        shard: usize,
        relation: &str,
        attrs: &[String],
        key: &[Value],
    ) -> Result<Vec<Tuple>, AccessError>;

    /// Membership probe on one shard's pinned version.
    fn contains(&self, shard: usize, relation: &str, tuple: &Tuple) -> Result<bool, AccessError>;

    /// Full iteration of one shard's relation (the fan-out leg of a gated
    /// full scan).
    fn scan(&self, shard: usize, relation: &str) -> Result<Vec<Tuple>, AccessError>;
}

/// An epoch-pinned, transport-backed [`AccessSource`] over replicated
/// shards: the replicated counterpart of [`crate::ShardedAccess`].
///
/// Cheap to create per request (three `Arc` clones plus the prober); the
/// meter is charged once per *logical* fetch with the exact unsharded
/// amounts (mirror accounting), while [`ReplicatedAccess::routed_fetches`]
/// / [`ReplicatedAccess::fanned_fetches`] count how often routing pinned a
/// single replica versus scattering to all of them.
#[derive(Debug)]
pub struct ReplicatedAccess<P: ShardProber, M: MeterSink = AccessMeter> {
    schema: Arc<DatabaseSchema>,
    access: Arc<AccessSchema>,
    router: Arc<PartitionRouter>,
    prober: P,
    meter: M,
    prune_residual_routes: bool,
    routed: Cell<u64>,
    fanned: Cell<u64>,
}

impl<P: ShardProber, M: MeterSink + Default> ReplicatedAccess<P, M> {
    /// Wraps a prober with the routing state and schemas it serves.
    ///
    /// `router` must have been derived from the same partition map and
    /// shard count the replicas were built with — routing decisions are
    /// made here, against the router, and trusted by the replicas.
    pub fn new(
        schema: Arc<DatabaseSchema>,
        access: Arc<AccessSchema>,
        router: Arc<PartitionRouter>,
        prober: P,
    ) -> Self {
        debug_assert_eq!(router.shards(), prober.shard_count());
        ReplicatedAccess {
            schema,
            access,
            router,
            prober,
            meter: M::default(),
            prune_residual_routes: false,
            routed: Cell::new(0),
            fanned: Cell::new(0),
        }
    }
}

impl<P: ShardProber, M: MeterSink> ReplicatedAccess<P, M> {
    /// Enables (or disables) pruned routing — same contract as
    /// [`crate::ShardedAccess::with_pruned_routing`]: answers stay exact,
    /// accounting becomes `≤` the unsharded mirror.
    pub fn with_pruned_routing(mut self, prune: bool) -> Self {
        self.prune_residual_routes = prune;
        self
    }

    /// The routing state shared with the replicas.
    pub fn router(&self) -> &Arc<PartitionRouter> {
        &self.router
    }

    /// The prober behind this source.
    pub fn prober(&self) -> &P {
        &self.prober
    }

    /// The meter charged by this view's fetches.
    pub fn meter(&self) -> &M {
        &self.meter
    }

    /// Logical fetches served by a single routed replica.
    pub fn routed_fetches(&self) -> u64 {
        self.routed.get()
    }

    /// Logical fetches scattered across every replica.
    pub fn fanned_fetches(&self) -> u64 {
        self.fanned.get()
    }

    /// The shard pinned by a literal equality on `relation`'s partition
    /// column within the pushed-down probe part; `None` forces fan-out.
    /// Mirrors `ShardedAccess::route_for` decision-for-decision.
    fn route_for(
        &self,
        relation: &str,
        index_attrs: &[String],
        index_key: &[Value],
    ) -> Option<usize> {
        let partition = self.router.attribute(relation)?;
        index_attrs
            .iter()
            .position(|a| a == partition)
            .and_then(|i| self.router.route_value(relation, index_key[i]))
    }

    /// Pruned-mode fallback: a literal partition-column equality in the
    /// residual filter also pins the shard.
    fn route_for_residual(&self, relation: &str, filter: &[(usize, Value)]) -> Option<usize> {
        if !self.prune_residual_routes {
            return None;
        }
        let position = self.router.position(relation)?;
        filter
            .iter()
            .find(|(p, _)| *p == position)
            .and_then(|(_, v)| self.router.route_value(relation, *v))
    }

    /// Runs the pushed-down probe on the routed replica, or on every
    /// replica in shard order, concatenating the raw fetched tuples.
    fn gather_split(
        &self,
        relation: &str,
        target: Option<usize>,
        split: &ProbeSplit,
    ) -> Result<Vec<Tuple>, AccessError> {
        match target {
            Some(shard) => {
                self.routed.set(self.routed.get() + 1);
                self.prober
                    .probe(shard, relation, &split.index_attrs, &split.index_key)
            }
            None => {
                self.fanned.set(self.fanned.get() + 1);
                let mut out = Vec::new();
                for shard in 0..self.prober.shard_count() {
                    out.extend(self.prober.probe(
                        shard,
                        relation,
                        &split.index_attrs,
                        &split.index_key,
                    )?);
                }
                Ok(out)
            }
        }
    }
}

impl<P: ShardProber, M: MeterSink> AccessSource for ReplicatedAccess<P, M> {
    fn db_schema(&self) -> &DatabaseSchema {
        &self.schema
    }

    fn access_schema(&self) -> &AccessSchema {
        &self.access
    }

    /// There is no local relation behind a replicated source; every
    /// retrieval primitive is overridden to route or fan out over the wire.
    fn source_relation(&self, name: &str) -> Result<&Relation, AccessError> {
        Err(AccessError::ShardedRelation(name.to_owned()))
    }

    fn meter_sink(&self) -> &dyn MeterSink {
        &self.meter
    }

    fn fetch_via(
        &self,
        constraint: &AccessConstraint,
        relation: &str,
        attrs: &[String],
        key: &[Value],
    ) -> Result<Vec<Tuple>, AccessError> {
        debug_assert_eq!(constraint.relation, relation);
        let rel_schema = self.schema.relation(relation)?;
        // The same split the unsharded and sharded surfaces run; the
        // replica executes only its pushed-down part.
        let split = split_probe(&constraint.on, rel_schema, attrs, key)?;

        let target = self
            .route_for(relation, &split.index_attrs, &split.index_key)
            .or_else(|| self.route_for_residual(relation, &split.filter));

        self.meter.add_probe();
        self.meter.add_time(constraint.time);

        let fetched = self.gather_split(relation, target, &split)?;
        self.meter.add_tuples(fetched.len() as u64);

        Ok(fetched
            .into_iter()
            .filter(|t| split.residual_keeps(t))
            .collect())
    }

    fn fetch_embedded(
        &self,
        relation: &str,
        attrs: &[String],
        key: &[Value],
        onto: &[String],
    ) -> Result<Vec<Tuple>, AccessError> {
        let constraint = best_embedded(&self.access, relation, attrs, onto)?;
        let rel_schema = self.schema.relation(relation)?;
        let positions = rel_schema.positions_of(onto)?;
        let split = split_probe(&constraint.from, rel_schema, attrs, key)?;

        // Route only on the pushed-down part — an embedded output binding
        // of the partition column enumerates many partition values, so it
        // must fan out (same rule, and same regression, as ShardedAccess).
        let target = self.route_for(relation, &split.index_attrs, &split.index_key);

        self.meter.add_probe();
        self.meter.add_time(constraint.time);

        let fetched = self.gather_split(relation, target, &split)?;
        let out = split.project_dedup(fetched, &positions);
        self.meter.add_tuples(out.len() as u64);
        Ok(out)
    }

    fn contains(&self, relation: &str, tuple: &Tuple) -> Result<bool, AccessError> {
        // A membership probe carries the whole tuple: routing is total.
        let shard = self.router.route(relation, tuple);
        self.meter.add_probe();
        self.meter.add_time(1);
        let found = self.prober.contains(shard, relation, tuple)?;
        if found {
            self.meter.add_tuples(1);
        }
        Ok(found)
    }

    fn full_scan(&self, relation: &str) -> Result<Vec<Tuple>, AccessError> {
        if !self.access.has_full_access(relation) {
            return Err(AccessError::FullScanNotAllowed(relation.to_owned()));
        }
        let mut out = Vec::new();
        for shard in 0..self.prober.shard_count() {
            out.extend(self.prober.scan(shard, relation)?);
        }
        self.meter.add_scan();
        self.meter.add_tuples(out.len() as u64);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::facebook_access_schema;
    use crate::source::raw_index_probe;
    use crate::ShardedAccess;
    use si_data::schema::social_schema;
    use si_data::{tuple, Database, PartitionMap, ShardedSnapshotStore, ShardedSnapshotView};

    /// An in-process prober over a pinned sharded view: exactly what a wire
    /// client does, minus the wire.  Used to pin `ReplicatedAccess` against
    /// `ShardedAccess` without an engine.
    struct LocalProber {
        view: Arc<ShardedSnapshotView>,
    }

    impl ShardProber for LocalProber {
        fn shard_count(&self) -> usize {
            self.view.shard_count()
        }

        fn probe(
            &self,
            shard: usize,
            relation: &str,
            attrs: &[String],
            key: &[Value],
        ) -> Result<Vec<Tuple>, AccessError> {
            raw_index_probe(self.view.shard(shard).relation(relation)?, attrs, key)
        }

        fn contains(
            &self,
            shard: usize,
            relation: &str,
            tuple: &Tuple,
        ) -> Result<bool, AccessError> {
            Ok(self.view.shard(shard).relation(relation)?.contains(tuple))
        }

        fn scan(&self, shard: usize, relation: &str) -> Result<Vec<Tuple>, AccessError> {
            Ok(self
                .view
                .shard(shard)
                .relation(relation)?
                .iter()
                .cloned()
                .collect())
        }
    }

    fn partition() -> PartitionMap {
        PartitionMap::new()
            .with("person", "id")
            .with("friend", "id1")
            .with("visit", "id")
            .with("restr", "rid")
    }

    fn db() -> Database {
        let mut db = Database::empty(social_schema());
        for i in 0..30i64 {
            let city = if i % 3 == 0 { "NYC" } else { "LA" };
            db.insert("person", tuple![i, format!("p{i}"), city])
                .unwrap();
            db.insert("friend", tuple![0, i]).unwrap();
            db.insert("visit", tuple![i, 100 + i % 5]).unwrap();
        }
        db
    }

    fn surfaces(
        shards: usize,
    ) -> (
        ShardedAccess,
        ReplicatedAccess<LocalProber>,
        Arc<ShardedSnapshotView>,
    ) {
        let access = facebook_access_schema(5000)
            .with(AccessConstraint::new("visit", &["id"], 1000, 1))
            .with(AccessConstraint::new("visit", &["rid"], 1000, 1));
        let mut db = db();
        for (relation, attrs) in access.required_indexes() {
            if !attrs.is_empty() {
                db.declare_index(&relation, &attrs).unwrap();
            }
        }
        let schema = Arc::new(db.schema().clone());
        let router = Arc::new(partition().router(&schema, shards).unwrap());
        let store = ShardedSnapshotStore::new(db, partition(), shards).unwrap();
        let view = store.pin();
        let access = Arc::new(access);
        let sharded = ShardedAccess::new(view.clone(), access.clone());
        let replicated =
            ReplicatedAccess::new(schema, access, router, LocalProber { view: view.clone() });
        (sharded, replicated, view)
    }

    #[test]
    fn replicated_fetches_mirror_sharded_exactly() {
        for shards in [1usize, 2, 3, 8] {
            let (sharded, replicated, _) = surfaces(shards);
            // Routed: id1 is friend's partition column.
            let a = sharded
                .fetch("friend", &["id1".into()], &[Value::int(0)])
                .unwrap();
            let b = replicated
                .fetch("friend", &["id1".into()], &[Value::int(0)])
                .unwrap();
            assert_eq!(a, b, "shards={shards}");
            // Fanned: probing visit by rid cannot route.
            let a = sharded
                .fetch("visit", &["rid".into()], &[Value::int(100)])
                .unwrap();
            let b = replicated
                .fetch("visit", &["rid".into()], &[Value::int(100)])
                .unwrap();
            assert_eq!(a, b, "shards={shards} (same shard-order concat)");
            assert_eq!(sharded.meter_snapshot(), replicated.meter_snapshot());
            assert_eq!(sharded.routed_fetches(), replicated.routed_fetches());
            assert_eq!(sharded.fanned_fetches(), replicated.fanned_fetches());
            assert_eq!(replicated.routed_fetches(), 1);
            assert_eq!(replicated.fanned_fetches(), 1);
        }
    }

    #[test]
    fn contains_and_scan_mirror_sharded() {
        let (sharded, replicated, _) = surfaces(3);
        assert!(replicated.contains("friend", &tuple![0, 7]).unwrap());
        assert!(!replicated.contains("friend", &tuple![9, 9]).unwrap());
        sharded.contains("friend", &tuple![0, 7]).unwrap();
        sharded.contains("friend", &tuple![9, 9]).unwrap();
        assert_eq!(sharded.meter_snapshot(), replicated.meter_snapshot());

        assert!(matches!(
            replicated.full_scan("friend"),
            Err(AccessError::FullScanNotAllowed(_))
        ));
        assert!(matches!(
            replicated.source_relation("friend"),
            Err(AccessError::ShardedRelation(_))
        ));
    }

    #[test]
    fn prober_failures_surface_as_errors_not_partial_answers() {
        struct Failing {
            down: usize,
        }
        impl ShardProber for Failing {
            fn shard_count(&self) -> usize {
                2
            }
            fn probe(
                &self,
                shard: usize,
                _relation: &str,
                _attrs: &[String],
                _key: &[Value],
            ) -> Result<Vec<Tuple>, AccessError> {
                if shard == self.down {
                    Err(AccessError::Remote("replica is down".into()))
                } else {
                    Ok(vec![tuple![0, 1]])
                }
            }
            fn contains(
                &self,
                _shard: usize,
                _relation: &str,
                _tuple: &Tuple,
            ) -> Result<bool, AccessError> {
                Err(AccessError::Remote("down".into()))
            }
            fn scan(&self, _shard: usize, _relation: &str) -> Result<Vec<Tuple>, AccessError> {
                Err(AccessError::Remote("down".into()))
            }
        }
        let access = Arc::new(facebook_access_schema(5000).with(AccessConstraint::new(
            "friend",
            &["id2"],
            5000,
            1,
        )));
        let schema = Arc::new(social_schema());
        let router = Arc::new(partition().router(&schema, 2).unwrap());
        // The replica that is *not* home to `friend` id1 = 0 goes down, so
        // the routed probe below still reaches a healthy shard.
        let home = router.route_value("friend", Value::int(0)).unwrap();
        let replicated: ReplicatedAccess<Failing> =
            ReplicatedAccess::new(schema, access, router, Failing { down: 1 - home });
        // visit is probed by rid → fan-out → shard 1's failure poisons the
        // whole fetch (never a silent partial answer)...
        let err = replicated
            .fetch("friend", &["id2".into()], &[Value::int(1)])
            .unwrap_err();
        assert!(matches!(err, AccessError::Remote(_)), "{err}");
        // ...while a routed probe to the healthy shard still serves.
        let ok = replicated
            .fetch("friend", &["id1".into()], &[Value::int(0)])
            .unwrap();
        assert_eq!(ok.len(), 1);
    }
}
