//! # `si-access` — access schemas
//!
//! Implementation of the access schemas of Section 4 of *"On Scale
//! Independence for Querying Big Data"* (Fan, Geerts, Libkin, PODS 2014):
//!
//! * [`constraint`] — plain constraints `(R, X, N, T)`;
//! * [`embedded`] — embedded constraints `(R, X[Y], N, T)` and functional
//!   dependencies as the special case `N = 1`;
//! * [`schema`] — the access schema `A` itself, including the `A(R)`
//!   full-access augmentation of Proposition 5.5;
//! * [`conformance`] — checking that a database conforms to `A`;
//! * [`indexed`] — [`AccessIndexedDatabase`], the retrieval layer that
//!   lazily materialises the promised indexes and meters every fetch;
//! * [`source`] — [`AccessSource`], the storage-agnostic retrieval trait the
//!   bounded executors evaluate against, and [`SnapshotAccess`], its
//!   implementation over pinned [`si_data::DatabaseSnapshot`] versions (the
//!   concurrent serving surface used by `si-engine`);
//! * [`sharded`] — [`ShardedAccess`], the same trait over a pinned
//!   hash-partitioned [`si_data::ShardedSnapshotView`]: exact-match probes
//!   on the partition column route to a single shard, everything else
//!   scatter-gathers in shard order with unsharded-identical accounting;
//! * [`remote`] — [`ReplicatedAccess`], `ShardedAccess`'s transport-backed
//!   twin: the same routing and charge points against a [`ShardProber`]
//!   (shard replica servers behind a wire), with replicas executing only
//!   the raw pushed-down probe so accounting stays byte-identical;
//! * [`cost`] — the two-sided cost model: static, data-independent bounds
//!   ([`StaticCost`]) that *admit* bounded plans, and statistics-driven
//!   estimates ([`CostModel`]) that *rank* them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conformance;
pub mod constraint;
pub mod cost;
pub mod embedded;
pub mod indexed;
pub mod remote;
pub mod schema;
pub mod sharded;
pub mod source;

pub use conformance::{conforms, violations, Violation};
pub use constraint::AccessConstraint;
pub use cost::{CostModel, StaticCost};
pub use embedded::EmbeddedConstraint;
pub use indexed::{AccessError, AccessIndexedDatabase};
pub use remote::{ReplicatedAccess, ShardProber};
pub use schema::{facebook_access_schema, AccessSchema};
pub use sharded::ShardedAccess;
pub use source::{raw_index_probe, AccessSource, SnapshotAccess};

/// Convenience result alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, AccessError>;
