//! The access-mediated retrieval surface, abstracted over storage.
//!
//! [`AccessSource`] is the interface the bounded executors in `si-core`
//! evaluate against.  It captures exactly what Theorem 4.2's evaluation
//! strategy needs — constraint-authorised fetches, embedded enumerations,
//! membership probes, and a [`MeterSink`] every access is charged to — while
//! leaving the storage behind it open:
//!
//! * [`crate::AccessIndexedDatabase`] — an owned, mutable [`si_data::Database`]
//!   (the original single-threaded experiment surface);
//! * [`SnapshotAccess`] — a pinned, immutable
//!   [`DatabaseSnapshot`] version shared between
//!   worker threads by `Arc`, with a *per-worker* meter (the `si-engine`
//!   serving surface).
//!
//! The fetch-bound semantics (what is charged per probe, the role of the
//! residual post-filter) are identical for every implementation and are
//! documented once, on [`crate::AccessIndexedDatabase`]; the shared logic
//! lives in this trait's provided methods, so an implementor only supplies
//! the four accessors.

use crate::constraint::AccessConstraint;
use crate::embedded::EmbeddedConstraint;
use crate::indexed::AccessError;
use crate::schema::AccessSchema;
use si_data::{
    AccessMeter, Database, DatabaseSchema, DatabaseSnapshot, MeterSink, MeterSnapshot, Relation,
    RelationSchema, Tuple, Value,
};
use std::collections::BTreeSet;
use std::sync::Arc;

/// A probe split into its pushed-down index part and residual filter — the
/// decomposition every [`AccessSource`] surface shares.
///
/// The constraint's attribute set forms the index key; bound attributes
/// outside it become positional post-filter equalities.  Charging (and, for
/// the sharded surface, routing) is defined on this one split, which is what
/// keeps `ShardedAccess`'s *mirror accounting* exactly equal to the
/// unsharded surfaces: both run the same split, the same per-relation probe
/// and the same charge points.
pub(crate) struct ProbeSplit {
    pub(crate) index_attrs: Vec<String>,
    pub(crate) index_key: Vec<Value>,
    pub(crate) filter: Vec<(usize, Value)>,
}

/// Splits `(attrs, key)` against the pushed-down attribute set `pushed`
/// (a plain constraint's `X`, or an embedded constraint's `from`).
pub(crate) fn split_probe(
    pushed: &[String],
    rel_schema: &RelationSchema,
    attrs: &[String],
    key: &[Value],
) -> Result<ProbeSplit, AccessError> {
    let mut split = ProbeSplit {
        index_attrs: Vec::new(),
        index_key: Vec::new(),
        filter: Vec::new(),
    };
    for (a, v) in attrs.iter().zip(key.iter()) {
        if pushed.contains(a) {
            split.index_attrs.push(a.clone());
            split.index_key.push(*v);
        } else {
            split.filter.push((rel_schema.position_of(a)?, *v));
        }
    }
    Ok(split)
}

/// Runs the pushed-down part of a probe split against one relation:
/// `select_eq` on `attrs = key`, or — for `attrs = ∅`, where the constraint
/// bounds the whole relation — a (bounded) iteration.
///
/// This is the *entire* shard-local fetch semantics of every surface: the
/// unsharded probe, [`crate::ShardedAccess`]'s per-shard leg, and a remote
/// shard replica serving a [`crate::remote::ShardProber::probe`] all call
/// exactly this function, so the raw fetched set — the one the meter
/// charges — cannot drift between in-process and transport-backed
/// execution.
pub fn raw_index_probe(
    rel: &Relation,
    attrs: &[String],
    key: &[Value],
) -> Result<Vec<Tuple>, AccessError> {
    if attrs.is_empty() {
        Ok(rel.iter().cloned().collect())
    } else {
        Ok(rel.select_eq(attrs, key)?.0)
    }
}

impl ProbeSplit {
    /// Runs the index part against one relation (see [`raw_index_probe`]).
    pub(crate) fn probe(&self, rel: &Relation) -> Result<Vec<Tuple>, AccessError> {
        raw_index_probe(rel, &self.index_attrs, &self.index_key)
    }

    /// Applies the residual filter.
    pub(crate) fn residual_keeps(&self, tuple: &Tuple) -> bool {
        self.filter.iter().all(|(p, v)| tuple.get(*p) == Some(v))
    }

    /// Residual-filters `fetched`, projects onto `positions` and
    /// deduplicates in arrival order — the tail of every embedded fetch
    /// (the returned length is what the meter charges).
    pub(crate) fn project_dedup(&self, fetched: Vec<Tuple>, positions: &[usize]) -> Vec<Tuple> {
        let mut seen: BTreeSet<Tuple> = BTreeSet::new();
        let mut out = Vec::new();
        for t in fetched.into_iter().filter(|t| self.residual_keeps(t)) {
            let proj = t.project(positions);
            if seen.insert(proj.clone()) {
                out.push(proj);
            }
        }
        out
    }
}

/// The embedded constraint every surface selects for
/// [`AccessSource::fetch_embedded`]: usable with the bound attributes,
/// covering the requested projection, minimal `N` (ties broken by
/// declaration order via `min_by_key`).
pub(crate) fn best_embedded<'a>(
    access: &'a AccessSchema,
    relation: &str,
    attrs: &[String],
    onto: &[String],
) -> Result<&'a EmbeddedConstraint, AccessError> {
    let bound: BTreeSet<&str> = attrs.iter().map(String::as_str).collect();
    let onto_set: BTreeSet<&str> = onto.iter().map(String::as_str).collect();
    access
        .embedded()
        .iter()
        .filter(|e| {
            e.relation == relation && e.usable_with(&bound) && onto_set.is_subset(&e.onto_set())
        })
        .min_by_key(|e| e.bound)
        .ok_or_else(|| AccessError::NoConstraint {
            relation: relation.to_owned(),
            bound_attributes: attrs.to_vec(),
        })
}

/// Storage-agnostic access-schema-mediated retrieval.
///
/// Implementors provide relation lookup, the access schema and a meter; the
/// provided methods implement the paper's fetch semantics on top (and are
/// the *only* retrieval primitives bounded executors may use).
pub trait AccessSource {
    /// The database schema of the underlying instance.
    fn db_schema(&self) -> &DatabaseSchema;

    /// The access schema authorising fetches.
    fn access_schema(&self) -> &AccessSchema;

    /// Looks up a relation of the underlying instance.
    fn source_relation(&self, name: &str) -> Result<&Relation, AccessError>;

    /// The sink every access is charged to.
    fn meter_sink(&self) -> &dyn MeterSink;

    /// Snapshot of the meter (convenience).
    fn meter_snapshot(&self) -> MeterSnapshot {
        self.meter_sink().snapshot()
    }

    /// The full underlying instance, when this source can expose one.
    ///
    /// Bounded evaluation never needs this — it is the escape hatch for the
    /// paper's *offline precomputation* setting (Section 5), where `Q(D)` is
    /// computed once by unrestricted evaluation before bounded maintenance
    /// takes over.  Owned surfaces ([`crate::AccessIndexedDatabase`]) return
    /// their database; shared snapshot views return `None`, which forces
    /// callers onto the metered, access-mediated path.
    fn full_instance(&self) -> Option<&Database> {
        None
    }

    /// Fetches `σ_{attrs = key}(relation)` through the tightest usable
    /// access constraint.  See [`crate::AccessIndexedDatabase::fetch`].
    fn fetch(
        &self,
        relation: &str,
        attrs: &[String],
        key: &[Value],
    ) -> Result<Vec<Tuple>, AccessError> {
        let bound: BTreeSet<&str> = attrs.iter().map(String::as_str).collect();
        let constraint = self
            .access_schema()
            .best_constraint(relation, &bound)
            .ok_or_else(|| AccessError::NoConstraint {
                relation: relation.to_owned(),
                bound_attributes: attrs.to_vec(),
            })?;
        self.fetch_via(constraint, relation, attrs, key)
    }

    /// Fetches through a specific constraint (used by planners that have
    /// already chosen their access path).
    /// See [`crate::AccessIndexedDatabase::fetch_via`].
    fn fetch_via(
        &self,
        constraint: &AccessConstraint,
        relation: &str,
        attrs: &[String],
        key: &[Value],
    ) -> Result<Vec<Tuple>, AccessError> {
        debug_assert_eq!(constraint.relation, relation);
        let rel = self.source_relation(relation)?;
        let meter = self.meter_sink();
        // Split the probe into the indexed part (the constraint's X) and the
        // residual filter.
        let split = split_probe(&constraint.on, rel.schema(), attrs, key)?;

        meter.add_probe();
        meter.add_time(constraint.time);

        let fetched = split.probe(rel)?;
        meter.add_tuples(fetched.len() as u64);

        Ok(fetched
            .into_iter()
            .filter(|t| split.residual_keeps(t))
            .collect())
    }

    /// Fetches the projection `π_onto(σ_{attrs = key}(relation))` through an
    /// embedded constraint.  See
    /// [`crate::AccessIndexedDatabase::fetch_embedded`].
    fn fetch_embedded(
        &self,
        relation: &str,
        attrs: &[String],
        key: &[Value],
        onto: &[String],
    ) -> Result<Vec<Tuple>, AccessError> {
        let constraint = best_embedded(self.access_schema(), relation, attrs, onto)?;
        let rel = self.source_relation(relation)?;
        let meter = self.meter_sink();
        let positions = rel.schema().positions_of(onto)?;
        let split = split_probe(&constraint.from, rel.schema(), attrs, key)?;

        meter.add_probe();
        meter.add_time(constraint.time);

        let fetched = split.probe(rel)?;
        let out = split.project_dedup(fetched, &positions);
        meter.add_tuples(out.len() as u64);
        Ok(out)
    }

    /// Membership probe: is `tuple` in `relation`?  Always permitted; charged
    /// as one probe fetching at most one tuple.
    /// See [`crate::AccessIndexedDatabase::contains`].
    fn contains(&self, relation: &str, tuple: &Tuple) -> Result<bool, AccessError> {
        let rel = self.source_relation(relation)?;
        let meter = self.meter_sink();
        meter.add_probe();
        meter.add_time(1);
        let found = rel.contains(tuple);
        if found {
            meter.add_tuples(1);
        }
        Ok(found)
    }

    /// Retrieves the entire relation; only allowed under a full-access grant.
    /// See [`crate::AccessIndexedDatabase::full_scan`].
    fn full_scan(&self, relation: &str) -> Result<Vec<Tuple>, AccessError> {
        if !self.access_schema().has_full_access(relation) {
            return Err(AccessError::FullScanNotAllowed(relation.to_owned()));
        }
        let rel = self.source_relation(relation)?;
        let meter = self.meter_sink();
        meter.add_scan();
        meter.add_tuples(rel.len() as u64);
        Ok(rel.iter().cloned().collect())
    }

    /// Does any constraint authorise probing `relation` when `attrs` can be
    /// bound?
    fn can_fetch(&self, relation: &str, attrs: &[String]) -> bool {
        let bound: BTreeSet<&str> = attrs.iter().map(String::as_str).collect();
        self.access_schema()
            .best_constraint(relation, &bound)
            .is_some()
    }
}

/// A pinned snapshot version wrapped with an access schema and a per-worker
/// meter: the [`AccessSource`] of the concurrent serving layer.
///
/// Both the snapshot and the access schema are held by `Arc`, so a
/// `SnapshotAccess` is cheap to create — one per worker, per request — and
/// [`SnapshotAccess::fork`] hands each worker thread its own meter over the
/// same pinned version.  Charging stays on a thread-local sink (no atomics
/// on the fetch path); callers aggregate the per-worker
/// [`MeterSnapshot`]s afterwards, e.g. into a
/// [`SharedMeter`](si_data::SharedMeter).
///
/// Constructing a `SnapshotAccess` does *not* declare the access schema's
/// indexes: declarations live inside the relations, so declare them on the
/// [`si_data::Database`] (see [`AccessSchema::required_indexes`]) before the
/// snapshot store is created — `si-engine` does exactly that.
#[derive(Debug)]
pub struct SnapshotAccess<M: MeterSink = AccessMeter> {
    snapshot: Arc<DatabaseSnapshot>,
    access: Arc<AccessSchema>,
    meter: M,
}

impl<M: MeterSink + Default> SnapshotAccess<M> {
    /// Wraps a pinned snapshot with an access schema and a fresh meter.
    pub fn new(snapshot: Arc<DatabaseSnapshot>, access: Arc<AccessSchema>) -> Self {
        SnapshotAccess {
            snapshot,
            access,
            meter: M::default(),
        }
    }

    /// A sibling view over the same pinned snapshot with a fresh meter —
    /// what each worker thread of a partitioned execution gets.
    pub fn fork(&self) -> Self {
        SnapshotAccess {
            snapshot: self.snapshot.clone(),
            access: self.access.clone(),
            meter: M::default(),
        }
    }
}

impl<M: MeterSink> SnapshotAccess<M> {
    /// Wraps a pinned snapshot with an explicit meter.
    pub fn with_meter(
        snapshot: Arc<DatabaseSnapshot>,
        access: Arc<AccessSchema>,
        meter: M,
    ) -> Self {
        SnapshotAccess {
            snapshot,
            access,
            meter,
        }
    }

    /// The pinned snapshot version.
    pub fn snapshot(&self) -> &Arc<DatabaseSnapshot> {
        &self.snapshot
    }

    /// The meter charged by this view's fetches.
    pub fn meter(&self) -> &M {
        &self.meter
    }
}

impl<M: MeterSink> AccessSource for SnapshotAccess<M> {
    fn db_schema(&self) -> &DatabaseSchema {
        self.snapshot.schema()
    }

    fn access_schema(&self) -> &AccessSchema {
        &self.access
    }

    fn source_relation(&self, name: &str) -> Result<&Relation, AccessError> {
        self.snapshot.relation(name).map_err(AccessError::Data)
    }

    fn meter_sink(&self) -> &dyn MeterSink {
        &self.meter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::facebook_access_schema;
    use si_data::schema::social_schema;
    use si_data::{tuple, Database, SharedMeter, SnapshotStore};

    fn store_with_indexes() -> (SnapshotStore, Arc<AccessSchema>) {
        let access = facebook_access_schema(5000);
        let mut db = Database::empty(social_schema());
        db.insert_all(
            "person",
            vec![
                tuple![1, "ann", "NYC"],
                tuple![2, "bob", "NYC"],
                tuple![3, "cat", "LA"],
            ],
        )
        .unwrap();
        db.insert_all("friend", vec![tuple![1, 2], tuple![1, 3], tuple![2, 3]])
            .unwrap();
        for (relation, attrs) in access.required_indexes() {
            if !attrs.is_empty() {
                db.declare_index(&relation, &attrs).unwrap();
            }
        }
        (SnapshotStore::new(db), Arc::new(access))
    }

    #[test]
    fn snapshot_access_fetches_like_the_owned_surface() {
        let (store, access) = store_with_indexes();
        let view: SnapshotAccess = SnapshotAccess::new(store.pin(), access);
        let friends = view
            .fetch("friend", &["id1".into()], &[Value::int(1)])
            .unwrap();
        assert_eq!(friends.len(), 2);
        let snap = view.meter_snapshot();
        assert_eq!(snap.index_probes, 1);
        assert_eq!(snap.tuples_fetched, 2);
        // Membership probes are always allowed.
        assert!(view.contains("friend", &tuple![2, 3]).unwrap());
        assert!(!view.contains("friend", &tuple![9, 9]).unwrap());
        // Unauthorised probes are rejected.
        assert!(matches!(
            view.fetch("visit", &["id".into()], &[Value::int(1)]),
            Err(AccessError::NoConstraint { .. })
        ));
        assert!(view.can_fetch("person", &["id".into()]));
        assert!(!view.can_fetch("visit", &["id".into()]));
        assert!(matches!(
            view.full_scan("friend"),
            Err(AccessError::FullScanNotAllowed(_))
        ));
    }

    #[test]
    fn forked_views_share_the_version_but_not_the_meter() {
        let (store, access) = store_with_indexes();
        let view: SnapshotAccess = SnapshotAccess::new(store.pin(), access);
        let forked = view.fork();
        forked
            .fetch("friend", &["id1".into()], &[Value::int(1)])
            .unwrap();
        assert_eq!(forked.meter_snapshot().index_probes, 1);
        assert_eq!(view.meter_snapshot().index_probes, 0);
        assert!(Arc::ptr_eq(view.snapshot(), forked.snapshot()));
    }

    #[test]
    fn pinned_views_ignore_later_commits() {
        let (store, access) = store_with_indexes();
        let pinned: SnapshotAccess = SnapshotAccess::new(store.pin(), access.clone());
        store
            .commit(si_data::Delta::new().insert("friend", tuple![1, 4]))
            .unwrap();
        let fresh: SnapshotAccess = SnapshotAccess::new(store.pin(), access);
        let old = pinned
            .fetch("friend", &["id1".into()], &[Value::int(1)])
            .unwrap();
        let new = fresh
            .fetch("friend", &["id1".into()], &[Value::int(1)])
            .unwrap();
        assert_eq!(old.len(), 2);
        assert_eq!(new.len(), 3);
    }

    #[test]
    fn shared_meter_backed_view_aggregates_across_threads() {
        let (store, access) = store_with_indexes();
        let view: SnapshotAccess<SharedMeter> =
            SnapshotAccess::with_meter(store.pin(), access, SharedMeter::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let view = &view;
                s.spawn(move || {
                    view.fetch("friend", &["id1".into()], &[Value::int(1)])
                        .unwrap();
                });
            }
        });
        assert_eq!(view.meter_snapshot().index_probes, 4);
        assert_eq!(view.meter_snapshot().tuples_fetched, 8);
    }
}
