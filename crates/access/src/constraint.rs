//! Plain access constraints `(R, X, N, T)`.
//!
//! An access constraint (paper, Section 4) promises that for every tuple of
//! values `a̅` over the attributes `X` of relation `R`:
//!
//! * `σ_{X=a̅}(R)` contains at most `N` tuples, and
//! * those tuples can be retrieved in time at most `T` (via an index on `X`).
//!
//! The special case `X = ∅` states that the whole relation has at most `N`
//! tuples.

use std::collections::BTreeSet;
use std::fmt;

/// A single access constraint `(R, X, N, T)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessConstraint {
    /// The relation `R` the constraint applies to.
    pub relation: String,
    /// The attribute set `X` that must be provided to use the index.
    pub on: Vec<String>,
    /// Cardinality bound `N` on `σ_{X=a̅}(R)`.
    pub bound: usize,
    /// Retrieval-time bound `T`, in abstract time units.
    pub time: u64,
}

impl AccessConstraint {
    /// Creates a constraint `(relation, on, bound, time)`.
    pub fn new(relation: impl Into<String>, on: &[&str], bound: usize, time: u64) -> Self {
        AccessConstraint {
            relation: relation.into(),
            on: on.iter().map(|a| (*a).to_owned()).collect(),
            bound,
            time,
        }
    }

    /// A key constraint: providing `on` identifies at most one tuple.
    pub fn key(relation: impl Into<String>, on: &[&str], time: u64) -> Self {
        AccessConstraint::new(relation, on, 1, time)
    }

    /// The attribute set `X` as a sorted set (for subset tests).
    pub fn on_set(&self) -> BTreeSet<&str> {
        self.on.iter().map(String::as_str).collect()
    }

    /// True iff the constraint can serve a probe that binds (at least) the
    /// attributes in `bound_attrs`: the index needs exactly `X`, so `X` must
    /// be contained in the bound attributes.
    pub fn usable_with(&self, bound_attrs: &BTreeSet<&str>) -> bool {
        self.on_set().iter().all(|a| bound_attrs.contains(a))
    }

    /// True iff this constraint's attribute set is exactly `attrs`.
    pub fn is_on(&self, attrs: &[String]) -> bool {
        let mine = self.on_set();
        let theirs: BTreeSet<&str> = attrs.iter().map(String::as_str).collect();
        mine == theirs
    }
}

impl fmt::Display for AccessConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({}, {{{}}}, {}, {})",
            self.relation,
            self.on.join(", "),
            self.bound,
            self.time
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let c = AccessConstraint::new("friend", &["id1"], 5000, 2);
        assert_eq!(c.relation, "friend");
        assert_eq!(c.on, vec!["id1"]);
        assert_eq!(c.bound, 5000);
        assert_eq!(c.time, 2);
        let k = AccessConstraint::key("person", &["id"], 1);
        assert_eq!(k.bound, 1);
    }

    #[test]
    fn usable_with_requires_containment() {
        let c = AccessConstraint::new("visit", &["id", "rid"], 10, 1);
        let bound: BTreeSet<&str> = ["id", "rid", "yy"].into_iter().collect();
        assert!(c.usable_with(&bound));
        let bound: BTreeSet<&str> = ["id"].into_iter().collect();
        assert!(!c.usable_with(&bound));
        // The empty-X constraint is usable with anything.
        let c = AccessConstraint::new("restr", &[], 100, 1);
        assert!(c.usable_with(&BTreeSet::new()));
    }

    #[test]
    fn is_on_compares_sets_not_orders() {
        let c = AccessConstraint::new("visit", &["rid", "id"], 10, 1);
        assert!(c.is_on(&["id".into(), "rid".into()]));
        assert!(!c.is_on(&["id".into()]));
    }

    #[test]
    fn display_uses_paper_notation() {
        let c = AccessConstraint::new("friend", &["id1"], 5000, 2);
        assert_eq!(c.to_string(), "(friend, {id1}, 5000, 2)");
    }
}
