//! Per-direction incremental symbol dictionaries.
//!
//! Symbol values dominate the bytes of probe keys and result rows, and the
//! same handful of strings ("NYC", a person name, a restaurant id) recurs
//! across thousands of messages.  The wire therefore interns them: the
//! first time a direction carries a symbol it travels as its resolved
//! string under the `SYM_NEW` tag — which appends it to *both* ends'
//! dictionaries — and every later occurrence is a dense `u32` id under
//! `SYM_REF`.
//!
//! Each direction of a connection has its own dictionary pair (the
//! sender's [`EncodeDict`], the receiver's [`DecodeDict`]); because frames
//! on one direction are strictly ordered, the two stay identical by
//! construction.  The [`crate::Message::Hello`] handshake seeds both
//! directions with a shared starting vocabulary, so a bootstrap snapshot's
//! symbols are registered before the first data message flows.
//!
//! The decode side stores *interned* [`Value`]s, not strings: a `SYM_REF`
//! resolves with one bounds-checked array lookup and zero re-interning —
//! the global interner is touched exactly once per distinct symbol per
//! connection direction.

use crate::{WireError, WireResult};
use si_data::codec::{self, CodecError, Reader};
use si_data::{Tuple, Value};
use std::collections::HashMap;

/// Wire tag bytes for dictionary-encoded values.  `NULL`/`BOOL`/`INT`
/// deliberately match [`si_data::codec`]'s tags; symbols split into the two
/// dictionary forms.
const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
/// Symbol appearing on this direction for the first time: resolved string
/// follows; both ends register it (id = dictionary length before the push).
const TAG_SYM_NEW: u8 = 3;
/// Symbol already registered on this direction: dense `u32` id follows.
const TAG_SYM_REF: u8 = 4;

/// The sender half of one direction's dictionary: resolved string → wire id.
#[derive(Debug, Default)]
pub struct EncodeDict {
    ids: HashMap<String, u32>,
    /// Symbols registered (strings sent in full) over this direction.
    registered: u64,
    /// Dense references emitted over this direction.
    refs: u64,
}

impl EncodeDict {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `symbols` in order (the `Hello` seed).  Symbols already
    /// present keep their first id; duplicates in the seed are an error on
    /// the construction side, tolerated here by skipping.
    pub fn seed(&mut self, symbols: &[String]) {
        for s in symbols {
            if !self.ids.contains_key(s) {
                let id = self.ids.len() as u32;
                self.ids.insert(s.clone(), id);
            }
        }
    }

    /// Symbols this side has sent as full strings (each exactly once).
    pub fn registered(&self) -> u64 {
        self.registered
    }

    /// Dense `SYM_REF` references this side has emitted.
    pub fn refs(&self) -> u64 {
        self.refs
    }

    /// Distinct symbols known to this direction.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no symbol has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Appends the dictionary encoding of one value.
    pub fn encode_value(&mut self, out: &mut Vec<u8>, value: Value) {
        match value {
            Value::Null => out.push(TAG_NULL),
            Value::Bool(b) => {
                out.push(TAG_BOOL);
                out.push(u8::from(b));
            }
            Value::Int(i) => {
                out.push(TAG_INT);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Sym(s) => match self.ids.get(s.as_str()) {
                Some(&id) => {
                    self.refs += 1;
                    out.push(TAG_SYM_REF);
                    codec::put_u32(out, id);
                }
                None => {
                    let id = self.ids.len() as u32;
                    self.ids.insert(s.as_str().to_owned(), id);
                    self.registered += 1;
                    out.push(TAG_SYM_NEW);
                    codec::put_str(out, s.as_str());
                }
            },
        }
    }

    /// Appends an arity-prefixed tuple, dictionary-encoding each value.
    pub fn encode_tuple(&mut self, out: &mut Vec<u8>, tuple: &Tuple) {
        codec::put_u32(out, tuple.arity() as u32);
        for v in tuple.iter() {
            self.encode_value(out, *v);
        }
    }
}

/// The receiver half of one direction's dictionary: wire id → interned value.
#[derive(Debug, Default)]
pub struct DecodeDict {
    symbols: Vec<Value>,
}

impl DecodeDict {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `symbols` in order (the `Hello` seed), interning each once.
    pub fn seed(&mut self, symbols: &[String]) {
        for s in symbols {
            let v = Value::str(s);
            if !self.symbols.contains(&v) {
                self.symbols.push(v);
            }
        }
    }

    /// Distinct symbols known to this direction.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// True when no symbol has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Decodes one dictionary-encoded value, registering `SYM_NEW` entries.
    pub fn decode_value(&mut self, r: &mut Reader<'_>) -> WireResult<Value> {
        match r.u8().map_err(WireError::Codec)? {
            TAG_NULL => Ok(Value::Null),
            TAG_BOOL => match r.u8().map_err(WireError::Codec)? {
                0 => Ok(Value::Bool(false)),
                1 => Ok(Value::Bool(true)),
                b => Err(WireError::Codec(CodecError::Invalid(format!(
                    "bad bool byte {b}"
                )))),
            },
            TAG_INT => Ok(Value::Int(r.i64().map_err(WireError::Codec)?)),
            TAG_SYM_NEW => {
                let v = Value::str(r.str().map_err(WireError::Codec)?);
                self.symbols.push(v);
                Ok(v)
            }
            TAG_SYM_REF => {
                let id = r.u32().map_err(WireError::Codec)? as usize;
                self.symbols.get(id).copied().ok_or_else(|| {
                    WireError::Protocol(format!(
                        "symbol reference {id} out of range (dictionary holds {})",
                        self.symbols.len()
                    ))
                })
            }
            t => Err(WireError::Codec(CodecError::Invalid(format!(
                "bad wire value tag {t}"
            )))),
        }
    }

    /// Decodes an arity-prefixed dictionary-encoded tuple.
    pub fn decode_tuple(&mut self, r: &mut Reader<'_>) -> WireResult<Tuple> {
        let arity = r.count().map_err(WireError::Codec)?;
        let mut values = Vec::with_capacity(arity.min(r.remaining()));
        for _ in 0..arity {
            values.push(self.decode_value(r)?);
        }
        Ok(Tuple::new(values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_data::tuple;

    #[test]
    fn symbols_travel_as_strings_exactly_once_then_as_ids() {
        let mut enc = EncodeDict::new();
        let mut dec = DecodeDict::new();
        let t = tuple![1, "downtown-diner", "NYC"];

        let mut first = Vec::new();
        enc.encode_tuple(&mut first, &t);
        let mut second = Vec::new();
        enc.encode_tuple(&mut second, &t);

        // First encoding registers both symbols; the second references them.
        assert_eq!(enc.registered(), 2);
        assert_eq!(enc.refs(), 2);
        assert!(second.len() < first.len());
        // The resolved string appears in the first encoding only.
        let needle = b"downtown-diner";
        assert!(first.windows(needle.len()).any(|w| w == needle));
        assert!(!second.windows(needle.len()).any(|w| w == needle));

        let mut r = Reader::new(&first);
        assert_eq!(dec.decode_tuple(&mut r).unwrap(), t);
        let mut r = Reader::new(&second);
        assert_eq!(dec.decode_tuple(&mut r).unwrap(), t);
        assert_eq!(dec.len(), 2);
    }

    #[test]
    fn seeded_dictionaries_reference_immediately() {
        let mut enc = EncodeDict::new();
        let mut dec = DecodeDict::new();
        let seed = vec!["NYC".to_owned(), "LA".to_owned()];
        enc.seed(&seed);
        dec.seed(&seed);

        let mut out = Vec::new();
        enc.encode_value(&mut out, Value::str("LA"));
        assert_eq!(enc.registered(), 0, "seeded symbol never re-sent");
        assert_eq!(enc.refs(), 1);
        let mut r = Reader::new(&out);
        assert_eq!(dec.decode_value(&mut r).unwrap(), Value::str("LA"));
    }

    #[test]
    fn out_of_range_references_are_protocol_errors() {
        let mut out = vec![TAG_SYM_REF];
        codec::put_u32(&mut out, 7);
        let mut dec = DecodeDict::new();
        let mut r = Reader::new(&out);
        assert!(matches!(
            dec.decode_value(&mut r),
            Err(WireError::Protocol(_))
        ));
    }

    #[test]
    fn non_symbol_values_round_trip() {
        let mut enc = EncodeDict::new();
        let mut dec = DecodeDict::new();
        for v in [Value::Null, Value::Bool(true), Value::Int(-7)] {
            let mut out = Vec::new();
            enc.encode_value(&mut out, v);
            let mut r = Reader::new(&out);
            assert_eq!(dec.decode_value(&mut r).unwrap(), v);
        }
        assert_eq!(enc.registered(), 0);
    }
}
