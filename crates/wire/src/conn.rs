//! A framed, dictionary-carrying connection over a [`Transport`].
//!
//! [`Connection`] owns one transport endpoint plus one [`EncodeDict`] for
//! the outbound direction and one [`DecodeDict`] for the inbound
//! direction.  [`Connection::send`] encodes a [`Message`] and writes it as
//! one `len ‖ crc32 ‖ payload` frame *while holding the outbound lock*, so
//! concurrent senders serialise and the dictionary registrations land on
//! the wire in the exact order the receiver will replay them.
//! [`Connection::recv`] reads one frame, verifies length cap and CRC
//! before trusting anything, and decodes under the inbound lock.
//!
//! Receiving (or sending) a [`Message::Hello`] seeds **both** of this
//! end's dictionaries with the handshake vocabulary; because `Hello` is
//! the first message in each direction (the primary sends nothing else
//! until the `HelloAck` arrives), both ends observe the seed before any
//! dictionary-encoded value flows.

use crate::dict::{DecodeDict, EncodeDict};
use crate::message::Message;
use crate::transport::Transport;
use crate::{WireError, WireResult, MAX_FRAME_BYTES};
use si_data::codec::{self, CodecError, FRAME_HEADER};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A message-granular connection: framing, CRC validation and symbol
/// dictionaries over a byte [`Transport`].
pub struct Connection {
    transport: Arc<dyn Transport>,
    tx: Mutex<EncodeDict>,
    rx: Mutex<DecodeDict>,
    frames_sent: AtomicU64,
    frames_received: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
}

impl std::fmt::Debug for Connection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Connection")
            .field("frames_sent", &self.frames_sent.load(Ordering::Relaxed))
            .field(
                "frames_received",
                &self.frames_received.load(Ordering::Relaxed),
            )
            .finish_non_exhaustive()
    }
}

impl Connection {
    /// Wraps a transport endpoint with fresh (empty) dictionaries.
    pub fn new(transport: Arc<dyn Transport>) -> Self {
        Self {
            transport,
            tx: Mutex::new(EncodeDict::new()),
            rx: Mutex::new(DecodeDict::new()),
            frames_sent: AtomicU64::new(0),
            frames_received: AtomicU64::new(0),
            bytes_sent: AtomicU64::new(0),
            bytes_received: AtomicU64::new(0),
        }
    }

    /// Encodes and writes one message as a single frame.  Sending a
    /// [`Message::Hello`] also seeds this end's dictionaries with its
    /// vocabulary (the receiver does the same on receipt).
    pub fn send(&self, message: &Message) -> WireResult<()> {
        let mut tx = self.tx.lock().expect("wire tx lock");
        if let Message::Hello { seed, .. } = message {
            tx.seed(seed);
            self.rx.lock().expect("wire rx lock").seed(seed);
        }
        let payload = message.encode(&mut tx);
        let framed = codec::frame(&payload);
        // Dictionary ordering: the write happens under the tx lock so frames
        // hit the wire in registration order.
        self.transport.write_all(&framed)?;
        drop(tx);
        self.frames_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent
            .fetch_add(framed.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Reads and decodes one message.  The frame header is validated
    /// against [`MAX_FRAME_BYTES`] before the payload is allocated, and the
    /// CRC before any byte is interpreted.
    pub fn recv(&self) -> WireResult<Message> {
        let mut rx = self.rx.lock().expect("wire rx lock");
        let mut header = [0u8; FRAME_HEADER];
        self.transport.read_exact(&mut header)?;
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
        let expected_crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        if len > MAX_FRAME_BYTES {
            return Err(WireError::Protocol(format!(
                "frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
            )));
        }
        let mut payload = vec![0u8; len];
        self.transport.read_exact(&mut payload)?;
        let found_crc = codec::crc32(&payload);
        if found_crc != expected_crc {
            return Err(WireError::Codec(CodecError::Corrupt {
                expected: expected_crc,
                found: found_crc,
            }));
        }
        let message = Message::decode(&payload, &mut rx)?;
        if let Message::Hello { seed, .. } = &message {
            rx.seed(seed);
            self.tx.lock().expect("wire tx lock").seed(seed);
        }
        drop(rx);
        self.frames_received.fetch_add(1, Ordering::Relaxed);
        self.bytes_received
            .fetch_add((FRAME_HEADER + len) as u64, Ordering::Relaxed);
        Ok(message)
    }

    /// Tears down the underlying transport; blocked peers see
    /// [`WireError::Closed`].
    pub fn shutdown(&self) {
        self.transport.shutdown();
    }

    /// Frames sent over this connection.
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent.load(Ordering::Relaxed)
    }

    /// Frames received over this connection.
    pub fn frames_received(&self) -> u64 {
        self.frames_received.load(Ordering::Relaxed)
    }

    /// Total bytes written (frame headers included).
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Total bytes read (frame headers included).
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received.load(Ordering::Relaxed)
    }

    /// Symbols this end has sent as full strings / as dense references.
    pub fn dictionary_stats(&self) -> (u64, u64) {
        let tx = self.tx.lock().expect("wire tx lock");
        (tx.registered(), tx.refs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::PROTOCOL_VERSION;
    use crate::transport::Duplex;
    use si_data::tuple;
    use std::thread;

    fn pair() -> (Connection, Connection) {
        let (a, b) = Duplex::pair();
        (Connection::new(Arc::new(a)), Connection::new(Arc::new(b)))
    }

    #[test]
    fn messages_cross_the_wire_intact() {
        let (primary, replica) = pair();
        let msg = Message::Probe {
            id: 1,
            epoch: 4,
            relation: "visit".into(),
            attrs: vec!["rid".into()],
            key: vec![si_data::Value::str("downtown-diner")],
        };
        primary.send(&msg).unwrap();
        assert_eq!(replica.recv().unwrap(), msg);
        assert_eq!(primary.frames_sent(), 1);
        assert_eq!(replica.frames_received(), 1);
        assert_eq!(primary.bytes_sent(), replica.bytes_received());
    }

    #[test]
    fn hello_seeds_both_directions_on_both_ends() {
        let (primary, replica) = pair();
        let hello = Message::Hello {
            version: PROTOCOL_VERSION,
            shard: 0,
            epoch: 0,
            seed: vec!["NYC".into()],
        };
        primary.send(&hello).unwrap();
        replica.recv().unwrap();

        // Replica → primary: the seeded symbol is referenced, never spelled.
        replica
            .send(&Message::Rows {
                id: 1,
                tuples: vec![tuple![1, "NYC"]],
            })
            .unwrap();
        primary.recv().unwrap();
        let (registered, refs) = replica.dictionary_stats();
        assert_eq!((registered, refs), (0, 1));
    }

    #[test]
    fn symbols_repeat_as_references_across_frames() {
        let (primary, replica) = pair();
        let row = Message::Rows {
            id: 1,
            tuples: vec![tuple![1, "ann", "NYC"]],
        };
        primary.send(&row).unwrap();
        primary.send(&row).unwrap();
        assert_eq!(replica.recv().unwrap(), row);
        assert_eq!(replica.recv().unwrap(), row);
        let (registered, refs) = primary.dictionary_stats();
        assert_eq!(registered, 2, "each symbol spelled exactly once");
        assert_eq!(refs, 2, "then referenced");
    }

    #[test]
    fn oversized_frame_headers_are_rejected_before_allocation() {
        let (raw, peer) = Duplex::pair();
        let conn = Connection::new(Arc::new(peer));
        let mut header = Vec::new();
        codec::put_u32(&mut header, (MAX_FRAME_BYTES as u32) + 1);
        codec::put_u32(&mut header, 0);
        raw.write_all(&header).unwrap();
        assert!(matches!(conn.recv(), Err(WireError::Protocol(_))));
    }

    #[test]
    fn corrupt_payloads_fail_the_crc_check() {
        let (raw, peer) = Duplex::pair();
        let conn = Connection::new(Arc::new(peer));
        let mut enc = EncodeDict::new();
        let payload = Message::WalAck { epoch: 3 }.encode(&mut enc);
        let mut framed = codec::frame(&payload);
        let last = framed.len() - 1;
        framed[last] ^= 0x40;
        raw.write_all(&framed).unwrap();
        assert!(matches!(
            conn.recv(),
            Err(WireError::Codec(CodecError::Corrupt { .. }))
        ));
    }

    #[test]
    fn torn_wire_surfaces_as_closed_mid_frame() {
        let (primary_t, replica_t) = Duplex::pair();
        let replica = Connection::new(Arc::new(replica_t));
        let mut enc = EncodeDict::new();
        let payload = Message::WalRecord {
            epoch: 1,
            delta: vec![7; 64],
        }
        .encode(&mut enc);
        let framed = codec::frame(&payload);
        primary_t.kill_outbound_after(framed.len() / 2);
        let _ = primary_t.write_all(&framed);
        assert!(matches!(replica.recv(), Err(WireError::Closed)));
    }

    #[test]
    fn concurrent_senders_never_interleave_frames() {
        let (primary, replica) = pair();
        let primary = Arc::new(primary);
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let p = Arc::clone(&primary);
                thread::spawn(move || {
                    for i in 0..50 {
                        p.send(&Message::Rows {
                            id: t * 1000 + i,
                            tuples: vec![tuple![i as i64, "shared-symbol"]],
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let mut seen = 0;
        for _ in 0..200 {
            match replica.recv().unwrap() {
                Message::Rows { tuples, .. } => {
                    assert_eq!(
                        tuples[0].get(1),
                        Some(&si_data::Value::str("shared-symbol"))
                    );
                    seen += 1;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(seen, 200);
    }
}
