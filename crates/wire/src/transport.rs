//! Byte transports under the framed protocol.
//!
//! A [`Transport`] is a blocking, bidirectional byte stream with shared
//! (`&self`) endpoints, so one connection object can be driven from a
//! writer thread and a reader thread concurrently.  Two implementations:
//!
//! * [`Duplex`] — an in-process pipe pair.  This is the default harness
//!   transport: it enforces the byte-for-byte protocol (everything crosses
//!   as encoded frames, nothing is shared by reference) and it exposes
//!   [`Duplex::kill_outbound_after`], which tears the outbound wire at an
//!   exact byte offset — the fault-injection hook the kill-at-any-byte
//!   replication harness drives.
//! * [`TcpTransport`] — a loopback socket, for crossing a real process
//!   boundary.

use crate::{WireError, WireResult};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, Condvar, Mutex};

/// A blocking bidirectional byte stream.  All methods take `&self`;
/// implementations synchronise internally.
pub trait Transport: Send + Sync {
    /// Writes all of `bytes`, or fails with [`WireError::Closed`] /
    /// [`WireError::Io`] if the wire is down.
    fn write_all(&self, bytes: &[u8]) -> WireResult<()>;

    /// Fills `buf` completely, blocking for more bytes as needed.  Fails
    /// with [`WireError::Closed`] when the peer shuts down before `buf` is
    /// full — a partial fill is indistinguishable from a torn frame and is
    /// reported the same way.
    fn read_exact(&self, buf: &mut [u8]) -> WireResult<()>;

    /// Tears down both directions; blocked readers wake with
    /// [`WireError::Closed`].
    fn shutdown(&self);
}

/// One direction of an in-process pipe.
#[derive(Debug, Default)]
struct PipeBuf {
    data: VecDeque<u8>,
    closed: bool,
    /// Remaining bytes this direction will carry before the wire "tears":
    /// bytes beyond the budget are dropped and the pipe closes.  `None`
    /// means unlimited.
    budget: Option<usize>,
}

#[derive(Debug, Default)]
struct Pipe {
    inner: Mutex<PipeBuf>,
    cv: Condvar,
}

impl Pipe {
    fn write_all(&self, bytes: &[u8]) -> WireResult<()> {
        let mut buf = self.inner.lock().expect("pipe lock");
        if buf.closed {
            return Err(WireError::Closed);
        }
        match buf.budget {
            None => buf.data.extend(bytes.iter().copied()),
            Some(budget) => {
                let keep = bytes.len().min(budget);
                buf.data.extend(bytes[..keep].iter().copied());
                buf.budget = Some(budget - keep);
                if keep < bytes.len() {
                    buf.closed = true;
                    self.cv.notify_all();
                    return Err(WireError::Closed);
                }
            }
        }
        self.cv.notify_all();
        Ok(())
    }

    fn read_exact(&self, out: &mut [u8]) -> WireResult<()> {
        let mut buf = self.inner.lock().expect("pipe lock");
        let mut filled = 0;
        while filled < out.len() {
            if let Some(b) = buf.data.pop_front() {
                out[filled] = b;
                filled += 1;
                continue;
            }
            if buf.closed {
                return Err(WireError::Closed);
            }
            buf = self.cv.wait(buf).expect("pipe lock");
        }
        Ok(())
    }

    fn close(&self) {
        let mut buf = self.inner.lock().expect("pipe lock");
        buf.closed = true;
        self.cv.notify_all();
    }
}

/// An in-process transport endpoint: writes go to the outbound pipe, reads
/// drain the inbound pipe.  Create a crossed pair with [`Duplex::pair`].
#[derive(Debug, Clone)]
pub struct Duplex {
    outbound: Arc<Pipe>,
    inbound: Arc<Pipe>,
}

impl Duplex {
    /// A connected pair of endpoints: bytes written on one are read by the
    /// other, in both directions.
    pub fn pair() -> (Duplex, Duplex) {
        let a_to_b = Arc::new(Pipe::default());
        let b_to_a = Arc::new(Pipe::default());
        (
            Duplex {
                outbound: Arc::clone(&a_to_b),
                inbound: Arc::clone(&b_to_a),
            },
            Duplex {
                outbound: b_to_a,
                inbound: a_to_b,
            },
        )
    }

    /// Arms the fault injector: after `n` more outbound bytes the wire
    /// tears — later bytes are dropped, the peer reads the clean `n`-byte
    /// prefix and then sees [`WireError::Closed`], exactly like a
    /// connection dying mid-frame.
    pub fn kill_outbound_after(&self, n: usize) {
        let mut buf = self.outbound.inner.lock().expect("pipe lock");
        buf.budget = Some(n);
    }
}

impl Transport for Duplex {
    fn write_all(&self, bytes: &[u8]) -> WireResult<()> {
        self.outbound.write_all(bytes)
    }

    fn read_exact(&self, buf: &mut [u8]) -> WireResult<()> {
        self.inbound.read_exact(buf)
    }

    fn shutdown(&self) {
        self.outbound.close();
        self.inbound.close();
    }
}

/// A loopback-socket transport wrapping a [`TcpStream`].  The stream is
/// cloned into independent read and write halves so a reader thread and
/// writer thread never contend.
pub struct TcpTransport {
    reader: Mutex<TcpStream>,
    writer: Mutex<TcpStream>,
    stream: TcpStream,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport").finish_non_exhaustive()
    }
}

impl TcpTransport {
    /// Wraps a connected stream.  Fails if the OS refuses to clone the
    /// descriptor.
    pub fn new(stream: TcpStream) -> WireResult<Self> {
        stream.set_nodelay(true).ok();
        let reader = stream
            .try_clone()
            .map_err(|e| WireError::Io(e.to_string()))?;
        let writer = stream
            .try_clone()
            .map_err(|e| WireError::Io(e.to_string()))?;
        Ok(Self {
            reader: Mutex::new(reader),
            writer: Mutex::new(writer),
            stream,
        })
    }
}

impl Transport for TcpTransport {
    fn write_all(&self, bytes: &[u8]) -> WireResult<()> {
        let mut w = self.writer.lock().expect("tcp writer lock");
        w.write_all(bytes).map_err(|e| match e.kind() {
            std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::ConnectionReset => WireError::Closed,
            _ => WireError::Io(e.to_string()),
        })
    }

    fn read_exact(&self, buf: &mut [u8]) -> WireResult<()> {
        let mut r = self.reader.lock().expect("tcp reader lock");
        r.read_exact(buf).map_err(|e| match e.kind() {
            std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::ConnectionReset => WireError::Closed,
            _ => WireError::Io(e.to_string()),
        })
    }

    fn shutdown(&self) {
        self.stream.shutdown(Shutdown::Both).ok();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn duplex_carries_bytes_both_ways() {
        let (a, b) = Duplex::pair();
        a.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        b.write_all(b"pong").unwrap();
        a.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");
    }

    #[test]
    fn duplex_read_blocks_until_bytes_arrive() {
        let (a, b) = Duplex::pair();
        let t = thread::spawn(move || {
            let mut buf = [0u8; 3];
            b.read_exact(&mut buf).unwrap();
            buf
        });
        a.write_all(b"x").unwrap();
        a.write_all(b"yz").unwrap();
        assert_eq!(&t.join().unwrap(), b"xyz");
    }

    #[test]
    fn kill_delivers_clean_prefix_then_closed() {
        let (a, b) = Duplex::pair();
        a.kill_outbound_after(3);
        assert!(matches!(a.write_all(b"hello"), Err(WireError::Closed)));
        let mut prefix = [0u8; 3];
        b.read_exact(&mut prefix).unwrap();
        assert_eq!(&prefix, b"hel");
        let mut more = [0u8; 1];
        assert!(matches!(b.read_exact(&mut more), Err(WireError::Closed)));
        // The torn direction stays dead.
        assert!(matches!(a.write_all(b"!"), Err(WireError::Closed)));
    }

    #[test]
    fn shutdown_wakes_blocked_readers() {
        let (a, b) = Duplex::pair();
        let t = thread::spawn(move || {
            let mut buf = [0u8; 1];
            b.read_exact(&mut buf)
        });
        a.shutdown();
        assert!(matches!(t.join().unwrap(), Err(WireError::Closed)));
    }

    #[test]
    fn tcp_loopback_round_trip() {
        let Ok(listener) = std::net::TcpListener::bind("127.0.0.1:0") else {
            return; // no loopback in this sandbox; covered by Duplex tests
        };
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let t = TcpTransport::new(stream).unwrap();
            let mut buf = [0u8; 5];
            t.read_exact(&mut buf).unwrap();
            t.write_all(&buf).unwrap();
        });
        let t = TcpTransport::new(TcpStream::connect(addr).unwrap()).unwrap();
        t.write_all(b"frame").unwrap();
        let mut buf = [0u8; 5];
        t.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"frame");
        server.join().unwrap();
    }
}
