//! The replication wire protocol: length-prefixed, CRC-framed messages over
//! a byte transport, carrying an interned-symbol dictionary.
//!
//! `si-wire` is the boundary between a primary engine and its shard
//! replicas.  It builds directly on [`si_data::codec`]'s frame format
//! (`len ‖ crc32 ‖ payload`, little-endian) and adds three layers:
//!
//! * **[`transport`]** — a blocking byte-stream [`Transport`] with two
//!   implementations: [`Duplex`], an in-process pipe pair whose
//!   [`Duplex::kill_outbound_after`] tears the wire at an exact byte (the
//!   fault-injection hook the replication kill harness drives), and
//!   [`TcpTransport`], a loopback-socket transport for process separation.
//! * **[`dict`]** — per-direction incremental symbol dictionaries: a symbol
//!   travels as its resolved string exactly once per direction (tag
//!   `SYM_NEW`, which registers it on both ends) and as a dense `u32` wire
//!   id ever after (tag `SYM_REF`).  The [`Message::Hello`] handshake seeds
//!   both directions with a shared starting vocabulary.
//! * **[`message`]** — the typed message catalog ([`Message`]): handshake,
//!   snapshot bootstrap, WAL-record shipping (reusing
//!   [`si_data::codec::delta_bytes`] verbatim, so the replication stream is
//!   byte-identical to the durability log's record payloads), and the
//!   scatter-gather probe/scan/contains requests mirroring
//!   `AccessSource::fetch_via` semantics.
//!
//! A [`Connection`] binds the three together: it owns the transport plus
//! one encode dictionary (outbound) and one decode dictionary (inbound),
//! and sends/receives whole [`Message`]s.  Messages on one direction are
//! strictly ordered, which is what keeps the two ends' dictionaries
//! identical without any negotiation beyond the `Hello` seed.
//!
//! Nothing in this crate knows about engines, epoch waits or routing — the
//! serving semantics live in `si_engine::replica` and
//! `si_access::ReplicatedAccess`.  This crate is pure protocol: bytes in,
//! typed messages out, with torn and corrupt inputs surfacing as typed
//! [`WireError`]s, never panics or unbounded allocations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conn;
pub mod dict;
pub mod message;
pub mod transport;

pub use conn::Connection;
pub use dict::{DecodeDict, EncodeDict};
pub use message::{Message, PROTOCOL_VERSION};
pub use transport::{Duplex, TcpTransport, Transport};

use si_data::codec::CodecError;
use std::fmt;

/// Hard cap on one frame's declared payload length.  A peer announcing a
/// larger frame is misbehaving or corrupt; the reader rejects the header
/// before allocating anything for the payload.
pub const MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// Errors surfaced by wire operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The peer closed the connection (or the wire tore mid-frame).
    Closed,
    /// A frame or message failed to decode (torn, corrupt, or invalid).
    Codec(CodecError),
    /// Structurally valid bytes that violate the protocol (bad version,
    /// unknown message tag, frame over [`MAX_FRAME_BYTES`], out-of-range
    /// dictionary reference, ...).
    Protocol(String),
    /// The replica does not retain the requested epoch: it is either ahead
    /// of replication (`requested > newest`) or past the retention window
    /// (`requested < oldest`).
    EpochUnavailable {
        /// The epoch the request was pinned to.
        requested: u64,
        /// Oldest epoch the replica still retains.
        oldest: u64,
        /// Newest epoch the replica has applied.
        newest: u64,
    },
    /// An I/O failure on a socket-backed transport.
    Io(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Closed => write!(f, "connection closed by peer"),
            WireError::Codec(e) => write!(f, "wire decode failed: {e}"),
            WireError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            WireError::EpochUnavailable {
                requested,
                oldest,
                newest,
            } => write!(
                f,
                "epoch {requested} unavailable on replica (retains [{oldest}, {newest}])"
            ),
            WireError::Io(msg) => write!(f, "transport i/o error: {msg}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> Self {
        WireError::Codec(e)
    }
}

/// Result alias for wire operations.
pub type WireResult<T> = std::result::Result<T, WireError>;
