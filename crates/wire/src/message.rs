//! The typed message catalog of the replication protocol.
//!
//! Every message is one frame (`len ‖ crc32 ‖ payload`); the payload is a
//! tag byte followed by the tag-specific body.  Request messages carry a
//! caller-chosen `id` echoed by their reply, so a client can demultiplex
//! concurrent requests over one connection.  Values inside probe keys,
//! result rows, membership tuples and snapshot pages are
//! dictionary-encoded (see [`crate::dict`]); WAL records deliberately are
//! **not** — they reuse [`si_data::codec::delta_bytes`] verbatim, so the
//! bytes shipped to a replica are exactly the bytes the durability log
//! frames, and a replica's `apply` path shares the WAL's decoder.
//!
//! ## Catalog
//!
//! | message | direction | reply |
//! |---|---|---|
//! | [`Message::Hello`] | primary → replica | [`Message::HelloAck`] |
//! | [`Message::Snapshot`] | primary → replica | [`Message::SnapshotAck`] |
//! | [`Message::WalRecord`] | primary → replica | [`Message::WalAck`] |
//! | [`Message::Probe`] | primary → replica | [`Message::Rows`] / [`Message::Refused`] / [`Message::Error`] |
//! | [`Message::Scan`] | primary → replica | [`Message::Rows`] / [`Message::Refused`] / [`Message::Error`] |
//! | [`Message::Contains`] | primary → replica | [`Message::Found`] / [`Message::Refused`] / [`Message::Error`] |

use crate::dict::{DecodeDict, EncodeDict};
use crate::{WireError, WireResult};
use si_data::codec::{self, Reader, RelationPage};
use si_data::{Tuple, Value};

/// Protocol version carried by [`Message::Hello`] / [`Message::HelloAck`];
/// a mismatch aborts the handshake.
pub const PROTOCOL_VERSION: u32 = 1;

const TAG_HELLO: u8 = 1;
const TAG_HELLO_ACK: u8 = 2;
const TAG_SNAPSHOT: u8 = 3;
const TAG_SNAPSHOT_ACK: u8 = 4;
const TAG_WAL_RECORD: u8 = 5;
const TAG_WAL_ACK: u8 = 6;
const TAG_PROBE: u8 = 7;
const TAG_SCAN: u8 = 8;
const TAG_CONTAINS: u8 = 9;
const TAG_ROWS: u8 = 10;
const TAG_FOUND: u8 = 11;
const TAG_REFUSED: u8 = 12;
const TAG_ERROR: u8 = 13;

/// One protocol message.  See the module docs for the catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Handshake opener (primary → replica): protocol version, the shard
    /// index this connection serves, the primary's current epoch, and the
    /// symbol-dictionary seed applied to **both** directions before any
    /// other message flows.
    Hello {
        /// Protocol version ([`PROTOCOL_VERSION`]).
        version: u32,
        /// Shard index this connection replicates.
        shard: u32,
        /// The primary's current epoch at connect time.
        epoch: u64,
        /// Shared starting vocabulary for both directions' dictionaries.
        seed: Vec<String>,
    },
    /// Handshake reply: the replica's protocol version and the newest epoch
    /// it has applied (`0` with no state; the primary uses this to choose
    /// between WAL replay and a full snapshot for resync).
    HelloAck {
        /// Protocol version ([`PROTOCOL_VERSION`]).
        version: u32,
        /// Newest epoch the replica has applied, or 0 if it holds no state.
        epoch: u64,
    },
    /// Full-state bootstrap/resync: the shard's relation pages at `epoch`.
    /// Page tuples are dictionary-encoded.
    Snapshot {
        /// The epoch the pages capture.
        epoch: u64,
        /// The shard's relations, one page each.
        pages: Vec<RelationPage>,
    },
    /// Snapshot installed; the replica now serves `epoch`.
    SnapshotAck {
        /// The installed epoch.
        epoch: u64,
    },
    /// One replicated commit: the target epoch and the commit's delta as
    /// [`si_data::codec::delta_bytes`] — the exact payload the primary's
    /// WAL framed.
    WalRecord {
        /// The epoch this record's application produces.
        epoch: u64,
        /// `delta_bytes` of the committed delta (symbols as strings).
        delta: Vec<u8>,
    },
    /// Applied (or already-held) WAL record: the replica's newest epoch.
    WalAck {
        /// Newest epoch the replica has applied.
        epoch: u64,
    },
    /// Epoch-pinned index probe: run the pushed-down part of a probe split
    /// (`select_eq` on `attrs = key`, or a full iteration when `attrs` is
    /// empty) against `relation` at `epoch`, returning the raw matches in
    /// shard-local order.  Residual filtering, projection and metering stay
    /// on the primary — that is what keeps transport-backed accounting
    /// byte-identical to in-process sharded execution.
    Probe {
        /// Request id echoed by the reply.
        id: u64,
        /// The pinned epoch to serve from.
        epoch: u64,
        /// Relation to probe.
        relation: String,
        /// Pushed-down index attributes (empty = full iteration).
        attrs: Vec<String>,
        /// Literal key values, parallel to `attrs` (dictionary-encoded).
        key: Vec<Value>,
    },
    /// Epoch-pinned full iteration of `relation` (the fan-out leg of a
    /// gated full scan).
    Scan {
        /// Request id echoed by the reply.
        id: u64,
        /// The pinned epoch to serve from.
        epoch: u64,
        /// Relation to iterate.
        relation: String,
    },
    /// Epoch-pinned membership probe (dictionary-encoded tuple).
    Contains {
        /// Request id echoed by the reply.
        id: u64,
        /// The pinned epoch to serve from.
        epoch: u64,
        /// Relation to probe.
        relation: String,
        /// The tuple whose membership is asked.
        tuple: Tuple,
    },
    /// Reply to [`Message::Probe`] / [`Message::Scan`]: the matching tuples
    /// in shard-local order (dictionary-encoded).
    Rows {
        /// Echo of the request id.
        id: u64,
        /// Matching tuples, shard-local order.
        tuples: Vec<Tuple>,
    },
    /// Reply to [`Message::Contains`].
    Found {
        /// Echo of the request id.
        id: u64,
        /// Whether the tuple is present.
        found: bool,
    },
    /// The replica refused an epoch-pinned read: the pinned epoch is ahead
    /// of replication or past the retention window.
    Refused {
        /// Echo of the request id.
        id: u64,
        /// The epoch the request was pinned to.
        requested: u64,
        /// Oldest retained epoch.
        oldest: u64,
        /// Newest applied epoch.
        newest: u64,
    },
    /// The replica failed to serve a request for any other reason.
    Error {
        /// Echo of the request id (0 when the failure was not tied to one).
        id: u64,
        /// Human-readable description.
        message: String,
    },
}

fn put_string_list(out: &mut Vec<u8>, items: &[String]) {
    codec::put_u32(out, items.len() as u32);
    for s in items {
        codec::put_str(out, s);
    }
}

fn read_string_list(r: &mut Reader<'_>) -> WireResult<Vec<String>> {
    let n = r.count_of(4).map_err(WireError::Codec)?;
    let mut items = Vec::with_capacity(n.min(r.remaining() / 4));
    for _ in 0..n {
        items.push(r.str().map_err(WireError::Codec)?.to_owned());
    }
    Ok(items)
}

fn encode_page(out: &mut Vec<u8>, page: &RelationPage, dict: &mut EncodeDict) {
    codec::put_str(out, &page.name);
    put_string_list(out, &page.attributes);
    codec::put_u32(out, page.declared.len() as u32);
    for attrs in &page.declared {
        put_string_list(out, attrs);
    }
    codec::put_u32(out, page.tuples.len() as u32);
    for t in &page.tuples {
        for v in t.iter() {
            dict.encode_value(out, *v);
        }
    }
}

fn decode_page(r: &mut Reader<'_>, dict: &mut DecodeDict) -> WireResult<RelationPage> {
    let name = r.str().map_err(WireError::Codec)?.to_owned();
    let attributes = read_string_list(r)?;
    let declared_count = r.count_of(4).map_err(WireError::Codec)?;
    let mut declared = Vec::with_capacity(declared_count.min(r.remaining() / 4));
    for _ in 0..declared_count {
        declared.push(read_string_list(r)?);
    }
    let arity = attributes.len();
    let rows = r.count_of(arity.max(1)).map_err(WireError::Codec)?;
    let mut tuples = Vec::with_capacity(rows.min(r.remaining() / arity.max(1)));
    for _ in 0..rows {
        let mut values = Vec::with_capacity(arity.min(r.remaining()));
        for _ in 0..arity {
            values.push(dict.decode_value(r)?);
        }
        tuples.push(Tuple::new(values));
    }
    Ok(RelationPage {
        name,
        attributes,
        declared,
        tuples,
    })
}

impl Message {
    /// Encodes the message payload (unframed), dictionary-encoding values
    /// through `dict`.
    pub fn encode(&self, dict: &mut EncodeDict) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Message::Hello {
                version,
                shard,
                epoch,
                seed,
            } => {
                out.push(TAG_HELLO);
                codec::put_u32(&mut out, *version);
                codec::put_u32(&mut out, *shard);
                codec::put_u64(&mut out, *epoch);
                put_string_list(&mut out, seed);
            }
            Message::HelloAck { version, epoch } => {
                out.push(TAG_HELLO_ACK);
                codec::put_u32(&mut out, *version);
                codec::put_u64(&mut out, *epoch);
            }
            Message::Snapshot { epoch, pages } => {
                out.push(TAG_SNAPSHOT);
                codec::put_u64(&mut out, *epoch);
                codec::put_u32(&mut out, pages.len() as u32);
                for page in pages {
                    encode_page(&mut out, page, dict);
                }
            }
            Message::SnapshotAck { epoch } => {
                out.push(TAG_SNAPSHOT_ACK);
                codec::put_u64(&mut out, *epoch);
            }
            Message::WalRecord { epoch, delta } => {
                out.push(TAG_WAL_RECORD);
                codec::put_u64(&mut out, *epoch);
                codec::put_u32(&mut out, delta.len() as u32);
                out.extend_from_slice(delta);
            }
            Message::WalAck { epoch } => {
                out.push(TAG_WAL_ACK);
                codec::put_u64(&mut out, *epoch);
            }
            Message::Probe {
                id,
                epoch,
                relation,
                attrs,
                key,
            } => {
                out.push(TAG_PROBE);
                codec::put_u64(&mut out, *id);
                codec::put_u64(&mut out, *epoch);
                codec::put_str(&mut out, relation);
                put_string_list(&mut out, attrs);
                codec::put_u32(&mut out, key.len() as u32);
                for v in key {
                    dict.encode_value(&mut out, *v);
                }
            }
            Message::Scan {
                id,
                epoch,
                relation,
            } => {
                out.push(TAG_SCAN);
                codec::put_u64(&mut out, *id);
                codec::put_u64(&mut out, *epoch);
                codec::put_str(&mut out, relation);
            }
            Message::Contains {
                id,
                epoch,
                relation,
                tuple,
            } => {
                out.push(TAG_CONTAINS);
                codec::put_u64(&mut out, *id);
                codec::put_u64(&mut out, *epoch);
                codec::put_str(&mut out, relation);
                dict.encode_tuple(&mut out, tuple);
            }
            Message::Rows { id, tuples } => {
                out.push(TAG_ROWS);
                codec::put_u64(&mut out, *id);
                codec::put_u32(&mut out, tuples.len() as u32);
                for t in tuples {
                    dict.encode_tuple(&mut out, t);
                }
            }
            Message::Found { id, found } => {
                out.push(TAG_FOUND);
                codec::put_u64(&mut out, *id);
                out.push(u8::from(*found));
            }
            Message::Refused {
                id,
                requested,
                oldest,
                newest,
            } => {
                out.push(TAG_REFUSED);
                codec::put_u64(&mut out, *id);
                codec::put_u64(&mut out, *requested);
                codec::put_u64(&mut out, *oldest);
                codec::put_u64(&mut out, *newest);
            }
            Message::Error { id, message } => {
                out.push(TAG_ERROR);
                codec::put_u64(&mut out, *id);
                codec::put_str(&mut out, message);
            }
        }
        out
    }

    /// Decodes one message payload (a complete frame's contents),
    /// resolving dictionary references through `dict` and requiring full
    /// consumption.
    pub fn decode(bytes: &[u8], dict: &mut DecodeDict) -> WireResult<Message> {
        let mut r = Reader::new(bytes);
        let msg = match r.u8().map_err(WireError::Codec)? {
            TAG_HELLO => Message::Hello {
                version: r.u32().map_err(WireError::Codec)?,
                shard: r.u32().map_err(WireError::Codec)?,
                epoch: r.u64().map_err(WireError::Codec)?,
                seed: read_string_list(&mut r)?,
            },
            TAG_HELLO_ACK => Message::HelloAck {
                version: r.u32().map_err(WireError::Codec)?,
                epoch: r.u64().map_err(WireError::Codec)?,
            },
            TAG_SNAPSHOT => {
                let epoch = r.u64().map_err(WireError::Codec)?;
                let n = r.count_of(4).map_err(WireError::Codec)?;
                let mut pages = Vec::with_capacity(n.min(r.remaining() / 4));
                for _ in 0..n {
                    pages.push(decode_page(&mut r, dict)?);
                }
                Message::Snapshot { epoch, pages }
            }
            TAG_SNAPSHOT_ACK => Message::SnapshotAck {
                epoch: r.u64().map_err(WireError::Codec)?,
            },
            TAG_WAL_RECORD => {
                let epoch = r.u64().map_err(WireError::Codec)?;
                let len = r.count().map_err(WireError::Codec)?;
                let mut delta = Vec::with_capacity(len);
                for _ in 0..len {
                    delta.push(r.u8().map_err(WireError::Codec)?);
                }
                Message::WalRecord { epoch, delta }
            }
            TAG_WAL_ACK => Message::WalAck {
                epoch: r.u64().map_err(WireError::Codec)?,
            },
            TAG_PROBE => {
                let id = r.u64().map_err(WireError::Codec)?;
                let epoch = r.u64().map_err(WireError::Codec)?;
                let relation = r.str().map_err(WireError::Codec)?.to_owned();
                let attrs = read_string_list(&mut r)?;
                let klen = r.count().map_err(WireError::Codec)?;
                let mut key = Vec::with_capacity(klen.min(r.remaining()));
                for _ in 0..klen {
                    key.push(dict.decode_value(&mut r)?);
                }
                Message::Probe {
                    id,
                    epoch,
                    relation,
                    attrs,
                    key,
                }
            }
            TAG_SCAN => Message::Scan {
                id: r.u64().map_err(WireError::Codec)?,
                epoch: r.u64().map_err(WireError::Codec)?,
                relation: r.str().map_err(WireError::Codec)?.to_owned(),
            },
            TAG_CONTAINS => Message::Contains {
                id: r.u64().map_err(WireError::Codec)?,
                epoch: r.u64().map_err(WireError::Codec)?,
                relation: r.str().map_err(WireError::Codec)?.to_owned(),
                tuple: dict.decode_tuple(&mut r)?,
            },
            TAG_ROWS => {
                let id = r.u64().map_err(WireError::Codec)?;
                let n = r.count_of(4).map_err(WireError::Codec)?;
                let mut tuples = Vec::with_capacity(n.min(r.remaining() / 4));
                for _ in 0..n {
                    tuples.push(dict.decode_tuple(&mut r)?);
                }
                Message::Rows { id, tuples }
            }
            TAG_FOUND => Message::Found {
                id: r.u64().map_err(WireError::Codec)?,
                found: match r.u8().map_err(WireError::Codec)? {
                    0 => false,
                    1 => true,
                    b => {
                        return Err(WireError::Codec(codec::CodecError::Invalid(format!(
                            "bad found byte {b}"
                        ))))
                    }
                },
            },
            TAG_REFUSED => Message::Refused {
                id: r.u64().map_err(WireError::Codec)?,
                requested: r.u64().map_err(WireError::Codec)?,
                oldest: r.u64().map_err(WireError::Codec)?,
                newest: r.u64().map_err(WireError::Codec)?,
            },
            TAG_ERROR => Message::Error {
                id: r.u64().map_err(WireError::Codec)?,
                message: r.str().map_err(WireError::Codec)?.to_owned(),
            },
            t => return Err(WireError::Protocol(format!("unknown message tag {t}"))),
        };
        r.expect_end().map_err(WireError::Codec)?;
        Ok(msg)
    }

    /// The request id a reply should be demultiplexed by, if this message
    /// is a reply kind.
    pub fn reply_id(&self) -> Option<u64> {
        match self {
            Message::Rows { id, .. }
            | Message::Found { id, .. }
            | Message::Refused { id, .. }
            | Message::Error { id, .. } => Some(*id),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_data::{tuple, Database};

    fn round_trip(msg: &Message) -> Message {
        let mut enc = EncodeDict::new();
        let mut dec = DecodeDict::new();
        let bytes = msg.encode(&mut enc);
        Message::decode(&bytes, &mut dec).unwrap()
    }

    #[test]
    fn every_message_kind_round_trips() {
        let mut db = Database::empty(si_data::schema::social_schema());
        db.insert("person", tuple![1, "ann", "NYC"]).unwrap();
        let page = RelationPage::from_relation(db.relation("person").unwrap());
        let delta_bytes = {
            let mut d = si_data::Delta::new();
            d.insert("friend", tuple![1, 2]);
            codec::delta_bytes(&d)
        };
        let messages = vec![
            Message::Hello {
                version: PROTOCOL_VERSION,
                shard: 3,
                epoch: 17,
                seed: vec!["NYC".into(), "ann".into()],
            },
            Message::HelloAck {
                version: PROTOCOL_VERSION,
                epoch: 12,
            },
            Message::Snapshot {
                epoch: 17,
                pages: vec![page],
            },
            Message::SnapshotAck { epoch: 17 },
            Message::WalRecord {
                epoch: 18,
                delta: delta_bytes,
            },
            Message::WalAck { epoch: 18 },
            Message::Probe {
                id: 9,
                epoch: 17,
                relation: "friend".into(),
                attrs: vec!["id1".into()],
                key: vec![Value::int(1)],
            },
            Message::Scan {
                id: 10,
                epoch: 17,
                relation: "person".into(),
            },
            Message::Contains {
                id: 11,
                epoch: 17,
                relation: "person".into(),
                tuple: tuple![1, "ann", "NYC"],
            },
            Message::Rows {
                id: 9,
                tuples: vec![tuple![1, 2], tuple![1, 3]],
            },
            Message::Found {
                id: 11,
                found: true,
            },
            Message::Refused {
                id: 9,
                requested: 20,
                oldest: 12,
                newest: 17,
            },
            Message::Error {
                id: 9,
                message: "no such relation".into(),
            },
        ];
        for msg in &messages {
            assert_eq!(&round_trip(msg), msg, "{msg:?}");
        }
    }

    #[test]
    fn dictionary_state_carries_across_messages_in_order() {
        let mut enc = EncodeDict::new();
        let mut dec = DecodeDict::new();
        let a = Message::Rows {
            id: 1,
            tuples: vec![tuple![1, "ann", "NYC"]],
        };
        let b = Message::Rows {
            id: 2,
            tuples: vec![tuple![2, "ann", "NYC"]],
        };
        let ba = a.encode(&mut enc);
        let bb = b.encode(&mut enc);
        assert!(bb.len() < ba.len(), "second message references, not spells");
        assert_eq!(Message::decode(&ba, &mut dec).unwrap(), a);
        assert_eq!(Message::decode(&bb, &mut dec).unwrap(), b);
    }

    #[test]
    fn unknown_tags_and_trailing_bytes_are_rejected() {
        let mut dec = DecodeDict::new();
        assert!(matches!(
            Message::decode(&[200], &mut dec),
            Err(WireError::Protocol(_))
        ));
        let mut enc = EncodeDict::new();
        let mut bytes = Message::WalAck { epoch: 1 }.encode(&mut enc);
        bytes.push(0);
        assert!(matches!(
            Message::decode(&bytes, &mut dec),
            Err(WireError::Codec(codec::CodecError::Invalid(_)))
        ));
    }
}
