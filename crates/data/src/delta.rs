//! Updates `∆D = (∆D, ∇D)` as defined in Section 5 of the paper.
//!
//! An update consists of a list of tuples to be inserted (`∆D`) and a list of
//! tuples to be deleted (`∇D`).  Well-formedness requires `∇D ⊆ D`,
//! `∆D ∩ D = ∅` and `∆D ∩ ∇D = ∅`; [`Delta::apply`] checks these conditions
//! and produces `D ⊕ ∆D = (D − ∇D) ∪ ∆D`, applied relation-wise.

use crate::database::Database;
use crate::error::DataError;
use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::Result;
use std::collections::BTreeMap;
use std::fmt;

/// Insertions and deletions targeting a single relation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RelationDelta {
    /// Tuples to insert (`∆D` restricted to this relation).
    pub insertions: Vec<Tuple>,
    /// Tuples to delete (`∇D` restricted to this relation).
    pub deletions: Vec<Tuple>,
}

impl RelationDelta {
    /// Number of tuples mentioned by this per-relation update.
    pub fn len(&self) -> usize {
        self.insertions.len() + self.deletions.len()
    }

    /// True iff neither insertions nor deletions are present.
    pub fn is_empty(&self) -> bool {
        self.insertions.is_empty() && self.deletions.is_empty()
    }
}

/// A full update `∆D = (∆D, ∇D)` over a database, organised per relation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Delta {
    relations: BTreeMap<String, RelationDelta>,
}

impl Delta {
    /// Creates an empty update.
    pub fn new() -> Self {
        Delta::default()
    }

    /// Records a tuple insertion into `relation`.
    pub fn insert(&mut self, relation: impl Into<String>, tuple: Tuple) -> &mut Self {
        self.relations
            .entry(relation.into())
            .or_default()
            .insertions
            .push(tuple);
        self
    }

    /// Records a tuple deletion from `relation`.
    pub fn delete(&mut self, relation: impl Into<String>, tuple: Tuple) -> &mut Self {
        self.relations
            .entry(relation.into())
            .or_default()
            .deletions
            .push(tuple);
        self
    }

    /// Builds an insertion-only update into a single relation.
    pub fn insertions_into(relation: impl Into<String>, tuples: Vec<Tuple>) -> Self {
        let mut delta = Delta::new();
        let relation = relation.into();
        for t in tuples {
            delta.insert(relation.clone(), t);
        }
        delta
    }

    /// Builds a deletion-only update from a single relation.
    pub fn deletions_from(relation: impl Into<String>, tuples: Vec<Tuple>) -> Self {
        let mut delta = Delta::new();
        let relation = relation.into();
        for t in tuples {
            delta.delete(relation.clone(), t);
        }
        delta
    }

    /// Total number of tuples mentioned, `|∆D|` in the paper's notation
    /// (insertions plus deletions).
    pub fn size(&self) -> usize {
        self.relations.values().map(RelationDelta::len).sum()
    }

    /// True iff the update changes nothing.
    pub fn is_empty(&self) -> bool {
        self.size() == 0
    }

    /// True iff the update contains no deletions.
    pub fn is_insertion_only(&self) -> bool {
        self.relations.values().all(|d| d.deletions.is_empty())
    }

    /// Names of the relations touched by the update.
    pub fn touched_relations(&self) -> Vec<String> {
        self.relations
            .iter()
            .filter(|(_, d)| !d.is_empty())
            .map(|(name, _)| name.clone())
            .collect()
    }

    /// The per-relation slice of the update.
    pub fn relation_delta(&self, relation: &str) -> Option<&RelationDelta> {
        self.relations.get(relation)
    }

    /// Iterates over `(relation, delta)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &RelationDelta)> {
        self.relations.iter()
    }

    /// Checks the well-formedness conditions of Section 5 against `db`:
    /// deletions must already be present, insertions must be absent, and no
    /// tuple may be both inserted and deleted.
    pub fn validate(&self, db: &Database) -> Result<()> {
        self.validate_relations(|name| db.relation(name))
    }

    /// [`Delta::validate`] generalised over the storage surface: `lookup`
    /// resolves a relation name to the relation of whatever instance the
    /// update targets (an owned [`Database`], a pinned
    /// [`crate::DatabaseSnapshot`] version, …).
    pub fn validate_relations<'a, F>(&self, lookup: F) -> Result<()>
    where
        F: Fn(&str) -> Result<&'a Relation>,
    {
        for (relation, delta) in &self.relations {
            let rel = lookup(relation)?;
            for t in &delta.insertions {
                if t.arity() != rel.schema().arity() {
                    return Err(DataError::ArityMismatch {
                        relation: relation.clone(),
                        expected: rel.schema().arity(),
                        actual: t.arity(),
                    });
                }
                if rel.contains(t) {
                    return Err(DataError::InvalidUpdate(format!(
                        "insertion {t} into `{relation}` is not disjoint from D"
                    )));
                }
            }
            for t in &delta.deletions {
                if !rel.contains(t) {
                    return Err(DataError::InvalidUpdate(format!(
                        "deletion {t} from `{relation}` is not contained in D"
                    )));
                }
                if delta.insertions.contains(t) {
                    return Err(DataError::InvalidUpdate(format!(
                        "tuple {t} of `{relation}` appears in both ∆D and ∇D"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Applies the update, returning `D ⊕ ∆D` as a new database.
    ///
    /// The original database is left untouched; callers that want in-place
    /// application can use [`Delta::apply_in_place`].
    pub fn apply(&self, db: &Database) -> Result<Database> {
        self.validate(db)?;
        let mut out = db.clone();
        self.apply_unchecked(&mut out)?;
        Ok(out)
    }

    /// Applies the update in place after validating it.
    pub fn apply_in_place(&self, db: &mut Database) -> Result<()> {
        self.validate(db)?;
        self.apply_unchecked(db)
    }

    fn apply_unchecked(&self, db: &mut Database) -> Result<()> {
        for (relation, delta) in &self.relations {
            for t in &delta.deletions {
                db.remove(relation, t)?;
            }
            for t in &delta.insertions {
                db.insert(relation, t.clone())?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "∆D[")?;
        let mut first = true;
        for (rel, d) in &self.relations {
            if !first {
                write!(f, "; ")?;
            }
            first = false;
            write!(f, "{rel}: +{} −{}", d.insertions.len(), d.deletions.len())?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::social_schema;
    use crate::tuple;

    fn db() -> Database {
        let mut db = Database::empty(social_schema());
        db.insert("person", tuple![1, "ann", "NYC"]).unwrap();
        db.insert("friend", tuple![1, 2]).unwrap();
        db.insert("visit", tuple![1, 10]).unwrap();
        db
    }

    #[test]
    fn builders_and_size() {
        let mut delta = Delta::new();
        delta
            .insert("visit", tuple![2, 10])
            .insert("visit", tuple![3, 10])
            .delete("friend", tuple![1, 2]);
        assert_eq!(delta.size(), 3);
        assert!(!delta.is_empty());
        assert!(!delta.is_insertion_only());
        assert_eq!(delta.touched_relations(), vec!["friend", "visit"]);
        assert_eq!(delta.relation_delta("visit").unwrap().insertions.len(), 2);
        assert!(delta.relation_delta("person").is_none());
        assert_eq!(delta.iter().count(), 2);
    }

    #[test]
    fn insertion_only_constructor() {
        let delta = Delta::insertions_into("visit", vec![tuple![5, 10], tuple![6, 10]]);
        assert!(delta.is_insertion_only());
        assert_eq!(delta.size(), 2);
        let delta = Delta::deletions_from("visit", vec![tuple![1, 10]]);
        assert!(!delta.is_insertion_only());
    }

    #[test]
    fn apply_produces_d_oplus_delta() {
        let base = db();
        let mut delta = Delta::new();
        delta.insert("visit", tuple![2, 11]);
        delta.delete("friend", tuple![1, 2]);
        let updated = delta.apply(&base).unwrap();
        assert!(updated.contains("visit", &tuple![2, 11]).unwrap());
        assert!(!updated.contains("friend", &tuple![1, 2]).unwrap());
        // Base must be unchanged.
        assert!(base.contains("friend", &tuple![1, 2]).unwrap());
        assert!(!base.contains("visit", &tuple![2, 11]).unwrap());
        assert_eq!(updated.size(), base.size());
    }

    #[test]
    fn apply_in_place_mutates() {
        let mut base = db();
        let delta = Delta::insertions_into("visit", vec![tuple![9, 9]]);
        delta.apply_in_place(&mut base).unwrap();
        assert!(base.contains("visit", &tuple![9, 9]).unwrap());
    }

    #[test]
    fn apply_maintains_secondary_indexes() {
        let mut base = db();
        base.insert("friend", tuple![1, 3]).unwrap();
        base.ensure_index("friend", &["id1".into()]).unwrap();
        let mut delta = Delta::new();
        delta
            .insert("friend", tuple![1, 4])
            .delete("friend", tuple![1, 2]);
        delta.apply_in_place(&mut base).unwrap();
        let friend = base.relation("friend").unwrap();
        let (rows, used_index) = friend
            .select_eq(&["id1".into()], &[crate::Value::int(1)])
            .unwrap();
        assert!(used_index);
        assert_eq!(rows, vec![tuple![1, 3], tuple![1, 4]]);
    }

    #[test]
    fn validation_rejects_non_disjoint_insertions() {
        let base = db();
        let delta = Delta::insertions_into("visit", vec![tuple![1, 10]]);
        assert!(matches!(
            delta.apply(&base),
            Err(DataError::InvalidUpdate(_))
        ));
    }

    #[test]
    fn validation_rejects_missing_deletions() {
        let base = db();
        let delta = Delta::deletions_from("visit", vec![tuple![7, 7]]);
        assert!(matches!(
            delta.apply(&base),
            Err(DataError::InvalidUpdate(_))
        ));
    }

    #[test]
    fn validation_rejects_overlapping_insert_delete() {
        let base = db();
        let mut delta = Delta::new();
        // The tuple is in D, so deleting is fine, but it also appears in the
        // insertion list which the paper forbids (∆D ∩ ∇D = ∅).  Insertion of
        // an existing tuple is caught first; craft the overlap the other way.
        delta.delete("visit", tuple![1, 10]);
        delta.insert("visit", tuple![1, 10]);
        let err = delta.apply(&base).unwrap_err();
        assert!(matches!(err, DataError::InvalidUpdate(_)));
    }

    #[test]
    fn validation_rejects_bad_arity_and_unknown_relation() {
        let base = db();
        let delta = Delta::insertions_into("visit", vec![tuple![1, 2, 3]]);
        assert!(matches!(
            delta.apply(&base),
            Err(DataError::ArityMismatch { .. })
        ));
        let delta = Delta::insertions_into("enemy", vec![tuple![1]]);
        assert!(matches!(
            delta.apply(&base),
            Err(DataError::UnknownRelation(_))
        ));
    }

    #[test]
    fn display_summarises_counts() {
        let mut delta = Delta::new();
        delta
            .insert("visit", tuple![2, 10])
            .delete("friend", tuple![1, 2]);
        let s = delta.to_string();
        assert!(s.contains("visit: +1 −0"));
        assert!(s.contains("friend: +0 −1"));
    }
}
