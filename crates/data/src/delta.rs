//! Updates `∆D = (∆D, ∇D)` as defined in Section 5 of the paper.
//!
//! An update consists of a list of tuples to be inserted (`∆D`) and a list of
//! tuples to be deleted (`∇D`).  Well-formedness requires `∇D ⊆ D`,
//! `∆D ∩ D = ∅` and `∆D ∩ ∇D = ∅`; [`Delta::apply`] checks these conditions
//! and produces `D ⊕ ∆D = (D − ∇D) ∪ ∆D`, applied relation-wise.

use crate::database::Database;
use crate::error::DataError;
use crate::relation::Relation;
use crate::shard::ShardedSnapshotView;
use crate::snapshot::DatabaseSnapshot;
use crate::tuple::Tuple;
use crate::Result;
use std::collections::BTreeMap;
use std::fmt;

/// Insertions and deletions targeting a single relation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RelationDelta {
    /// Tuples to insert (`∆D` restricted to this relation).
    pub insertions: Vec<Tuple>,
    /// Tuples to delete (`∇D` restricted to this relation).
    pub deletions: Vec<Tuple>,
}

impl RelationDelta {
    /// Number of tuples mentioned by this per-relation update.
    pub fn len(&self) -> usize {
        self.insertions.len() + self.deletions.len()
    }

    /// True iff neither insertions nor deletions are present.
    pub fn is_empty(&self) -> bool {
        self.insertions.is_empty() && self.deletions.is_empty()
    }
}

/// A full update `∆D = (∆D, ∇D)` over a database, organised per relation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Delta {
    relations: BTreeMap<String, RelationDelta>,
}

impl Delta {
    /// Creates an empty update.
    pub fn new() -> Self {
        Delta::default()
    }

    /// Records a tuple insertion into `relation`.
    pub fn insert(&mut self, relation: impl Into<String>, tuple: Tuple) -> &mut Self {
        self.relations
            .entry(relation.into())
            .or_default()
            .insertions
            .push(tuple);
        self
    }

    /// Records a tuple deletion from `relation`.
    pub fn delete(&mut self, relation: impl Into<String>, tuple: Tuple) -> &mut Self {
        self.relations
            .entry(relation.into())
            .or_default()
            .deletions
            .push(tuple);
        self
    }

    /// Builds an insertion-only update into a single relation.
    pub fn insertions_into(relation: impl Into<String>, tuples: Vec<Tuple>) -> Self {
        let mut delta = Delta::new();
        let relation = relation.into();
        for t in tuples {
            delta.insert(relation.clone(), t);
        }
        delta
    }

    /// Builds a deletion-only update from a single relation.
    pub fn deletions_from(relation: impl Into<String>, tuples: Vec<Tuple>) -> Self {
        let mut delta = Delta::new();
        let relation = relation.into();
        for t in tuples {
            delta.delete(relation.clone(), t);
        }
        delta
    }

    /// Total number of tuples mentioned, `|∆D|` in the paper's notation
    /// (insertions plus deletions).
    pub fn size(&self) -> usize {
        self.relations.values().map(RelationDelta::len).sum()
    }

    /// True iff the update changes nothing.
    pub fn is_empty(&self) -> bool {
        self.size() == 0
    }

    /// True iff the update contains no deletions.
    pub fn is_insertion_only(&self) -> bool {
        self.relations.values().all(|d| d.deletions.is_empty())
    }

    /// Names of the relations touched by the update.
    pub fn touched_relations(&self) -> Vec<String> {
        self.relations
            .iter()
            .filter(|(_, d)| !d.is_empty())
            .map(|(name, _)| name.clone())
            .collect()
    }

    /// The per-relation slice of the update.
    pub fn relation_delta(&self, relation: &str) -> Option<&RelationDelta> {
        self.relations.get(relation)
    }

    /// Iterates over `(relation, delta)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &RelationDelta)> {
        self.relations.iter()
    }

    /// Checks the well-formedness conditions of Section 5 against `db`:
    /// deletions must already be present, insertions must be absent, and no
    /// tuple may be both inserted and deleted.
    pub fn validate(&self, db: &Database) -> Result<()> {
        self.validate_relations(|name| db.relation(name))
    }

    /// [`Delta::validate`] generalised over the storage surface: `lookup`
    /// resolves a relation name to the relation of whatever instance the
    /// update targets (an owned [`Database`], a pinned
    /// [`crate::DatabaseSnapshot`] version, …).
    pub fn validate_relations<'a, F>(&self, lookup: F) -> Result<()>
    where
        F: Fn(&str) -> Result<&'a Relation>,
    {
        for (relation, delta) in &self.relations {
            let rel = lookup(relation)?;
            for t in &delta.insertions {
                if t.arity() != rel.schema().arity() {
                    return Err(DataError::ArityMismatch {
                        relation: relation.clone(),
                        expected: rel.schema().arity(),
                        actual: t.arity(),
                    });
                }
                if rel.contains(t) {
                    return Err(DataError::InvalidUpdate(format!(
                        "insertion {t} into `{relation}` is not disjoint from D"
                    )));
                }
            }
            for t in &delta.deletions {
                if !rel.contains(t) {
                    return Err(DataError::InvalidUpdate(format!(
                        "deletion {t} from `{relation}` is not contained in D"
                    )));
                }
                if delta.insertions.contains(t) {
                    return Err(DataError::InvalidUpdate(format!(
                        "tuple {t} of `{relation}` appears in both ∆D and ∇D"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Applies the update, returning `D ⊕ ∆D` as a new database.
    ///
    /// The original database is left untouched; callers that want in-place
    /// application can use [`Delta::apply_in_place`].
    pub fn apply(&self, db: &Database) -> Result<Database> {
        self.validate(db)?;
        let mut out = db.clone();
        self.apply_unchecked(&mut out)?;
        Ok(out)
    }

    /// Applies the update in place after validating it.
    pub fn apply_in_place(&self, db: &mut Database) -> Result<()> {
        self.validate(db)?;
        self.apply_unchecked(db)
    }

    fn apply_unchecked(&self, db: &mut Database) -> Result<()> {
        for (relation, delta) in &self.relations {
            for t in &delta.deletions {
                db.remove(relation, t)?;
            }
            for t in &delta.insertions {
                db.insert(relation, t.clone())?;
            }
        }
        Ok(())
    }
}

/// The read-only membership surface a [`DeltaBatch`] validates against:
/// just enough of an instance to decide relation arity and tuple
/// membership.  Unlike [`Delta::validate_relations`], which hands out whole
/// [`Relation`]s, this works where no merged relation exists — a
/// [`ShardedSnapshotView`] answers membership by *routing* the tuple to its
/// home shard.
pub trait DeltaBase {
    /// The arity of `relation` (unknown relations error).
    fn arity(&self, relation: &str) -> Result<usize>;
    /// True iff `relation` contains `tuple` in this instance.
    fn contains(&self, relation: &str, tuple: &Tuple) -> Result<bool>;
}

impl DeltaBase for Database {
    fn arity(&self, relation: &str) -> Result<usize> {
        Ok(self.relation(relation)?.schema().arity())
    }

    fn contains(&self, relation: &str, tuple: &Tuple) -> Result<bool> {
        Ok(self.relation(relation)?.contains(tuple))
    }
}

impl DeltaBase for DatabaseSnapshot {
    fn arity(&self, relation: &str) -> Result<usize> {
        Ok(self.relation(relation)?.schema().arity())
    }

    fn contains(&self, relation: &str, tuple: &Tuple) -> Result<bool> {
        Ok(self.relation(relation)?.contains(tuple))
    }
}

impl DeltaBase for ShardedSnapshotView {
    fn arity(&self, relation: &str) -> Result<usize> {
        Ok(self.schema().relation(relation)?.arity())
    }

    fn contains(&self, relation: &str, tuple: &Tuple) -> Result<bool> {
        // Shards partition the instance, so membership is decided entirely
        // on the tuple's home shard.
        let home = self.route_tuple(relation, tuple);
        Ok(self.shard(home).relation(relation)?.contains(tuple))
    }
}

/// The net effect of one tuple across a folded batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NetOp {
    Insert,
    Delete,
}

/// An order-preserving fold of a sequence of [`Delta`]s into one net-effect
/// update: `base ⊕ merged = ((base ⊕ d₁) ⊕ d₂) ⊕ …` for every folded `dᵢ`.
///
/// Each [`DeltaBatch::fold`] validates its delta against the *evolved*
/// state (`base` plus the net effect folded so far) with exactly the
/// Section-5 well-formedness rules a sequential [`Delta::apply`] chain
/// would enforce, and folds **atomically**: an invalid delta errors and
/// leaves the running merge untouched, mirroring the sequential contract
/// where a bad commit leaves the store unchanged and later commits proceed.
///
/// Cross-delta churn cancels to its net effect: a tuple deleted by one
/// delta and reinserted by a later one (the batch was pinned on
/// delete-then-reinsert semantics) nets to *no change*, and an
/// insert-then-delete pair nets away likewise — which is why a group commit
/// of a small-commit storm maintains answers over far fewer tuples than the
/// storm applied commit by commit.  Within a single delta the paper's
/// `∆D ∩ ∇D = ∅` rule still holds (overlap is an error, not a
/// cancellation), exactly as in [`Delta::validate`].
///
/// The merged delta is well formed against `base` by construction: a tuple
/// ends in the insertion list only if `base` lacks it, in the deletion list
/// only if `base` contains it, and never in both.
#[derive(Debug)]
pub struct DeltaBatch<'a, B: DeltaBase> {
    base: &'a B,
    net: BTreeMap<String, BTreeMap<Tuple, NetOp>>,
    folded: usize,
}

impl<'a, B: DeltaBase> DeltaBatch<'a, B> {
    /// Starts an empty batch over `base`.
    pub fn new(base: &'a B) -> Self {
        DeltaBatch {
            base,
            net: BTreeMap::new(),
            folded: 0,
        }
    }

    /// Number of deltas folded so far (invalid ones are not counted).
    pub fn folded(&self) -> usize {
        self.folded
    }

    /// True iff the folded deltas net to no change.
    pub fn is_noop(&self) -> bool {
        self.net.values().all(BTreeMap::is_empty)
    }

    /// Membership of `tuple` in `base ⊕ (net effect so far)`.
    fn effective_contains(&self, relation: &str, tuple: &Tuple) -> Result<bool> {
        match self.net.get(relation).and_then(|m| m.get(tuple)) {
            Some(NetOp::Insert) => Ok(true),
            Some(NetOp::Delete) => Ok(false),
            None => self.base.contains(relation, tuple),
        }
    }

    /// Validates `delta` against the evolved state and folds it into the
    /// running net effect.  All-or-nothing: on error the batch is unchanged.
    ///
    /// Validation mirrors [`Delta::validate_relations`] — same checks, same
    /// error kinds, same per-relation check order — evaluated against
    /// `base ⊕ (net effect so far)` instead of a materialised instance.
    pub fn fold(&mut self, delta: &Delta) -> Result<()> {
        // Phase 1: validate the whole delta against the pre-delta state
        // (sequential `apply` validates before it mutates, so duplicate
        // mentions within one delta see the same pre-state there and here).
        for (relation, rd) in delta.iter() {
            let arity = self.base.arity(relation)?;
            for t in &rd.insertions {
                if t.arity() != arity {
                    return Err(DataError::ArityMismatch {
                        relation: relation.clone(),
                        expected: arity,
                        actual: t.arity(),
                    });
                }
                if self.effective_contains(relation, t)? {
                    return Err(DataError::InvalidUpdate(format!(
                        "insertion {t} into `{relation}` is not disjoint from D"
                    )));
                }
            }
            for t in &rd.deletions {
                if !self.effective_contains(relation, t)? {
                    return Err(DataError::InvalidUpdate(format!(
                        "deletion {t} from `{relation}` is not contained in D"
                    )));
                }
                if rd.insertions.contains(t) {
                    return Err(DataError::InvalidUpdate(format!(
                        "tuple {t} of `{relation}` appears in both ∆D and ∇D"
                    )));
                }
            }
        }

        // Phase 2: apply the state transitions — deletions before
        // insertions, matching the application order of a single delta.
        // Transitions are idempotent under within-delta duplicates, exactly
        // like the set-semantics insert/remove of the stores.
        for (relation, rd) in delta.iter() {
            let entry = self.net.entry(relation.clone()).or_default();
            for t in &rd.deletions {
                match entry.get(t) {
                    // An earlier delta's insertion cancels away.
                    Some(NetOp::Insert) => {
                        entry.remove(t);
                    }
                    // Duplicate deletion within this delta: no-op.
                    Some(NetOp::Delete) => {}
                    // Base contains the tuple (validated): net deletion.
                    None => {
                        entry.insert(t.clone(), NetOp::Delete);
                    }
                }
            }
            for t in &rd.insertions {
                match entry.get(t) {
                    // Reinsertion of a tuple an earlier delta deleted: the
                    // pair nets to no change (base still contains it).
                    Some(NetOp::Delete) => {
                        entry.remove(t);
                    }
                    // Duplicate insertion within this delta: no-op.
                    Some(NetOp::Insert) => {}
                    // Base lacks the tuple (validated): net insertion.
                    None => {
                        entry.insert(t.clone(), NetOp::Insert);
                    }
                }
            }
        }
        self.folded += 1;
        Ok(())
    }

    /// The net-effect update: applying it to `base` once yields exactly the
    /// instance the folded deltas produce applied one by one.
    pub fn merged(&self) -> Delta {
        let mut delta = Delta::new();
        for (relation, ops) in &self.net {
            for (t, op) in ops {
                match op {
                    NetOp::Insert => delta.insert(relation.clone(), t.clone()),
                    NetOp::Delete => delta.delete(relation.clone(), t.clone()),
                };
            }
        }
        delta
    }
}

impl Delta {
    /// Folds `deltas` (in order) into one net-effect update over `base`,
    /// failing on the first delta that is invalid against the evolved state.
    /// See [`DeltaBatch`] for the incremental, error-tolerant form.
    pub fn merge<B: DeltaBase>(base: &B, deltas: &[Delta]) -> Result<Delta> {
        let mut batch = DeltaBatch::new(base);
        for delta in deltas {
            batch.fold(delta)?;
        }
        Ok(batch.merged())
    }
}

impl fmt::Display for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "∆D[")?;
        let mut first = true;
        for (rel, d) in &self.relations {
            if !first {
                write!(f, "; ")?;
            }
            first = false;
            write!(f, "{rel}: +{} −{}", d.insertions.len(), d.deletions.len())?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::social_schema;
    use crate::tuple;

    fn db() -> Database {
        let mut db = Database::empty(social_schema());
        db.insert("person", tuple![1, "ann", "NYC"]).unwrap();
        db.insert("friend", tuple![1, 2]).unwrap();
        db.insert("visit", tuple![1, 10]).unwrap();
        db
    }

    #[test]
    fn builders_and_size() {
        let mut delta = Delta::new();
        delta
            .insert("visit", tuple![2, 10])
            .insert("visit", tuple![3, 10])
            .delete("friend", tuple![1, 2]);
        assert_eq!(delta.size(), 3);
        assert!(!delta.is_empty());
        assert!(!delta.is_insertion_only());
        assert_eq!(delta.touched_relations(), vec!["friend", "visit"]);
        assert_eq!(delta.relation_delta("visit").unwrap().insertions.len(), 2);
        assert!(delta.relation_delta("person").is_none());
        assert_eq!(delta.iter().count(), 2);
    }

    #[test]
    fn insertion_only_constructor() {
        let delta = Delta::insertions_into("visit", vec![tuple![5, 10], tuple![6, 10]]);
        assert!(delta.is_insertion_only());
        assert_eq!(delta.size(), 2);
        let delta = Delta::deletions_from("visit", vec![tuple![1, 10]]);
        assert!(!delta.is_insertion_only());
    }

    #[test]
    fn apply_produces_d_oplus_delta() {
        let base = db();
        let mut delta = Delta::new();
        delta.insert("visit", tuple![2, 11]);
        delta.delete("friend", tuple![1, 2]);
        let updated = delta.apply(&base).unwrap();
        assert!(updated.contains("visit", &tuple![2, 11]).unwrap());
        assert!(!updated.contains("friend", &tuple![1, 2]).unwrap());
        // Base must be unchanged.
        assert!(base.contains("friend", &tuple![1, 2]).unwrap());
        assert!(!base.contains("visit", &tuple![2, 11]).unwrap());
        assert_eq!(updated.size(), base.size());
    }

    #[test]
    fn apply_in_place_mutates() {
        let mut base = db();
        let delta = Delta::insertions_into("visit", vec![tuple![9, 9]]);
        delta.apply_in_place(&mut base).unwrap();
        assert!(base.contains("visit", &tuple![9, 9]).unwrap());
    }

    #[test]
    fn apply_maintains_secondary_indexes() {
        let mut base = db();
        base.insert("friend", tuple![1, 3]).unwrap();
        base.ensure_index("friend", &["id1".into()]).unwrap();
        let mut delta = Delta::new();
        delta
            .insert("friend", tuple![1, 4])
            .delete("friend", tuple![1, 2]);
        delta.apply_in_place(&mut base).unwrap();
        let friend = base.relation("friend").unwrap();
        let (rows, used_index) = friend
            .select_eq(&["id1".into()], &[crate::Value::int(1)])
            .unwrap();
        assert!(used_index);
        assert_eq!(rows, vec![tuple![1, 3], tuple![1, 4]]);
    }

    #[test]
    fn validation_rejects_non_disjoint_insertions() {
        let base = db();
        let delta = Delta::insertions_into("visit", vec![tuple![1, 10]]);
        assert!(matches!(
            delta.apply(&base),
            Err(DataError::InvalidUpdate(_))
        ));
    }

    #[test]
    fn validation_rejects_missing_deletions() {
        let base = db();
        let delta = Delta::deletions_from("visit", vec![tuple![7, 7]]);
        assert!(matches!(
            delta.apply(&base),
            Err(DataError::InvalidUpdate(_))
        ));
    }

    #[test]
    fn validation_rejects_overlapping_insert_delete() {
        let base = db();
        let mut delta = Delta::new();
        // The tuple is in D, so deleting is fine, but it also appears in the
        // insertion list which the paper forbids (∆D ∩ ∇D = ∅).  Insertion of
        // an existing tuple is caught first; craft the overlap the other way.
        delta.delete("visit", tuple![1, 10]);
        delta.insert("visit", tuple![1, 10]);
        let err = delta.apply(&base).unwrap_err();
        assert!(matches!(err, DataError::InvalidUpdate(_)));
    }

    #[test]
    fn validation_rejects_bad_arity_and_unknown_relation() {
        let base = db();
        let delta = Delta::insertions_into("visit", vec![tuple![1, 2, 3]]);
        assert!(matches!(
            delta.apply(&base),
            Err(DataError::ArityMismatch { .. })
        ));
        let delta = Delta::insertions_into("enemy", vec![tuple![1]]);
        assert!(matches!(
            delta.apply(&base),
            Err(DataError::UnknownRelation(_))
        ));
    }

    #[test]
    fn batch_fold_merges_to_the_sequential_net_effect() {
        let base = db();
        let mut batch = DeltaBatch::new(&base);
        // d1: insert a fresh visit; d2: delete it again (insert-then-delete
        // nets away); d3: delete an original tuple; d4: reinsert it
        // (delete-then-reinsert nets away); d5: a surviving insertion.
        let d1 = Delta::insertions_into("visit", vec![tuple![7, 70]]);
        let d2 = Delta::deletions_from("visit", vec![tuple![7, 70]]);
        let d3 = Delta::deletions_from("friend", vec![tuple![1, 2]]);
        let d4 = Delta::insertions_into("friend", vec![tuple![1, 2]]);
        let d5 = Delta::insertions_into("visit", vec![tuple![8, 80]]);
        for d in [&d1, &d2, &d3, &d4, &d5] {
            batch.fold(d).unwrap();
        }
        assert_eq!(batch.folded(), 5);
        let merged = batch.merged();
        assert_eq!(merged.size(), 1);
        assert!(merged.relation_delta("visit").unwrap().insertions == vec![tuple![8, 80]]);
        // Applying the merged delta once equals applying the batch one by one.
        let mut sequential = base.clone();
        for d in [&d1, &d2, &d3, &d4, &d5] {
            d.apply_in_place(&mut sequential).unwrap();
        }
        let grouped = merged.apply(&base).unwrap();
        assert!(grouped.contains_database(&sequential) && sequential.contains_database(&grouped));
    }

    #[test]
    fn batch_validates_against_the_evolved_state() {
        let base = db();
        let mut batch = DeltaBatch::new(&base);
        // Deleting a tuple an earlier folded delta inserted is fine…
        batch
            .fold(&Delta::insertions_into("visit", vec![tuple![5, 50]]))
            .unwrap();
        batch
            .fold(&Delta::deletions_from("visit", vec![tuple![5, 50]]))
            .unwrap();
        // …deleting it twice is not (the evolved state lacks it).
        let err = batch
            .fold(&Delta::deletions_from("visit", vec![tuple![5, 50]]))
            .unwrap_err();
        assert!(matches!(err, DataError::InvalidUpdate(_)));
        // Inserting a tuple an earlier delta already inserted is rejected.
        batch
            .fold(&Delta::insertions_into("visit", vec![tuple![6, 60]]))
            .unwrap();
        assert!(batch
            .fold(&Delta::insertions_into("visit", vec![tuple![6, 60]]))
            .is_err());
        assert_eq!(batch.folded(), 3);
    }

    #[test]
    fn invalid_folds_leave_the_batch_untouched() {
        let base = db();
        let mut batch = DeltaBatch::new(&base);
        batch
            .fold(&Delta::insertions_into("visit", vec![tuple![5, 50]]))
            .unwrap();
        // A delta whose *second* relation is invalid must fold nothing: the
        // valid friend deletion may not leak into the net effect.
        let mut bad = Delta::new();
        bad.delete("friend", tuple![1, 2]);
        bad.insert("visit", tuple![1, 10]); // already in base
        assert!(batch.fold(&bad).is_err());
        let merged = batch.merged();
        assert_eq!(merged.size(), 1);
        assert!(merged.relation_delta("friend").is_none());
        // Later valid deltas still fold — the sequential apply-and-continue
        // contract.
        batch
            .fold(&Delta::deletions_from("friend", vec![tuple![1, 2]]))
            .unwrap();
        assert_eq!(batch.merged().size(), 2);
    }

    #[test]
    fn batch_error_kinds_match_sequential_validation() {
        let base = db();
        let mut batch = DeltaBatch::new(&base);
        assert!(matches!(
            batch.fold(&Delta::insertions_into("visit", vec![tuple![1, 2, 3]])),
            Err(DataError::ArityMismatch { .. })
        ));
        assert!(matches!(
            batch.fold(&Delta::insertions_into("enemy", vec![tuple![1]])),
            Err(DataError::UnknownRelation(_))
        ));
        let mut overlap = Delta::new();
        overlap.delete("visit", tuple![1, 10]);
        overlap.insert("visit", tuple![1, 10]);
        assert!(matches!(
            batch.fold(&overlap),
            Err(DataError::InvalidUpdate(_))
        ));
        assert!(batch.is_noop());
        assert_eq!(batch.folded(), 0);
    }

    #[test]
    fn merge_helper_folds_or_fails_fast() {
        let base = db();
        let deltas = vec![
            Delta::insertions_into("visit", vec![tuple![5, 50]]),
            Delta::deletions_from("visit", vec![tuple![5, 50]]),
        ];
        let merged = Delta::merge(&base, &deltas).unwrap();
        assert!(merged.is_empty());
        let bad = vec![Delta::insertions_into("visit", vec![tuple![1, 10]])];
        assert!(Delta::merge(&base, &bad).is_err());
    }

    #[test]
    fn delta_base_is_uniform_over_snapshots_and_sharded_views() {
        use crate::shard::{PartitionMap, ShardedSnapshotStore};
        use crate::snapshot::SnapshotStore;
        let store = SnapshotStore::new(db());
        let snap = store.pin();
        assert_eq!(DeltaBase::arity(snap.as_ref(), "visit").unwrap(), 2);
        assert!(DeltaBase::contains(snap.as_ref(), "visit", &tuple![1, 10]).unwrap());
        assert!(!DeltaBase::contains(snap.as_ref(), "visit", &tuple![9, 9]).unwrap());
        let sharded = ShardedSnapshotStore::new(
            db(),
            PartitionMap::new()
                .with("visit", "id")
                .with("friend", "id1"),
            3,
        )
        .unwrap();
        let view = sharded.pin();
        assert_eq!(DeltaBase::arity(view.as_ref(), "person").unwrap(), 3);
        assert!(DeltaBase::contains(view.as_ref(), "friend", &tuple![1, 2]).unwrap());
        assert!(!DeltaBase::contains(view.as_ref(), "friend", &tuple![2, 9]).unwrap());
        assert!(DeltaBase::arity(view.as_ref(), "enemy").is_err());
        // A merge over a sharded view validates by routed membership.
        let deltas = vec![
            Delta::deletions_from("friend", vec![tuple![1, 2]]),
            Delta::insertions_into("friend", vec![tuple![1, 2]]),
        ];
        assert!(Delta::merge(view.as_ref(), &deltas).unwrap().is_empty());
    }

    #[test]
    fn display_summarises_counts() {
        let mut delta = Delta::new();
        delta
            .insert("visit", tuple![2, 10])
            .delete("friend", tuple![1, 2]);
        let s = delta.to_string();
        assert!(s.contains("visit: +1 −0"));
        assert!(s.contains("friend: +0 −1"));
    }
}
