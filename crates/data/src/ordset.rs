//! An insertion-ordered set of tuples with single-copy storage.
//!
//! The seed representation stored every relation twice — a `Vec<Tuple>` for
//! deterministic iteration plus a `HashSet<Tuple>` for membership — and every
//! evaluator re-invented the same pair for answer deduplication.  [`TupleSet`]
//! keeps one owned copy of each tuple (in insertion order) and maintains a
//! side table from tuple *hash* to positions, so membership stays O(1)
//! expected without duplicating tuple storage.  Hash collisions are resolved
//! by comparing against the stored tuples.

use crate::tuple::Tuple;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A deduplicated, insertion-ordered collection of [`Tuple`]s.
///
/// Used as the single storage of [`crate::Relation`] and as the answer-set
/// accumulator of the evaluators in `si-query`/`si-core`.
#[derive(Debug, Clone, Default)]
pub struct TupleSet {
    tuples: Vec<Tuple>,
    /// tuple hash → positions in `tuples` carrying that hash.
    buckets: HashMap<u64, Vec<u32>>,
}

fn hash_of(tuple: &Tuple) -> u64 {
    let mut h = DefaultHasher::new();
    tuple.hash(&mut h);
    h.finish()
}

impl TupleSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        TupleSet::default()
    }

    /// Creates an empty set sized for `capacity` tuples.
    pub fn with_capacity(capacity: usize) -> Self {
        TupleSet {
            tuples: Vec::with_capacity(capacity),
            buckets: HashMap::with_capacity(capacity),
        }
    }

    /// Number of (distinct) tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True iff the set holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuples as a slice, in insertion order.
    pub fn as_slice(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Iterates over the tuples in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.tuples.iter()
    }

    /// The tuple stored at `position`, if any.
    pub fn get(&self, position: usize) -> Option<&Tuple> {
        self.tuples.get(position)
    }

    /// Position of `tuple` in insertion order, if present.
    pub fn position_of(&self, tuple: &Tuple) -> Option<usize> {
        let hash = hash_of(tuple);
        self.buckets.get(&hash).and_then(|bucket| {
            bucket
                .iter()
                .find(|&&p| &self.tuples[p as usize] == tuple)
                .map(|&p| p as usize)
        })
    }

    /// Membership test.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.position_of(tuple).is_some()
    }

    /// Inserts `tuple`, ignoring duplicates; returns `true` when it was new.
    pub fn insert(&mut self, tuple: Tuple) -> bool {
        let hash = hash_of(&tuple);
        let bucket = self.buckets.entry(hash).or_default();
        if bucket.iter().any(|&p| self.tuples[p as usize] == tuple) {
            return false;
        }
        let position = u32::try_from(self.tuples.len()).expect("TupleSet exceeds u32 positions");
        bucket.push(position);
        self.tuples.push(tuple);
        true
    }

    /// Removes `tuple` if present, preserving the insertion order of the
    /// remaining tuples; returns `true` when something was removed.
    pub fn remove(&mut self, tuple: &Tuple) -> bool {
        self.remove_returning_position(tuple).is_some()
    }

    /// Removes `tuple` if present, returning the position it occupied so
    /// that callers maintaining side structures (e.g. secondary indexes) can
    /// shift their own entries without a second lookup.
    ///
    /// Removal is O(n) because all later positions shift, but the side table
    /// is adjusted in place — no key is re-hashed and no bucket is rebuilt.
    pub fn remove_returning_position(&mut self, tuple: &Tuple) -> Option<usize> {
        let hash = hash_of(tuple);
        let bucket = self.buckets.get_mut(&hash)?;
        let position = *bucket
            .iter()
            .find(|&&p| &self.tuples[p as usize] == tuple)? as usize;
        bucket.retain(|&p| p as usize != position);
        if bucket.is_empty() {
            self.buckets.remove(&hash);
        }
        self.tuples.remove(position);
        for bucket in self.buckets.values_mut() {
            for p in bucket.iter_mut() {
                if *p as usize > position {
                    *p -= 1;
                }
            }
        }
        Some(position)
    }

    /// Drops all tuples.
    pub fn clear(&mut self) {
        self.tuples.clear();
        self.buckets.clear();
    }

    /// Consumes the set, returning the tuples in insertion order.
    pub fn into_vec(self) -> Vec<Tuple> {
        self.tuples
    }
}

impl PartialEq for TupleSet {
    fn eq(&self, other: &Self) -> bool {
        self.tuples == other.tuples
    }
}

impl Eq for TupleSet {}

impl FromIterator<Tuple> for TupleSet {
    fn from_iter<T: IntoIterator<Item = Tuple>>(iter: T) -> Self {
        let mut set = TupleSet::new();
        for t in iter {
            set.insert(t);
        }
        set
    }
}

impl Extend<Tuple> for TupleSet {
    fn extend<T: IntoIterator<Item = Tuple>>(&mut self, iter: T) {
        for t in iter {
            self.insert(t);
        }
    }
}

impl<'a> IntoIterator for &'a TupleSet {
    type Item = &'a Tuple;
    type IntoIter = std::slice::Iter<'a, Tuple>;

    fn into_iter(self) -> Self::IntoIter {
        self.tuples.iter()
    }
}

impl IntoIterator for TupleSet {
    type Item = Tuple;
    type IntoIter = std::vec::IntoIter<Tuple>;

    fn into_iter(self) -> Self::IntoIter {
        self.tuples.into_iter()
    }
}

impl fmt::Display for TupleSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.tuples.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn insert_deduplicates_and_preserves_order() {
        let mut s = TupleSet::new();
        assert!(s.insert(tuple![3]));
        assert!(s.insert(tuple![1]));
        assert!(!s.insert(tuple![3]));
        assert!(s.insert(tuple![2]));
        assert_eq!(s.len(), 3);
        assert_eq!(s.as_slice(), &[tuple![3], tuple![1], tuple![2]]);
        assert!(s.contains(&tuple![1]));
        assert!(!s.contains(&tuple![9]));
        assert_eq!(s.position_of(&tuple![2]), Some(2));
    }

    #[test]
    fn remove_preserves_order_of_the_rest() {
        let mut s: TupleSet = vec![tuple![1], tuple![2], tuple![3]].into_iter().collect();
        assert!(s.remove(&tuple![2]));
        assert!(!s.remove(&tuple![2]));
        assert_eq!(s.as_slice(), &[tuple![1], tuple![3]]);
        assert!(s.contains(&tuple![3]));
        assert_eq!(s.position_of(&tuple![3]), Some(1));
    }

    #[test]
    fn iteration_and_conversions() {
        let s: TupleSet = vec![tuple![1, "a"], tuple![2, "b"], tuple![1, "a"]]
            .into_iter()
            .collect();
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().count(), 2);
        assert_eq!((&s).into_iter().count(), 2);
        let v = s.clone().into_vec();
        assert_eq!(v, vec![tuple![1, "a"], tuple![2, "b"]]);
        assert_eq!(s.clone().into_iter().count(), 2);
        assert!(s.to_string().contains("(1, \"a\")"));
    }

    #[test]
    fn equality_is_order_sensitive_like_a_vec() {
        let a: TupleSet = vec![tuple![1], tuple![2]].into_iter().collect();
        let b: TupleSet = vec![tuple![1], tuple![2]].into_iter().collect();
        let c: TupleSet = vec![tuple![2], tuple![1]].into_iter().collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn clear_resets_everything() {
        let mut s: TupleSet = vec![tuple![1]].into_iter().collect();
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(&tuple![1]));
        assert!(s.insert(tuple![1]));
    }

    #[test]
    fn survives_many_inserts_with_collisions_resolved_by_equality() {
        let mut s = TupleSet::new();
        for i in 0..1000 {
            assert!(s.insert(tuple![i, i % 7]));
        }
        for i in 0..1000 {
            assert!(!s.insert(tuple![i, i % 7]));
            assert!(s.contains(&tuple![i, i % 7]));
        }
        assert_eq!(s.len(), 1000);
    }
}
