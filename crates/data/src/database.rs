//! Database instances: named collections of relations.

use crate::error::DataError;
use crate::relation::Relation;
use crate::schema::DatabaseSchema;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Result;
use std::collections::{BTreeMap, HashSet};
use std::fmt;

/// An instance `D` of a relational schema: one [`Relation`] per relation name.
///
/// The paper measures `|D|` as the total number of tuples across relations
/// ([`Database::size`]); the active domain `adom(D)` is the set of all values
/// appearing anywhere in `D` ([`Database::active_domain`]).
#[derive(Debug, Clone)]
pub struct Database {
    schema: DatabaseSchema,
    relations: BTreeMap<String, Relation>,
}

impl Database {
    /// Creates an empty instance of `schema` (every relation empty).
    pub fn empty(schema: DatabaseSchema) -> Self {
        let relations = schema
            .relations()
            .map(|r| (r.name().to_owned(), Relation::new(r.clone())))
            .collect();
        Database { schema, relations }
    }

    /// The database schema.
    pub fn schema(&self) -> &DatabaseSchema {
        &self.schema
    }

    /// The symbol interner resolving this instance's string values.
    ///
    /// Symbols are process-global (see [`crate::intern`]) so that values stay
    /// comparable across databases, deltas and query constants; the accessor
    /// is the database-side handle for display/serialisation code that needs
    /// to resolve [`crate::Symbol`]s.
    pub fn interner(&self) -> &'static crate::SymbolInterner {
        crate::intern::interner()
    }

    /// Total number of tuples, `|D|`.
    pub fn size(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// True iff every relation is empty.
    pub fn is_empty(&self) -> bool {
        self.size() == 0
    }

    /// Looks up a relation by name.
    pub fn relation(&self, name: &str) -> Result<&Relation> {
        self.relations
            .get(name)
            .ok_or_else(|| DataError::UnknownRelation(name.to_owned()))
    }

    /// Mutable lookup of a relation by name.
    pub fn relation_mut(&mut self, name: &str) -> Result<&mut Relation> {
        self.relations
            .get_mut(name)
            .ok_or_else(|| DataError::UnknownRelation(name.to_owned()))
    }

    /// Iterates over all relations in name order.
    pub fn relations(&self) -> impl Iterator<Item = &Relation> {
        self.relations.values()
    }

    /// Inserts a tuple into the named relation.
    pub fn insert(&mut self, relation: &str, tuple: Tuple) -> Result<bool> {
        self.relation_mut(relation)?.insert(tuple)
    }

    /// Bulk-inserts tuples into the named relation.
    pub fn insert_all<I>(&mut self, relation: &str, tuples: I) -> Result<usize>
    where
        I: IntoIterator<Item = Tuple>,
    {
        let rel = self.relation_mut(relation)?;
        let mut inserted = 0;
        for t in tuples {
            if rel.insert(t)? {
                inserted += 1;
            }
        }
        Ok(inserted)
    }

    /// Removes a tuple from the named relation; `true` if it was present.
    pub fn remove(&mut self, relation: &str, tuple: &Tuple) -> Result<bool> {
        Ok(self.relation_mut(relation)?.remove(tuple))
    }

    /// Membership test for a tuple in a relation.
    pub fn contains(&self, relation: &str, tuple: &Tuple) -> Result<bool> {
        Ok(self.relation(relation)?.contains(tuple))
    }

    /// The active domain `adom(D)`: every value occurring in the instance.
    pub fn active_domain(&self) -> HashSet<Value> {
        let mut adom = HashSet::new();
        for r in self.relations.values() {
            r.collect_adom(&mut adom);
        }
        adom
    }

    /// Builds a sub-instance containing exactly the listed
    /// `(relation, tuple)` pairs.  Pairs referring to tuples not present in
    /// `self` are rejected, so the result is guaranteed to satisfy
    /// `D' ⊆ D` — the shape of the witness sets `D_Q` of the paper.
    pub fn sub_database(&self, picks: &[(String, Tuple)]) -> Result<Database> {
        let mut sub = Database::empty(self.schema.clone());
        for (rel_name, tuple) in picks {
            let rel = self.relation(rel_name)?;
            if !rel.contains(tuple) {
                return Err(DataError::Invariant(format!(
                    "tuple {tuple} is not in relation `{rel_name}` of the base instance"
                )));
            }
            sub.insert(rel_name, tuple.clone())?;
        }
        Ok(sub)
    }

    /// Lists every `(relation, tuple)` pair of the instance, in deterministic
    /// order.  This is the ground set over which witness search enumerates
    /// subsets.
    pub fn all_facts(&self) -> Vec<(String, Tuple)> {
        let mut facts = Vec::with_capacity(self.size());
        for (name, rel) in &self.relations {
            for t in rel.iter() {
                facts.push((name.clone(), t.clone()));
            }
        }
        facts
    }

    /// True iff every tuple of `other` appears in `self` (instance-wise
    /// containment `other ⊆ self`).
    pub fn contains_database(&self, other: &Database) -> bool {
        other.relations.iter().all(|(name, rel)| {
            self.relations
                .get(name)
                .map(|mine| rel.iter().all(|t| mine.contains(t)))
                .unwrap_or_else(|| rel.is_empty())
        })
    }

    /// Ensures an index exists on `attributes` of `relation`, building it
    /// immediately.
    pub fn ensure_index(&mut self, relation: &str, attributes: &[String]) -> Result<()> {
        self.relation_mut(relation)?.ensure_index(attributes)
    }

    /// Declares an index on `attributes` of `relation` without building it;
    /// the index materialises on its first probe (see
    /// [`Relation::select_eq`]).
    pub fn declare_index(&mut self, relation: &str, attributes: &[String]) -> Result<()> {
        self.relation_mut(relation)?.declare_index(attributes)
    }

    /// Collects fresh per-relation statistics (row counts, per-column
    /// distinct counts) for the whole instance.
    pub fn statistics(&self) -> crate::stats::DatabaseStats {
        crate::stats::DatabaseStats::collect(self)
    }

    /// Decomposes the instance into its schema and relation map (used by
    /// [`crate::snapshot::DatabaseSnapshot`] to take ownership of the
    /// relations without cloning them).
    pub(crate) fn into_parts(self) -> (DatabaseSchema, BTreeMap<String, Relation>) {
        (self.schema, self.relations)
    }

    /// Reassembles an instance from parts produced by [`Database::into_parts`]
    /// (or rebuilt relation-wise, as a snapshot materialisation does).
    pub(crate) fn from_parts(
        schema: DatabaseSchema,
        relations: BTreeMap<String, Relation>,
    ) -> Self {
        Database { schema, relations }
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Database [{} tuples]", self.size())?;
        for r in self.relations.values() {
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{social_schema, RelationSchema};
    use crate::tuple;

    fn small_social() -> Database {
        let mut db = Database::empty(social_schema());
        db.insert_all(
            "person",
            vec![
                tuple![1, "ann", "NYC"],
                tuple![2, "bob", "LA"],
                tuple![3, "cat", "NYC"],
            ],
        )
        .unwrap();
        db.insert_all("friend", vec![tuple![1, 2], tuple![1, 3], tuple![2, 3]])
            .unwrap();
        db.insert_all(
            "restr",
            vec![
                tuple![10, "sushi", "NYC", "A"],
                tuple![11, "taco", "LA", "B"],
            ],
        )
        .unwrap();
        db.insert_all("visit", vec![tuple![2, 10], tuple![3, 10], tuple![3, 11]])
            .unwrap();
        db
    }

    #[test]
    fn size_counts_all_relations() {
        let db = small_social();
        assert_eq!(db.size(), 3 + 3 + 2 + 3);
        assert!(!db.is_empty());
        assert!(Database::empty(social_schema()).is_empty());
    }

    #[test]
    fn relation_lookup_and_errors() {
        let db = small_social();
        assert_eq!(db.relation("friend").unwrap().len(), 3);
        assert!(matches!(
            db.relation("enemy"),
            Err(DataError::UnknownRelation(_))
        ));
        assert!(db.contains("visit", &tuple![2, 10]).unwrap());
        assert!(!db.contains("visit", &tuple![1, 10]).unwrap());
    }

    #[test]
    fn insert_remove_round_trip() {
        let mut db = small_social();
        assert!(db.insert("friend", tuple![3, 1]).unwrap());
        assert!(!db.insert("friend", tuple![3, 1]).unwrap());
        assert!(db.remove("friend", &tuple![3, 1]).unwrap());
        assert!(!db.remove("friend", &tuple![3, 1]).unwrap());
    }

    #[test]
    fn active_domain_collects_values_across_relations() {
        let db = small_social();
        let adom = db.active_domain();
        assert!(adom.contains(&Value::str("NYC")));
        assert!(adom.contains(&Value::int(11)));
        assert!(adom.contains(&Value::str("A")));
        assert!(!adom.contains(&Value::str("Tokyo")));
    }

    #[test]
    fn sub_database_is_contained_in_base() {
        let db = small_social();
        let sub = db
            .sub_database(&[
                ("friend".into(), tuple![1, 2]),
                ("person".into(), tuple![2, "bob", "LA"]),
            ])
            .unwrap();
        assert_eq!(sub.size(), 2);
        assert!(db.contains_database(&sub));
        assert!(!sub.contains_database(&db));
    }

    #[test]
    fn sub_database_rejects_foreign_tuples() {
        let db = small_social();
        let err = db
            .sub_database(&[("friend".into(), tuple![9, 9])])
            .unwrap_err();
        assert!(matches!(err, DataError::Invariant(_)));
    }

    #[test]
    fn all_facts_enumerates_every_tuple() {
        let db = small_social();
        let facts = db.all_facts();
        assert_eq!(facts.len(), db.size());
        assert!(facts.contains(&("person".into(), tuple![1, "ann", "NYC"])));
        // Deterministic order: relations in name order.
        assert_eq!(facts[0].0, "friend");
    }

    #[test]
    fn contains_database_handles_schema_differences() {
        let db = small_social();
        let other_schema =
            DatabaseSchema::from_relations(vec![RelationSchema::new("friend", &["id1", "id2"])])
                .unwrap();
        let mut other = Database::empty(other_schema);
        other.insert("friend", tuple![1, 2]).unwrap();
        assert!(db.contains_database(&other));
        other.insert("friend", tuple![9, 9]).unwrap();
        assert!(!db.contains_database(&other));
    }

    #[test]
    fn ensure_index_delegates_to_relation() {
        let mut db = small_social();
        db.ensure_index("person", &["id".into()]).unwrap();
        assert!(db
            .relation("person")
            .unwrap()
            .has_built_index(&["id".into()]));
        assert!(db.ensure_index("enemy", &["id".into()]).is_err());
        db.declare_index("friend", &["id1".into()]).unwrap();
        let friend = db.relation("friend").unwrap();
        assert!(friend.has_index(&["id1".into()]));
        assert!(!friend.has_built_index(&["id1".into()]));
        assert!(db.declare_index("enemy", &["id".into()]).is_err());
    }

    #[test]
    fn statistics_snapshot_matches_contents() {
        let db = small_social();
        let stats = db.statistics();
        assert_eq!(stats.total_rows(), db.size());
        assert_eq!(stats.relation("friend").unwrap().distinct("id1"), Some(2));
    }

    #[test]
    fn display_lists_relations() {
        let db = small_social();
        let text = db.to_string();
        assert!(text.contains("Database [11 tuples]"));
        assert!(text.contains("person"));
    }
}
