//! Deterministic access metering.
//!
//! Scale independence is defined in terms of *how many tuples of the base
//! data are accessed*, not wall-clock time.  Every retrieval path in the
//! workspace (indexed fetches, full scans, naive evaluation) reports to an
//! [`AccessMeter`], so that experiments can verify claims such as
//! "`Q(D)` was computed by fetching at most `M` tuples of `D`" exactly,
//! independent of machine speed.

use std::cell::Cell;
use std::fmt;

/// Counters describing how much of the base data an evaluation touched.
///
/// The meter uses interior mutability (`Cell`) so that it can be shared
/// immutably between an executor and the storage layer it drives.
#[derive(Debug, Default)]
pub struct AccessMeter {
    tuples_fetched: Cell<u64>,
    index_probes: Cell<u64>,
    full_scans: Cell<u64>,
    time_units: Cell<u64>,
}

/// An immutable snapshot of an [`AccessMeter`], convenient for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MeterSnapshot {
    /// Number of base tuples materialised by retrievals.
    pub tuples_fetched: u64,
    /// Number of index probes issued.
    pub index_probes: u64,
    /// Number of full relation scans performed.
    pub full_scans: u64,
    /// Abstract time units charged by the access-schema cost model (the `T`
    /// components of access constraints).
    pub time_units: u64,
}

impl AccessMeter {
    /// Creates a meter with all counters at zero.
    pub fn new() -> Self {
        AccessMeter::default()
    }

    /// Records that `n` base tuples were fetched.
    pub fn add_tuples(&self, n: u64) {
        self.tuples_fetched.set(self.tuples_fetched.get() + n);
    }

    /// Records one index probe.
    pub fn add_probe(&self) {
        self.index_probes.set(self.index_probes.get() + 1);
    }

    /// Records one full relation scan.
    pub fn add_scan(&self) {
        self.full_scans.set(self.full_scans.get() + 1);
    }

    /// Charges `t` abstract time units.
    pub fn add_time(&self, t: u64) {
        self.time_units.set(self.time_units.get() + t);
    }

    /// Number of base tuples fetched so far.
    pub fn tuples_fetched(&self) -> u64 {
        self.tuples_fetched.get()
    }

    /// Number of index probes so far.
    pub fn index_probes(&self) -> u64 {
        self.index_probes.get()
    }

    /// Number of full scans so far.
    pub fn full_scans(&self) -> u64 {
        self.full_scans.get()
    }

    /// Abstract time units charged so far.
    pub fn time_units(&self) -> u64 {
        self.time_units.get()
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.tuples_fetched.set(0);
        self.index_probes.set(0);
        self.full_scans.set(0);
        self.time_units.set(0);
    }

    /// Takes an immutable snapshot of the counters.
    pub fn snapshot(&self) -> MeterSnapshot {
        MeterSnapshot {
            tuples_fetched: self.tuples_fetched.get(),
            index_probes: self.index_probes.get(),
            full_scans: self.full_scans.get(),
            time_units: self.time_units.get(),
        }
    }
}

impl fmt::Display for MeterSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fetched={} probes={} scans={} time={}",
            self.tuples_fetched, self.index_probes, self.full_scans, self.time_units
        )
    }
}

impl MeterSnapshot {
    /// Component-wise difference `self − earlier`, useful for measuring a
    /// single evaluation inside a longer-running meter.
    pub fn since(&self, earlier: &MeterSnapshot) -> MeterSnapshot {
        MeterSnapshot {
            tuples_fetched: self.tuples_fetched - earlier.tuples_fetched,
            index_probes: self.index_probes - earlier.index_probes,
            full_scans: self.full_scans - earlier.full_scans,
            time_units: self.time_units - earlier.time_units,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = AccessMeter::new();
        m.add_tuples(3);
        m.add_tuples(2);
        m.add_probe();
        m.add_scan();
        m.add_time(7);
        assert_eq!(m.tuples_fetched(), 5);
        assert_eq!(m.index_probes(), 1);
        assert_eq!(m.full_scans(), 1);
        assert_eq!(m.time_units(), 7);
    }

    #[test]
    fn snapshot_and_reset() {
        let m = AccessMeter::new();
        m.add_tuples(10);
        m.add_probe();
        let snap = m.snapshot();
        assert_eq!(snap.tuples_fetched, 10);
        assert_eq!(snap.index_probes, 1);
        m.reset();
        assert_eq!(m.snapshot(), MeterSnapshot::default());
    }

    #[test]
    fn since_subtracts_componentwise() {
        let m = AccessMeter::new();
        m.add_tuples(4);
        let before = m.snapshot();
        m.add_tuples(6);
        m.add_scan();
        let after = m.snapshot();
        let delta = after.since(&before);
        assert_eq!(delta.tuples_fetched, 6);
        assert_eq!(delta.full_scans, 1);
        assert_eq!(delta.index_probes, 0);
    }

    #[test]
    fn meter_is_shareable_immutably() {
        let m = AccessMeter::new();
        let r1 = &m;
        let r2 = &m;
        r1.add_tuples(1);
        r2.add_tuples(1);
        assert_eq!(m.tuples_fetched(), 2);
    }

    #[test]
    fn display_mentions_all_counters() {
        let m = AccessMeter::new();
        m.add_tuples(2);
        m.add_time(3);
        let s = m.snapshot().to_string();
        assert!(s.contains("fetched=2"));
        assert!(s.contains("time=3"));
    }
}
