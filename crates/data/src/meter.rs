//! Deterministic access metering.
//!
//! Scale independence is defined in terms of *how many tuples of the base
//! data are accessed*, not wall-clock time.  Every retrieval path in the
//! workspace (indexed fetches, full scans, naive evaluation) reports to a
//! [`MeterSink`], so that experiments can verify claims such as
//! "`Q(D)` was computed by fetching at most `M` tuples of `D`" exactly,
//! independent of machine speed.
//!
//! Two sinks are provided:
//!
//! * [`AccessMeter`] — `Cell`-based, the cheapest possible counters for
//!   single-threaded evaluation (deliberately `!Sync`);
//! * [`SharedMeter`] — `AtomicU64`-based and `Sync`, for aggregating counts
//!   across the worker threads of the `si-engine` serving layer.  Workers
//!   keep charging a thread-local [`AccessMeter`] on the hot path and fold
//!   the result into a `SharedMeter` once per request
//!   ([`SharedMeter::merge`]), so the atomics never sit on a fetch loop.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// The interface every retrieval path charges its access counts to.
///
/// All methods take `&self`: sinks use interior mutability (`Cell` for the
/// single-threaded [`AccessMeter`], atomics for the thread-safe
/// [`SharedMeter`]) so that a sink can be shared immutably between an
/// executor and the storage layer it drives.  The trait is object safe —
/// generic retrieval code can hold a `&dyn MeterSink`.
pub trait MeterSink {
    /// Records that `n` base tuples were fetched.
    fn add_tuples(&self, n: u64);
    /// Records one index probe.
    fn add_probe(&self);
    /// Records one full relation scan.
    fn add_scan(&self);
    /// Charges `t` abstract time units.
    fn add_time(&self, t: u64);
    /// Takes an immutable snapshot of the counters.
    fn snapshot(&self) -> MeterSnapshot;
    /// Resets every counter to zero.
    fn reset(&self);
}

/// Counters describing how much of the base data an evaluation touched.
///
/// The meter uses interior mutability (`Cell`) so that it can be shared
/// immutably between an executor and the storage layer it drives.
#[derive(Debug, Default)]
pub struct AccessMeter {
    tuples_fetched: Cell<u64>,
    index_probes: Cell<u64>,
    full_scans: Cell<u64>,
    time_units: Cell<u64>,
}

/// An immutable snapshot of an [`AccessMeter`], convenient for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MeterSnapshot {
    /// Number of base tuples materialised by retrievals.
    pub tuples_fetched: u64,
    /// Number of index probes issued.
    pub index_probes: u64,
    /// Number of full relation scans performed.
    pub full_scans: u64,
    /// Abstract time units charged by the access-schema cost model (the `T`
    /// components of access constraints).
    pub time_units: u64,
}

impl AccessMeter {
    /// Creates a meter with all counters at zero.
    pub fn new() -> Self {
        AccessMeter::default()
    }

    /// Records that `n` base tuples were fetched.
    pub fn add_tuples(&self, n: u64) {
        self.tuples_fetched.set(self.tuples_fetched.get() + n);
    }

    /// Records one index probe.
    pub fn add_probe(&self) {
        self.index_probes.set(self.index_probes.get() + 1);
    }

    /// Records one full relation scan.
    pub fn add_scan(&self) {
        self.full_scans.set(self.full_scans.get() + 1);
    }

    /// Charges `t` abstract time units.
    pub fn add_time(&self, t: u64) {
        self.time_units.set(self.time_units.get() + t);
    }

    /// Number of base tuples fetched so far.
    pub fn tuples_fetched(&self) -> u64 {
        self.tuples_fetched.get()
    }

    /// Number of index probes so far.
    pub fn index_probes(&self) -> u64 {
        self.index_probes.get()
    }

    /// Number of full scans so far.
    pub fn full_scans(&self) -> u64 {
        self.full_scans.get()
    }

    /// Abstract time units charged so far.
    pub fn time_units(&self) -> u64 {
        self.time_units.get()
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.tuples_fetched.set(0);
        self.index_probes.set(0);
        self.full_scans.set(0);
        self.time_units.set(0);
    }

    /// Takes an immutable snapshot of the counters.
    pub fn snapshot(&self) -> MeterSnapshot {
        MeterSnapshot {
            tuples_fetched: self.tuples_fetched.get(),
            index_probes: self.index_probes.get(),
            full_scans: self.full_scans.get(),
            time_units: self.time_units.get(),
        }
    }
}

impl MeterSink for AccessMeter {
    fn add_tuples(&self, n: u64) {
        AccessMeter::add_tuples(self, n)
    }
    fn add_probe(&self) {
        AccessMeter::add_probe(self)
    }
    fn add_scan(&self) {
        AccessMeter::add_scan(self)
    }
    fn add_time(&self, t: u64) {
        AccessMeter::add_time(self, t)
    }
    fn snapshot(&self) -> MeterSnapshot {
        AccessMeter::snapshot(self)
    }
    fn reset(&self) {
        AccessMeter::reset(self)
    }
}

/// A thread-safe meter: the same counters as [`AccessMeter`], kept in
/// `AtomicU64`s so that per-worker counts aggregate without locks.
///
/// Per-counter increments are lock-free `fetch_add`s with relaxed ordering —
/// the counters are statistics, not synchronisation points.  The intended
/// pattern for hot loops is still a thread-local [`AccessMeter`] per worker,
/// folded in once per unit of work via [`SharedMeter::merge`].
#[derive(Debug, Default)]
pub struct SharedMeter {
    tuples_fetched: AtomicU64,
    index_probes: AtomicU64,
    full_scans: AtomicU64,
    time_units: AtomicU64,
}

impl SharedMeter {
    /// Creates a shared meter with all counters at zero.
    pub fn new() -> Self {
        SharedMeter::default()
    }

    /// Adds an already-aggregated snapshot (e.g. a worker's per-request
    /// [`AccessMeter`] delta) into the shared counters: four atomic adds
    /// instead of one per fetch.
    pub fn merge(&self, delta: &MeterSnapshot) {
        self.tuples_fetched
            .fetch_add(delta.tuples_fetched, Ordering::Relaxed);
        self.index_probes
            .fetch_add(delta.index_probes, Ordering::Relaxed);
        self.full_scans
            .fetch_add(delta.full_scans, Ordering::Relaxed);
        self.time_units
            .fetch_add(delta.time_units, Ordering::Relaxed);
    }

    /// Number of base tuples fetched so far.
    pub fn tuples_fetched(&self) -> u64 {
        self.tuples_fetched.load(Ordering::Relaxed)
    }

    /// Number of index probes so far.
    pub fn index_probes(&self) -> u64 {
        self.index_probes.load(Ordering::Relaxed)
    }

    /// Number of full scans so far.
    pub fn full_scans(&self) -> u64 {
        self.full_scans.load(Ordering::Relaxed)
    }

    /// Abstract time units charged so far.
    pub fn time_units(&self) -> u64 {
        self.time_units.load(Ordering::Relaxed)
    }
}

impl MeterSink for SharedMeter {
    fn add_tuples(&self, n: u64) {
        self.tuples_fetched.fetch_add(n, Ordering::Relaxed);
    }
    fn add_probe(&self) {
        self.index_probes.fetch_add(1, Ordering::Relaxed);
    }
    fn add_scan(&self) {
        self.full_scans.fetch_add(1, Ordering::Relaxed);
    }
    fn add_time(&self, t: u64) {
        self.time_units.fetch_add(t, Ordering::Relaxed);
    }
    fn snapshot(&self) -> MeterSnapshot {
        MeterSnapshot {
            tuples_fetched: self.tuples_fetched(),
            index_probes: self.index_probes(),
            full_scans: self.full_scans(),
            time_units: self.time_units(),
        }
    }
    fn reset(&self) {
        self.tuples_fetched.store(0, Ordering::Relaxed);
        self.index_probes.store(0, Ordering::Relaxed);
        self.full_scans.store(0, Ordering::Relaxed);
        self.time_units.store(0, Ordering::Relaxed);
    }
}

impl fmt::Display for MeterSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fetched={} probes={} scans={} time={}",
            self.tuples_fetched, self.index_probes, self.full_scans, self.time_units
        )
    }
}

impl MeterSnapshot {
    /// Component-wise difference `self − earlier`, useful for measuring a
    /// single evaluation inside a longer-running meter.
    pub fn since(&self, earlier: &MeterSnapshot) -> MeterSnapshot {
        MeterSnapshot {
            tuples_fetched: self.tuples_fetched - earlier.tuples_fetched,
            index_probes: self.index_probes - earlier.index_probes,
            full_scans: self.full_scans - earlier.full_scans,
            time_units: self.time_units - earlier.time_units,
        }
    }

    /// Component-wise sum, used to aggregate the per-worker deltas of a
    /// partitioned execution into one access-cost report.
    pub fn plus(&self, other: &MeterSnapshot) -> MeterSnapshot {
        MeterSnapshot {
            tuples_fetched: self.tuples_fetched + other.tuples_fetched,
            index_probes: self.index_probes + other.index_probes,
            full_scans: self.full_scans + other.full_scans,
            time_units: self.time_units + other.time_units,
        }
    }

    /// Every counter with its stable exposition name, in declaration order.
    ///
    /// This is the metrics-plane integration point: exporters iterate the
    /// snapshot instead of hand-listing fields, so a counter added here is
    /// automatically picked up by every exposition surface built on top.
    pub fn named_counters(&self) -> [(&'static str, u64); 4] {
        [
            ("tuples_fetched", self.tuples_fetched),
            ("index_probes", self.index_probes),
            ("full_scans", self.full_scans),
            ("time_units", self.time_units),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = AccessMeter::new();
        m.add_tuples(3);
        m.add_tuples(2);
        m.add_probe();
        m.add_scan();
        m.add_time(7);
        assert_eq!(m.tuples_fetched(), 5);
        assert_eq!(m.index_probes(), 1);
        assert_eq!(m.full_scans(), 1);
        assert_eq!(m.time_units(), 7);
    }

    #[test]
    fn snapshot_and_reset() {
        let m = AccessMeter::new();
        m.add_tuples(10);
        m.add_probe();
        let snap = m.snapshot();
        assert_eq!(snap.tuples_fetched, 10);
        assert_eq!(snap.index_probes, 1);
        m.reset();
        assert_eq!(m.snapshot(), MeterSnapshot::default());
    }

    #[test]
    fn since_subtracts_componentwise() {
        let m = AccessMeter::new();
        m.add_tuples(4);
        let before = m.snapshot();
        m.add_tuples(6);
        m.add_scan();
        let after = m.snapshot();
        let delta = after.since(&before);
        assert_eq!(delta.tuples_fetched, 6);
        assert_eq!(delta.full_scans, 1);
        assert_eq!(delta.index_probes, 0);
    }

    #[test]
    fn meter_is_shareable_immutably() {
        let m = AccessMeter::new();
        let r1 = &m;
        let r2 = &m;
        r1.add_tuples(1);
        r2.add_tuples(1);
        assert_eq!(m.tuples_fetched(), 2);
    }

    #[test]
    fn shared_meter_aggregates_across_threads() {
        let shared = SharedMeter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    // Hot path: a thread-local Cell meter…
                    let local = AccessMeter::new();
                    for _ in 0..100 {
                        local.add_tuples(2);
                        local.add_probe();
                    }
                    local.add_time(5);
                    // …folded into the shared sink once.
                    shared.merge(&MeterSink::snapshot(&local));
                });
            }
        });
        assert_eq!(shared.tuples_fetched(), 800);
        assert_eq!(shared.index_probes(), 400);
        assert_eq!(shared.time_units(), 20);
        assert_eq!(shared.full_scans(), 0);
    }

    #[test]
    fn shared_meter_implements_the_sink_directly() {
        let shared = SharedMeter::new();
        let sink: &dyn MeterSink = &shared;
        sink.add_tuples(3);
        sink.add_probe();
        sink.add_scan();
        sink.add_time(2);
        let snap = sink.snapshot();
        assert_eq!(snap.tuples_fetched, 3);
        assert_eq!(snap.index_probes, 1);
        assert_eq!(snap.full_scans, 1);
        assert_eq!(snap.time_units, 2);
        sink.reset();
        assert_eq!(sink.snapshot(), MeterSnapshot::default());
    }

    #[test]
    fn access_meter_serves_as_a_dyn_sink() {
        let m = AccessMeter::new();
        let sink: &dyn MeterSink = &m;
        sink.add_tuples(4);
        sink.add_time(1);
        assert_eq!(m.tuples_fetched(), 4);
        assert_eq!(sink.snapshot().time_units, 1);
    }

    #[test]
    fn display_mentions_all_counters() {
        let m = AccessMeter::new();
        m.add_tuples(2);
        m.add_time(3);
        let s = m.snapshot().to_string();
        assert!(s.contains("fetched=2"));
        assert!(s.contains("time=3"));
    }
}
