//! Compact, hand-rolled binary codec for the data plane.
//!
//! The durability layer (`si-durability`) and the planned replication
//! transport both need a stable byte representation of [`Value`]s,
//! [`Tuple`]s, [`Delta`]s and whole relation pages.  The environment is
//! offline — no serde — so this module hand-rolls a small length-prefixed
//! format with two deliberate properties:
//!
//! * **Interning-order independence.**  Symbols are serialised as their
//!   *resolved strings*, never as interner ids.  A log written by one
//!   process replays identically in a process that interned strings in a
//!   different order (decode re-interns), exactly like the routing hash in
//!   [`crate::shard`].
//! * **Torn/corrupt-tail detection.**  Every durable record is framed as
//!   `len ‖ crc32 ‖ payload` (both `u32` little-endian).  A record cut
//!   short by a crash decodes as [`CodecError::Truncated`]; a record whose
//!   bytes were damaged decodes as [`CodecError::Corrupt`].  Recovery
//!   treats either as "the log ends here".
//!
//! All integers are little-endian.  Strings are `u32` byte length followed
//! by UTF-8 bytes.  Values are a tag byte (`0` Null, `1` Bool, `2` Int,
//! `3` Sym) followed by the tag-specific body.  Composite encodings prefix
//! element counts, so decoding never scans for terminators.

use crate::relation::Relation;
use crate::schema::RelationSchema;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::{Delta, Result};
use std::fmt;

/// Errors surfaced while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the encoding was complete — the signature of
    /// a torn (partially written) record.
    Truncated,
    /// A frame's payload does not match its CRC-32 — the signature of
    /// bit-level damage.
    Corrupt {
        /// The checksum stored in the frame header.
        expected: u32,
        /// The checksum of the payload as read.
        found: u32,
    },
    /// The bytes are structurally complete but semantically invalid (bad
    /// tag, non-UTF-8 string, ...).
    Invalid(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated encoding (torn record)"),
            CodecError::Corrupt { expected, found } => write!(
                f,
                "corrupt frame: stored crc32 {expected:#010x}, payload crc32 {found:#010x}"
            ),
            CodecError::Invalid(msg) => write!(f, "invalid encoding: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Result alias for decoding operations.
pub type CodecResult<T> = std::result::Result<T, CodecError>;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3 polynomial, table-driven)
// ---------------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes` — the per-frame checksum.  Detects every
/// single-bit flip and all burst errors up to 32 bits.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Primitive writers / Reader
// ---------------------------------------------------------------------------

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked cursor over an encoded byte slice.
///
/// Every read returns [`CodecError::Truncated`] when the slice ends early,
/// which is what lets recovery distinguish a torn tail from corruption.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps `bytes` with the cursor at the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// True once every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Fails unless the whole input was consumed — encodings are exact, so
    /// trailing garbage means the bytes are not what they claim to be.
    pub fn expect_end(&self) -> CodecResult<()> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(CodecError::Invalid(format!(
                "{} trailing bytes after a complete encoding",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize) -> CodecResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> CodecResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> CodecResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> CodecResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> CodecResult<i64> {
        Ok(self.u64()? as i64)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> CodecResult<&'a str> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes)
            .map_err(|e| CodecError::Invalid(format!("non-UTF-8 string: {e}")))
    }

    /// Reads an element count and sanity-checks it against the remaining
    /// bytes (every element costs at least one byte), so a damaged count
    /// cannot drive an absurd allocation.
    pub fn count(&mut self) -> CodecResult<usize> {
        self.count_of(1)
    }

    /// [`Reader::count`] with a tighter bound: every element of the list
    /// being counted costs at least `min_elem_bytes` encoded bytes, so any
    /// count claiming more than `remaining / min_elem_bytes` elements cannot
    /// be completed by the bytes that follow — it is a torn or damaged
    /// length field, rejected *before* anything is allocated for it.
    pub fn count_of(&mut self, min_elem_bytes: usize) -> CodecResult<usize> {
        let n = self.u32()? as usize;
        if n > self.remaining() / min_elem_bytes.max(1) {
            return Err(CodecError::Truncated);
        }
        Ok(n)
    }
}

/// A `Vec` pre-sized for `n` decoded elements, with the reservation capped
/// so that it never exceeds the bytes actually present in the input: a
/// hostile length field can at worst reserve `r.remaining()` bytes worth of
/// `T`s (the decode loop then fails on the missing bytes), never the
/// gigabytes the field claims.  Valid inputs whose elements encode smaller
/// than `size_of::<T>()` under-reserve and grow amortized — correctness is
/// unaffected.
fn prealloc<T>(n: usize, r: &Reader<'_>) -> Vec<T> {
    Vec::with_capacity(n.min(r.remaining() / std::mem::size_of::<T>().max(1)))
}

// ---------------------------------------------------------------------------
// Value / Tuple / Delta
// ---------------------------------------------------------------------------

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_SYM: u8 = 3;

/// Appends the encoding of one [`Value`].
pub fn encode_value(out: &mut Vec<u8>, value: Value) {
    match value {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(b) => {
            out.push(TAG_BOOL);
            out.push(u8::from(b));
        }
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Sym(s) => {
            out.push(TAG_SYM);
            put_str(out, s.as_str());
        }
    }
}

/// Decodes one [`Value`] (re-interning symbol strings).
pub fn decode_value(r: &mut Reader<'_>) -> CodecResult<Value> {
    match r.u8()? {
        TAG_NULL => Ok(Value::Null),
        TAG_BOOL => match r.u8()? {
            0 => Ok(Value::Bool(false)),
            1 => Ok(Value::Bool(true)),
            b => Err(CodecError::Invalid(format!("bad bool byte {b}"))),
        },
        TAG_INT => Ok(Value::Int(r.i64()?)),
        TAG_SYM => Ok(Value::str(r.str()?)),
        t => Err(CodecError::Invalid(format!("bad value tag {t}"))),
    }
}

/// Appends the encoding of a [`Tuple`] (arity-prefixed).
pub fn encode_tuple(out: &mut Vec<u8>, tuple: &Tuple) {
    put_u32(out, tuple.arity() as u32);
    for v in tuple.iter() {
        encode_value(out, *v);
    }
}

/// Decodes an arity-prefixed [`Tuple`].
pub fn decode_tuple(r: &mut Reader<'_>) -> CodecResult<Tuple> {
    // Every value costs at least its tag byte.
    let arity = r.count()?;
    let mut values = prealloc(arity, r);
    for _ in 0..arity {
        values.push(decode_value(r)?);
    }
    Ok(Tuple::new(values))
}

fn encode_tuple_list(out: &mut Vec<u8>, tuples: &[Tuple]) {
    put_u32(out, tuples.len() as u32);
    for t in tuples {
        encode_tuple(out, t);
    }
}

fn decode_tuple_list(r: &mut Reader<'_>) -> CodecResult<Vec<Tuple>> {
    // Every tuple costs at least its 4-byte arity prefix.
    let n = r.count_of(4)?;
    let mut tuples = prealloc(n, r);
    for _ in 0..n {
        tuples.push(decode_tuple(r)?);
    }
    Ok(tuples)
}

/// Appends the encoding of a [`Delta`]: relation count, then per relation
/// its name, insertion list and deletion list.  Relations iterate in name
/// order ([`Delta`] is a `BTreeMap`), so equal deltas encode identically.
pub fn encode_delta(out: &mut Vec<u8>, delta: &Delta) {
    put_u32(out, delta.iter().count() as u32);
    for (relation, rd) in delta.iter() {
        put_str(out, relation);
        encode_tuple_list(out, &rd.insertions);
        encode_tuple_list(out, &rd.deletions);
    }
}

/// Decodes a [`Delta`].
pub fn decode_delta(r: &mut Reader<'_>) -> CodecResult<Delta> {
    // Every relation entry costs at least a 4-byte name length plus two
    // 4-byte list counts.
    let relations = r.count_of(12)?;
    let mut delta = Delta::new();
    for _ in 0..relations {
        let name = r.str()?.to_owned();
        for t in decode_tuple_list(r)? {
            delta.insert(name.clone(), t);
        }
        for t in decode_tuple_list(r)? {
            delta.delete(name.clone(), t);
        }
    }
    Ok(delta)
}

// ---------------------------------------------------------------------------
// Relation pages
// ---------------------------------------------------------------------------

/// A self-describing serialised relation: schema, declared (lazy) secondary
/// indexes, and every stored tuple.  Checkpoints are lists of pages — no
/// separate schema record is needed to rebuild a [`crate::Database`].
///
/// Page tuples are encoded *without* per-tuple arity (the relation's arity
/// is fixed by its attribute list), which is what makes the page format the
/// compact one for bulk state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationPage {
    /// Relation name.
    pub name: String,
    /// Attribute names, in schema order.
    pub attributes: Vec<String>,
    /// Declared secondary indexes (attribute subsets).  Re-declared on
    /// decode; still built lazily on first probe.
    pub declared: Vec<Vec<String>>,
    /// The stored tuples, in insertion order.
    pub tuples: Vec<Tuple>,
}

impl RelationPage {
    /// Snapshots `relation` as a page.
    pub fn from_relation(relation: &Relation) -> Self {
        RelationPage {
            name: relation.name().to_owned(),
            attributes: relation.schema().attributes().to_vec(),
            declared: relation.declared_indexes(),
            tuples: relation.tuples().to_vec(),
        }
    }

    /// Rebuilds the [`Relation`]: schema from the attribute list, declared
    /// indexes re-declared (built lazily later), tuples inserted in page
    /// order.  Derived state (built indexes) is *not* serialised — it is
    /// rebuilt on demand, which keeps pages minimal.
    pub fn to_relation(&self) -> Result<Relation> {
        let attrs: Vec<&str> = self.attributes.iter().map(String::as_str).collect();
        let schema = RelationSchema::new(&self.name, &attrs);
        let mut rel = Relation::with_tuples(schema, self.tuples.clone())?;
        for attrs in &self.declared {
            rel.declare_index(attrs)?;
        }
        Ok(rel)
    }

    /// Appends the page encoding.
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_str(out, &self.name);
        put_u32(out, self.attributes.len() as u32);
        for a in &self.attributes {
            put_str(out, a);
        }
        put_u32(out, self.declared.len() as u32);
        for attrs in &self.declared {
            put_u32(out, attrs.len() as u32);
            for a in attrs {
                put_str(out, a);
            }
        }
        put_u32(out, self.tuples.len() as u32);
        for t in &self.tuples {
            for v in t.iter() {
                encode_value(out, *v);
            }
        }
    }

    /// Decodes one page.
    pub fn decode(r: &mut Reader<'_>) -> CodecResult<RelationPage> {
        let name = r.str()?.to_owned();
        // Attribute and index-attribute strings cost at least their 4-byte
        // length prefix; a declared-index entry at least its 4-byte count.
        let arity = r.count_of(4)?;
        let mut attributes = prealloc(arity, r);
        for _ in 0..arity {
            attributes.push(r.str()?.to_owned());
        }
        let declared_count = r.count_of(4)?;
        let mut declared = prealloc(declared_count, r);
        for _ in 0..declared_count {
            let k = r.count_of(4)?;
            let mut attrs = prealloc(k, r);
            for _ in 0..k {
                attrs.push(r.str()?.to_owned());
            }
            declared.push(attrs);
        }
        // Every row costs at least one tag byte per value.
        let rows = r.count_of(arity.max(1))?;
        let mut tuples = prealloc(rows, r);
        for _ in 0..rows {
            let mut values = Vec::with_capacity(arity.min(r.remaining()));
            for _ in 0..arity {
                values.push(decode_value(r)?);
            }
            tuples.push(Tuple::new(values));
        }
        Ok(RelationPage {
            name,
            attributes,
            declared,
            tuples,
        })
    }
}

// ---------------------------------------------------------------------------
// Frames: len ‖ crc32 ‖ payload
// ---------------------------------------------------------------------------

/// Byte overhead of a frame header (`len: u32` + `crc32: u32`).
pub const FRAME_HEADER: usize = 8;

/// Appends one frame: `len ‖ crc32(payload) ‖ payload`.
pub fn write_frame(out: &mut Vec<u8>, payload: &[u8]) {
    put_u32(out, payload.len() as u32);
    put_u32(out, crc32(payload));
    out.extend_from_slice(payload);
}

/// A `payload` wrapped in a fresh frame.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    write_frame(&mut out, payload);
    out
}

/// Reads the frame starting at `*pos`, advancing `*pos` past it.
///
/// Returns [`CodecError::Truncated`] when the remaining bytes cannot hold
/// the header or the declared payload (a torn tail — including the case
/// where the *length field itself* was damaged upward), and
/// [`CodecError::Corrupt`] when the payload fails its checksum.
pub fn read_frame<'a>(bytes: &'a [u8], pos: &mut usize) -> CodecResult<&'a [u8]> {
    let mut r = Reader::new(&bytes[*pos..]);
    let len = r.u32()? as usize;
    let expected = r.u32()?;
    if r.remaining() < len {
        return Err(CodecError::Truncated);
    }
    let start = *pos + FRAME_HEADER;
    let payload = &bytes[start..start + len];
    let found = crc32(payload);
    if found != expected {
        return Err(CodecError::Corrupt { expected, found });
    }
    *pos = start + len;
    Ok(payload)
}

/// FNV-1a 64-bit hash — the content-derived id for checkpoint payloads.
/// The id is part of the checkpoint's file name, so recovery can reject a
/// checkpoint whose content no longer matches the name it was written
/// under, independently of the frame CRC.
pub fn content_id(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Round-trip convenience for whole encodings
// ---------------------------------------------------------------------------

/// Encodes a delta as a standalone byte vector.
pub fn delta_bytes(delta: &Delta) -> Vec<u8> {
    let mut out = Vec::new();
    encode_delta(&mut out, delta);
    out
}

/// Decodes a standalone delta encoding, requiring full consumption.
pub fn delta_from_bytes(bytes: &[u8]) -> CodecResult<Delta> {
    let mut r = Reader::new(bytes);
    let delta = decode_delta(&mut r)?;
    r.expect_end()?;
    Ok(delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::social_schema;
    use crate::{tuple, Database};

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn values_round_trip_including_non_ascii_symbols() {
        let values = [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(0),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::str(""),
            Value::str("plain"),
            Value::str("naïve — 東京 🚀"),
        ];
        for v in values {
            let mut out = Vec::new();
            encode_value(&mut out, v);
            let mut r = Reader::new(&out);
            assert_eq!(decode_value(&mut r).unwrap(), v);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn tuples_and_deltas_round_trip() {
        let t = tuple![1, "ann", "NYC"];
        let mut out = Vec::new();
        encode_tuple(&mut out, &t);
        assert_eq!(decode_tuple(&mut Reader::new(&out)).unwrap(), t);

        let mut delta = Delta::new();
        delta.insert("person", tuple![7, "gil", "Łódź"]);
        delta.delete("friend", tuple![1, 2]);
        delta.insert("friend", tuple![2, 3]);
        let bytes = delta_bytes(&delta);
        assert_eq!(delta_from_bytes(&bytes).unwrap(), delta);
        // Trailing garbage is rejected.
        let mut noisy = bytes.clone();
        noisy.push(0xAB);
        assert!(matches!(
            delta_from_bytes(&noisy),
            Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn relation_pages_rebuild_relations_with_declared_indexes() {
        let mut db = Database::empty(social_schema());
        db.insert_all(
            "person",
            vec![tuple![1, "ann", "NYC"], tuple![2, "bob", "LA"]],
        )
        .unwrap();
        db.declare_index("person", &["city".into()]).unwrap();
        let page = RelationPage::from_relation(db.relation("person").unwrap());

        let mut out = Vec::new();
        page.encode(&mut out);
        let decoded = RelationPage::decode(&mut Reader::new(&out)).unwrap();
        assert_eq!(decoded, page);

        let rel = decoded.to_relation().unwrap();
        assert_eq!(rel.len(), 2);
        assert!(rel.has_index(&["city".into()]));
        assert!(!rel.has_built_index(&["city".into()]));
        assert!(rel.contains(&tuple![2, "bob", "LA"]));
    }

    #[test]
    fn frames_detect_torn_and_corrupt_tails() {
        let payload = b"the quick brown fox".to_vec();
        let framed = frame(&payload);
        let mut pos = 0;
        assert_eq!(read_frame(&framed, &mut pos).unwrap(), &payload[..]);
        assert_eq!(pos, framed.len());

        // Torn anywhere short of the full frame.
        for cut in 0..framed.len() {
            let mut pos = 0;
            assert_eq!(
                read_frame(&framed[..cut], &mut pos),
                Err(CodecError::Truncated),
                "cut at {cut}"
            );
        }
        // Any single bit flip in the payload is caught by the CRC.
        for byte in FRAME_HEADER..framed.len() {
            let mut damaged = framed.clone();
            damaged[byte] ^= 0x10;
            let mut pos = 0;
            assert!(matches!(
                read_frame(&damaged, &mut pos),
                Err(CodecError::Corrupt { .. })
            ));
        }
    }

    #[test]
    fn bad_tags_and_bogus_counts_are_rejected_not_trusted() {
        assert!(matches!(
            decode_value(&mut Reader::new(&[9])),
            Err(CodecError::Invalid(_))
        ));
        assert!(matches!(
            decode_value(&mut Reader::new(&[TAG_BOOL, 7])),
            Err(CodecError::Invalid(_))
        ));
        // A count field claiming more elements than bytes remain.
        let mut out = Vec::new();
        put_u32(&mut out, u32::MAX);
        assert!(matches!(
            decode_tuple(&mut Reader::new(&out)),
            Err(CodecError::Truncated)
        ));
        // Non-UTF-8 symbol bytes.
        let mut out = vec![TAG_SYM];
        put_u32(&mut out, 2);
        out.extend_from_slice(&[0xFF, 0xFE]);
        assert!(matches!(
            decode_value(&mut Reader::new(&out)),
            Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn content_id_is_stable_and_content_sensitive() {
        let a = content_id(b"checkpoint-a");
        assert_eq!(a, content_id(b"checkpoint-a"));
        assert_ne!(a, content_id(b"checkpoint-b"));
    }

    /// SplitMix64 — deterministic driver for the fuzz-style tests below.
    struct Mix(u64);
    impl Mix {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    fn fixture_delta() -> Delta {
        let mut delta = Delta::new();
        for i in 0..40i64 {
            delta.insert("person", tuple![i, format!("p{i}"), "NYC"]);
            delta.delete("friend", tuple![i, i + 1]);
            delta.insert("visit", tuple![i, 100 + i]);
        }
        delta
    }

    fn fixture_page() -> RelationPage {
        let mut db = Database::empty(social_schema());
        for i in 0..40i64 {
            let city = if i % 2 == 0 { "NYC" } else { "LA" };
            db.insert("person", tuple![i, format!("p{i}"), city])
                .unwrap();
        }
        db.declare_index("person", &["city".into()]).unwrap();
        RelationPage::from_relation(db.relation("person").unwrap())
    }

    fn decode_page_exact(bytes: &[u8]) -> CodecResult<RelationPage> {
        let mut r = Reader::new(bytes);
        let page = RelationPage::decode(&mut r)?;
        r.expect_end()?;
        Ok(page)
    }

    #[test]
    fn hostile_counts_are_rejected_before_allocation() {
        // A count field claiming 2^30 elements over a dozen remaining bytes
        // must fail the per-element byte bound, not reach `with_capacity`.
        let mut bytes = Vec::new();
        put_u32(&mut bytes, 0x4000_0000);
        bytes.extend_from_slice(&[0u8; 12]);
        let mut r = Reader::new(&bytes);
        assert_eq!(r.count_of(4), Err(CodecError::Truncated));
        let mut r = Reader::new(&bytes);
        assert_eq!(r.count(), Err(CodecError::Truncated));

        // Even a count that passes the 1-byte-per-element bound cannot
        // reserve more memory than the input holds: the reservation is
        // capped by remaining bytes over the element's in-memory size.
        let mut bytes = Vec::new();
        put_u32(&mut bytes, 64);
        bytes.extend_from_slice(&[0u8; 64]);
        let mut r = Reader::new(&bytes);
        let n = r.count().unwrap();
        assert_eq!(n, 64);
        let v: Vec<Tuple> = prealloc(n, &r);
        assert!(
            v.capacity() * std::mem::size_of::<Tuple>() <= 2 * r.remaining(),
            "prealloc reserved {} elements over {} input bytes",
            v.capacity(),
            r.remaining()
        );
    }

    #[test]
    fn truncated_encodings_error_cleanly_at_every_cut() {
        let delta = fixture_delta();
        let bytes = delta_bytes(&delta);
        for cut in 0..bytes.len() {
            assert!(
                delta_from_bytes(&bytes[..cut]).is_err(),
                "delta cut at {cut} decoded"
            );
        }
        let page = fixture_page();
        let mut bytes = Vec::new();
        page.encode(&mut bytes);
        for cut in 0..bytes.len() {
            assert!(
                decode_page_exact(&bytes[..cut]).is_err(),
                "page cut at {cut} decoded"
            );
        }
    }

    #[test]
    fn length_field_bit_flips_never_abort_or_over_allocate() {
        // Stomp a huge value over every 4-byte window — every length and
        // count field is hit somewhere in the sweep.  Decoding must return
        // an error (the field now claims more than the bytes can hold),
        // never abort on an absurd allocation.
        let delta = fixture_delta();
        let bytes = delta_bytes(&delta);
        for offset in 0..bytes.len().saturating_sub(4) {
            let mut damaged = bytes.clone();
            damaged[offset..offset + 4].copy_from_slice(&0x7FFF_FFF0u32.to_le_bytes());
            let _ = delta_from_bytes(&damaged);
        }
        // The very first count field (relation count) must reject outright.
        let mut damaged = bytes.clone();
        damaged[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(delta_from_bytes(&damaged).is_err());

        // Random single-bit flips across delta and page encodings:
        // structurally damaged inputs decode to an error or to a different
        // (still well-formed) value — they never panic the decoder.
        let page = fixture_page();
        let mut page_bytes = Vec::new();
        page.encode(&mut page_bytes);
        let mut rng = Mix(0x5EED);
        for _ in 0..400 {
            let mut d = bytes.clone();
            let bit = (rng.next() as usize) % (d.len() * 8);
            d[bit / 8] ^= 1 << (bit % 8);
            let _ = delta_from_bytes(&d);

            let mut p = page_bytes.clone();
            let bit = (rng.next() as usize) % (p.len() * 8);
            p[bit / 8] ^= 1 << (bit % 8);
            let _ = decode_page_exact(&p);
        }
    }

    #[test]
    fn framed_records_reject_every_truncation_and_length_stomp() {
        let delta = fixture_delta();
        let framed = frame(&delta_bytes(&delta));
        let mut rng = Mix(0xF00D);
        for _ in 0..200 {
            // Random truncation: torn tail.
            let cut = (rng.next() as usize) % framed.len();
            let mut pos = 0;
            assert_eq!(
                read_frame(&framed[..cut], &mut pos),
                Err(CodecError::Truncated)
            );
            // Random bit flip in the length field: torn (length grew past
            // the buffer) or corrupt (length shrank, CRC over the wrong
            // span) — never an allocation of the claimed length.
            let mut damaged = framed.clone();
            let bit = (rng.next() as usize) % 32;
            damaged[bit / 8] ^= 1 << (bit % 8);
            let mut pos = 0;
            assert!(read_frame(&damaged, &mut pos).is_err());
        }
    }
}
