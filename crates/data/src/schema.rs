//! Relation and database schemas.
//!
//! A relational schema `R = (R1, …, Rn)` associates a fixed attribute list
//! with each relation name (paper, Section 2).  Attributes are referred to by
//! name in the public API and resolved to positional indexes internally.

use crate::error::DataError;
use crate::Result;
use std::collections::BTreeMap;
use std::fmt;

/// The signature of a single relation: a name plus an ordered attribute list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationSchema {
    name: String,
    attributes: Vec<String>,
}

impl RelationSchema {
    /// Creates a relation schema.  Attribute names must be distinct.
    pub fn new(name: impl Into<String>, attributes: &[&str]) -> Self {
        let name = name.into();
        let attributes: Vec<String> = attributes.iter().map(|a| (*a).to_owned()).collect();
        debug_assert!(
            {
                let mut sorted = attributes.clone();
                sorted.sort();
                sorted.dedup();
                sorted.len() == attributes.len()
            },
            "attribute names of `{name}` must be distinct"
        );
        RelationSchema { name, attributes }
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The ordered attribute names.
    pub fn attributes(&self) -> &[String] {
        &self.attributes
    }

    /// Number of attributes (arity).
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Resolves an attribute name to its position.
    pub fn position_of(&self, attribute: &str) -> Result<usize> {
        self.attributes
            .iter()
            .position(|a| a == attribute)
            .ok_or_else(|| DataError::UnknownAttribute {
                relation: self.name.clone(),
                attribute: attribute.to_owned(),
            })
    }

    /// Resolves a list of attribute names to positions, preserving order.
    pub fn positions_of(&self, attributes: &[String]) -> Result<Vec<usize>> {
        attributes.iter().map(|a| self.position_of(a)).collect()
    }

    /// True iff `attribute` is one of this relation's attributes.
    pub fn has_attribute(&self, attribute: &str) -> bool {
        self.attributes.iter().any(|a| a == attribute)
    }
}

impl fmt::Display for RelationSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.name, self.attributes.join(", "))
    }
}

/// A database schema: a collection of relation schemas keyed by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DatabaseSchema {
    relations: BTreeMap<String, RelationSchema>,
}

impl DatabaseSchema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        DatabaseSchema::default()
    }

    /// Creates a schema from a list of relation schemas.
    ///
    /// Fails if two relations share a name.
    pub fn from_relations(relations: Vec<RelationSchema>) -> Result<Self> {
        let mut schema = DatabaseSchema::new();
        for r in relations {
            schema.add_relation(r)?;
        }
        Ok(schema)
    }

    /// Adds a relation schema, failing on duplicates.
    pub fn add_relation(&mut self, relation: RelationSchema) -> Result<()> {
        if self.relations.contains_key(relation.name()) {
            return Err(DataError::DuplicateRelation(relation.name().to_owned()));
        }
        self.relations.insert(relation.name().to_owned(), relation);
        Ok(())
    }

    /// Looks up a relation schema by name.
    pub fn relation(&self, name: &str) -> Result<&RelationSchema> {
        self.relations
            .get(name)
            .ok_or_else(|| DataError::UnknownRelation(name.to_owned()))
    }

    /// True iff the schema declares `name`.
    pub fn has_relation(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Iterates over all relation schemas in name order.
    pub fn relations(&self) -> impl Iterator<Item = &RelationSchema> {
        self.relations.values()
    }

    /// Relation names in lexicographic order.
    pub fn relation_names(&self) -> Vec<String> {
        self.relations.keys().cloned().collect()
    }

    /// Number of relations declared by the schema.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True iff the schema declares no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

impl fmt::Display for DatabaseSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.relations.values().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

/// Builds the four-relation social-network schema used throughout the paper's
/// examples: `person(id, name, city)`, `friend(id1, id2)`,
/// `restr(rid, name, city, rating)` and `visit(id, rid)`.
pub fn social_schema() -> DatabaseSchema {
    DatabaseSchema::from_relations(vec![
        RelationSchema::new("person", &["id", "name", "city"]),
        RelationSchema::new("friend", &["id1", "id2"]),
        RelationSchema::new("restr", &["rid", "name", "city", "rating"]),
        RelationSchema::new("visit", &["id", "rid"]),
    ])
    .expect("social schema relation names are distinct")
}

/// Builds the extended social schema of Example 4.1 where `visit` carries a
/// date: `visit(id, rid, yy, mm, dd)`.
pub fn social_schema_dated() -> DatabaseSchema {
    DatabaseSchema::from_relations(vec![
        RelationSchema::new("person", &["id", "name", "city"]),
        RelationSchema::new("friend", &["id1", "id2"]),
        RelationSchema::new("restr", &["rid", "name", "city", "rating"]),
        RelationSchema::new("visit", &["id", "rid", "yy", "mm", "dd"]),
    ])
    .expect("social schema relation names are distinct")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relation_schema_resolves_attributes() {
        let r = RelationSchema::new("person", &["id", "name", "city"]);
        assert_eq!(r.name(), "person");
        assert_eq!(r.arity(), 3);
        assert_eq!(r.position_of("name").unwrap(), 1);
        assert!(r.has_attribute("city"));
        assert!(!r.has_attribute("zip"));
        assert!(matches!(
            r.position_of("zip"),
            Err(DataError::UnknownAttribute { .. })
        ));
        assert_eq!(
            r.positions_of(&["city".into(), "id".into()]).unwrap(),
            vec![2, 0]
        );
    }

    #[test]
    fn database_schema_rejects_duplicates() {
        let mut s = DatabaseSchema::new();
        s.add_relation(RelationSchema::new("r", &["a"])).unwrap();
        let err = s
            .add_relation(RelationSchema::new("r", &["b"]))
            .unwrap_err();
        assert_eq!(err, DataError::DuplicateRelation("r".into()));
    }

    #[test]
    fn database_schema_lookup_and_iteration() {
        let s = social_schema();
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert!(s.has_relation("friend"));
        assert!(!s.has_relation("enemy"));
        assert_eq!(s.relation("restr").unwrap().arity(), 4);
        assert!(matches!(
            s.relation("enemy"),
            Err(DataError::UnknownRelation(_))
        ));
        assert_eq!(
            s.relation_names(),
            vec!["friend", "person", "restr", "visit"]
        );
        assert_eq!(s.relations().count(), 4);
    }

    #[test]
    fn dated_schema_extends_visit() {
        let s = social_schema_dated();
        assert_eq!(s.relation("visit").unwrap().arity(), 5);
        assert!(s.relation("visit").unwrap().has_attribute("yy"));
    }

    #[test]
    fn display_renders_signatures() {
        let r = RelationSchema::new("friend", &["id1", "id2"]);
        assert_eq!(r.to_string(), "friend(id1, id2)");
        let s = social_schema();
        let text = s.to_string();
        assert!(text.contains("person(id, name, city)"));
        assert!(text.contains("friend(id1, id2)"));
    }
}
