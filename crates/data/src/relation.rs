//! Set-semantics relations with attached secondary indexes.

use crate::error::DataError;
use crate::index::IndexPool;
use crate::ordset::TupleSet;
use crate::schema::RelationSchema;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Result;
use std::collections::{BTreeMap, HashSet};
use std::fmt;

/// A finite relation: a set of tuples of a fixed arity, plus an [`IndexPool`]
/// of secondary hash indexes on attribute subsets.
///
/// Tuples are stored in insertion order (deduplicated) so that iteration is
/// deterministic; the paper's set semantics is preserved because duplicate
/// insertions are ignored.  Indexes are declared cheaply (see
/// [`Relation::declare_index`]), built lazily on first probe, and maintained
/// incrementally through [`Relation::insert`] / [`Relation::remove`] — which
/// is also the path [`crate::Delta`] updates take.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: RelationSchema,
    /// Single-copy storage: an insertion-ordered set.  Iteration order and
    /// O(1) membership come from the same structure, instead of the seed's
    /// duplicated `Vec<Tuple>` + `HashSet<Tuple>` pair.
    tuples: TupleSet,
    /// Declared and built indexes, keyed by their (sorted) key positions.
    indexes: IndexPool,
}

impl Relation {
    /// Creates an empty relation with the given schema.
    pub fn new(schema: RelationSchema) -> Self {
        Relation {
            schema,
            tuples: TupleSet::new(),
            indexes: IndexPool::new(),
        }
    }

    /// Creates a relation and bulk-inserts `tuples`.
    pub fn with_tuples(schema: RelationSchema, tuples: Vec<Tuple>) -> Result<Self> {
        let mut r = Relation::new(schema);
        for t in tuples {
            r.insert(t)?;
        }
        Ok(r)
    }

    /// The relation's schema.
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        self.schema.name()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True iff the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterates over the tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// The tuples as a slice (insertion order).
    pub fn tuples(&self) -> &[Tuple] {
        self.tuples.as_slice()
    }

    /// Membership test.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.tuples.contains(tuple)
    }

    /// Inserts a tuple, ignoring exact duplicates (set semantics).
    ///
    /// Returns `true` when the tuple was new.  Every *built* index is
    /// maintained incrementally; declared-but-unbuilt indexes cost nothing.
    pub fn insert(&mut self, tuple: Tuple) -> Result<bool> {
        if tuple.arity() != self.schema.arity() {
            return Err(DataError::ArityMismatch {
                relation: self.schema.name().to_owned(),
                expected: self.schema.arity(),
                actual: tuple.arity(),
            });
        }
        let position = self.tuples.len();
        if !self.tuples.insert(tuple) {
            return Ok(false);
        }
        let stored = &self.tuples.as_slice()[position];
        self.indexes.tuple_inserted(position, stored);
        Ok(true)
    }

    /// Removes a tuple if present; returns `true` when something was removed.
    ///
    /// Built indexes are maintained incrementally (entries after the removed
    /// position shift down by one, mirroring the ordered storage) instead of
    /// being rebuilt from scratch.
    pub fn remove(&mut self, tuple: &Tuple) -> bool {
        let Some(position) = self.tuples.remove_returning_position(tuple) else {
            return false;
        };
        self.indexes.tuple_removed(position, tuple);
        true
    }

    /// Declares an index on the given attribute names without building it.
    ///
    /// The physical index is materialised by the first probe that needs it
    /// (see [`Relation::select_eq`]); until then the declaration costs O(1).
    pub fn declare_index(&mut self, attributes: &[String]) -> Result<()> {
        let positions = self.schema.positions_of(attributes)?;
        self.indexes.declare(positions);
        Ok(())
    }

    /// Ensures a hash index exists on the given attribute names, building it
    /// immediately.  Prefer [`Relation::declare_index`] unless the probe
    /// pattern is known to be hot from the start.
    pub fn ensure_index(&mut self, attributes: &[String]) -> Result<()> {
        let positions = self.schema.positions_of(attributes)?;
        self.indexes.build_now(positions, self.tuples.as_slice());
        Ok(())
    }

    /// True iff an index on exactly these attributes is declared or built.
    pub fn has_index(&self, attributes: &[String]) -> bool {
        match self.schema.positions_of(attributes) {
            Ok(positions) => self.indexes.is_declared(&positions),
            Err(_) => false,
        }
    }

    /// True iff the index on exactly these attributes has been materialised.
    pub fn has_built_index(&self, attributes: &[String]) -> bool {
        match self.schema.positions_of(attributes) {
            Ok(positions) => self.indexes.is_built(&positions),
            Err(_) => false,
        }
    }

    /// The relation's index pool (read only).
    pub fn indexes(&self) -> &IndexPool {
        &self.indexes
    }

    /// The attribute lists of every declared-or-built index, resolved back
    /// to names (normalised position order).  A hash-partition split uses
    /// this to re-declare the same indexes on every shard.
    pub fn declared_indexes(&self) -> Vec<Vec<String>> {
        self.indexes
            .declared_positions()
            .into_iter()
            .map(|positions| {
                positions
                    .into_iter()
                    .map(|p| self.schema.attributes()[p].clone())
                    .collect()
            })
            .collect()
    }

    /// Selects the tuples whose attributes `attributes` equal `key`
    /// (σ_{X=a̅}(R)), and reports whether an index served the probe.
    ///
    /// Resolution order:
    /// 1. an index on exactly the probed positions (built lazily on this
    ///    first probe if it was only declared);
    /// 2. the widest declared-or-built index on a *subset* of the probed
    ///    positions, with the residual equalities applied as a post-filter —
    ///    the probe stays index-backed even when the caller binds more
    ///    attributes than any single index covers;
    /// 3. a full scan, only when no index can serve any part of the probe.
    pub fn select_eq(&self, attributes: &[String], key: &[Value]) -> Result<(Vec<Tuple>, bool)> {
        let positions = self
            .schema
            .positions_of(&attributes.iter().map(|a| a.to_owned()).collect::<Vec<_>>())?;
        // An index stores its key positions sorted and deduplicated, so align
        // the probe key with that normalisation.
        let mut pairs: Vec<(usize, Value)> =
            positions.iter().cloned().zip(key.iter().cloned()).collect();
        pairs.sort_by_key(|(p, _)| *p);
        pairs.dedup_by(|a, b| a.0 == b.0);
        let sorted_positions: Vec<usize> = pairs.iter().map(|(p, _)| *p).collect();
        let sorted_key: Vec<Value> = pairs.iter().map(|(_, v)| *v).collect();

        if let Some(hits) =
            self.indexes
                .lookup(&sorted_positions, &sorted_key, self.tuples.as_slice())
        {
            let matches = hits
                .into_iter()
                .map(|pos| self.tuples.as_slice()[pos].clone())
                // A probe key that repeats a position with conflicting values
                // can over-approximate after dedup; re-check the original
                // predicate to stay exact.
                .filter(|t| t.matches_on(&positions, key))
                .collect();
            return Ok((matches, true));
        }

        // No exact index: probe the widest subset index and post-filter.
        if let Some(sub) = self.indexes.best_subset(&sorted_positions) {
            let sub_key: Vec<Value> = sub
                .iter()
                .map(|p| {
                    pairs
                        .iter()
                        .find(|(q, _)| q == p)
                        .map(|(_, v)| *v)
                        .expect("subset positions come from the probe")
                })
                .collect();
            let hits = self
                .indexes
                .lookup(&sub, &sub_key, self.tuples.as_slice())
                .expect("best_subset returned a declared index");
            let matches = hits
                .into_iter()
                .map(|pos| self.tuples.as_slice()[pos].clone())
                .filter(|t| t.matches_on(&positions, key))
                .collect();
            return Ok((matches, true));
        }

        let matches = self
            .tuples
            .iter()
            .filter(|t| t.matches_on(&positions, key))
            .cloned()
            .collect();
        Ok((matches, false))
    }

    /// The maximum number of tuples sharing any single value combination on
    /// `attributes` — the tight cardinality bound `N` for an access
    /// constraint on those attributes.
    pub fn fanout_on(&self, attributes: &[String]) -> Result<usize> {
        let positions = self.schema.positions_of(attributes)?;
        let mut counts: BTreeMap<Vec<Value>, usize> = BTreeMap::new();
        for t in &self.tuples {
            let key: Vec<Value> = positions.iter().map(|&p| t[p]).collect();
            *counts.entry(key).or_insert(0) += 1;
        }
        Ok(counts.values().copied().max().unwrap_or(0))
    }

    /// Number of distinct values in each column, in schema order — the raw
    /// material of the planner's per-relation statistics.
    pub fn column_distincts(&self) -> Vec<usize> {
        let arity = self.schema.arity();
        let mut seen: Vec<HashSet<Value>> = (0..arity).map(|_| HashSet::new()).collect();
        for t in &self.tuples {
            for (pos, set) in seen.iter_mut().enumerate() {
                set.insert(t[pos]);
            }
        }
        seen.into_iter().map(|s| s.len()).collect()
    }

    /// Collects every value appearing in any tuple (contribution to the
    /// active domain).
    pub fn collect_adom(&self, into: &mut HashSet<Value>) {
        for t in &self.tuples {
            for v in t.iter() {
                into.insert(*v);
            }
        }
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} [{} tuples]", self.schema, self.len())?;
        for t in self.tuples.iter().take(20) {
            writeln!(f, "  {t}")?;
        }
        if self.len() > 20 {
            writeln!(f, "  … ({} more)", self.len() - 20)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn person() -> Relation {
        let schema = RelationSchema::new("person", &["id", "name", "city"]);
        Relation::with_tuples(
            schema,
            vec![
                tuple![1, "ann", "NYC"],
                tuple![2, "bob", "LA"],
                tuple![3, "cat", "NYC"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn insert_respects_set_semantics_and_arity() {
        let mut r = person();
        assert_eq!(r.len(), 3);
        assert!(!r.insert(tuple![1, "ann", "NYC"]).unwrap());
        assert_eq!(r.len(), 3);
        assert!(r.insert(tuple![4, "dan", "SF"]).unwrap());
        assert_eq!(r.len(), 4);
        let err = r.insert(tuple![5, "eve"]).unwrap_err();
        assert!(matches!(
            err,
            DataError::ArityMismatch {
                expected: 3,
                actual: 2,
                ..
            }
        ));
    }

    #[test]
    fn contains_and_remove() {
        let mut r = person();
        assert!(r.contains(&tuple![2, "bob", "LA"]));
        assert!(r.remove(&tuple![2, "bob", "LA"]));
        assert!(!r.contains(&tuple![2, "bob", "LA"]));
        assert!(!r.remove(&tuple![2, "bob", "LA"]));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn select_eq_without_index_scans() {
        let r = person();
        let (rows, used_index) = r.select_eq(&["city".into()], &[Value::str("NYC")]).unwrap();
        assert!(!used_index);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn select_eq_with_index_probes() {
        let mut r = person();
        r.ensure_index(&["city".into()]).unwrap();
        let (rows, used_index) = r.select_eq(&["city".into()], &[Value::str("NYC")]).unwrap();
        assert!(used_index);
        assert_eq!(rows.len(), 2);
        let (rows, _) = r
            .select_eq(&["city".into()], &[Value::str("Tokyo")])
            .unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn declared_index_builds_on_first_probe() {
        let mut r = person();
        r.declare_index(&["city".into()]).unwrap();
        assert!(r.has_index(&["city".into()]));
        assert!(!r.has_built_index(&["city".into()]));
        let (rows, used_index) = r.select_eq(&["city".into()], &[Value::str("NYC")]).unwrap();
        assert!(used_index);
        assert_eq!(rows.len(), 2);
        assert!(r.has_built_index(&["city".into()]));
    }

    #[test]
    fn subset_index_serves_wider_probes() {
        let mut r = person();
        r.declare_index(&["city".into()]).unwrap();
        // No index on {id, city}, but the city index covers part of the probe.
        let (rows, used_index) = r
            .select_eq(
                &["id".into(), "city".into()],
                &[Value::int(3), Value::str("NYC")],
            )
            .unwrap();
        assert!(used_index);
        assert_eq!(rows, vec![tuple![3, "cat", "NYC"]]);
    }

    #[test]
    fn index_is_maintained_under_insert_and_remove() {
        let mut r = person();
        r.ensure_index(&["city".into()]).unwrap();
        r.insert(tuple![4, "dan", "NYC"]).unwrap();
        let (rows, used) = r.select_eq(&["city".into()], &[Value::str("NYC")]).unwrap();
        assert!(used);
        assert_eq!(rows.len(), 3);
        r.remove(&tuple![1, "ann", "NYC"]);
        let (rows, used) = r.select_eq(&["city".into()], &[Value::str("NYC")]).unwrap();
        assert!(used);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn multi_attribute_select_normalises_positions() {
        let mut r = person();
        r.ensure_index(&["city".into(), "id".into()]).unwrap();
        // Probe with attributes listed in a different order than the index key.
        let (rows, used) = r
            .select_eq(
                &["id".into(), "city".into()],
                &[Value::int(3), Value::str("NYC")],
            )
            .unwrap();
        assert!(used);
        assert_eq!(rows, vec![tuple![3, "cat", "NYC"]]);
    }

    #[test]
    fn fanout_reports_tight_bound() {
        let r = person();
        assert_eq!(r.fanout_on(&["city".into()]).unwrap(), 2);
        assert_eq!(r.fanout_on(&["id".into()]).unwrap(), 1);
        let empty = Relation::new(RelationSchema::new("e", &["a"]));
        assert_eq!(empty.fanout_on(&["a".into()]).unwrap(), 0);
    }

    #[test]
    fn column_distincts_count_per_column() {
        let r = person();
        assert_eq!(r.column_distincts(), vec![3, 3, 2]);
        let empty = Relation::new(RelationSchema::new("e", &["a"]));
        assert_eq!(empty.column_distincts(), vec![0]);
    }

    #[test]
    fn collect_adom_gathers_all_values() {
        let r = person();
        let mut adom = HashSet::new();
        r.collect_adom(&mut adom);
        assert!(adom.contains(&Value::int(1)));
        assert!(adom.contains(&Value::str("NYC")));
        assert_eq!(adom.len(), 8); // 3 ids + 3 names + 2 distinct cities
    }

    #[test]
    fn has_index_reports_declared_and_built() {
        let mut r = person();
        assert!(!r.has_index(&["id".into()]));
        r.ensure_index(&["id".into()]).unwrap();
        assert!(r.has_index(&["id".into()]));
        assert!(r.has_built_index(&["id".into()]));
        assert!(!r.has_index(&["nope".into()]));
        assert!(!r.indexes().is_empty());
    }

    #[test]
    fn unknown_attribute_errors_propagate() {
        let mut r = person();
        assert!(r.select_eq(&["zip".into()], &[Value::int(0)]).is_err());
        assert!(r.fanout_on(&["zip".into()]).is_err());
        assert!(r.declare_index(&["zip".into()]).is_err());
    }

    #[test]
    fn display_mentions_name_and_count() {
        let r = person();
        let s = r.to_string();
        assert!(s.contains("person"));
        assert!(s.contains("3 tuples"));
    }
}
