//! Set-semantics relations with attached hash indexes.

use crate::error::DataError;
use crate::index::HashIndex;
use crate::ordset::TupleSet;
use crate::schema::RelationSchema;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Result;
use std::collections::{BTreeMap, HashSet};
use std::fmt;

/// A finite relation: a set of tuples of a fixed arity, plus any number of
/// hash indexes on attribute subsets.
///
/// Tuples are stored in insertion order (deduplicated) so that iteration is
/// deterministic; the paper's set semantics is preserved because duplicate
/// insertions are ignored.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: RelationSchema,
    /// Single-copy storage: an insertion-ordered set.  Iteration order and
    /// O(1) membership come from the same structure, instead of the seed's
    /// duplicated `Vec<Tuple>` + `HashSet<Tuple>` pair.
    tuples: TupleSet,
    /// Indexes keyed by their (sorted) key positions.
    indexes: BTreeMap<Vec<usize>, HashIndex>,
}

impl Relation {
    /// Creates an empty relation with the given schema.
    pub fn new(schema: RelationSchema) -> Self {
        Relation {
            schema,
            tuples: TupleSet::new(),
            indexes: BTreeMap::new(),
        }
    }

    /// Creates a relation and bulk-inserts `tuples`.
    pub fn with_tuples(schema: RelationSchema, tuples: Vec<Tuple>) -> Result<Self> {
        let mut r = Relation::new(schema);
        for t in tuples {
            r.insert(t)?;
        }
        Ok(r)
    }

    /// The relation's schema.
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        self.schema.name()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True iff the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterates over the tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// The tuples as a slice (insertion order).
    pub fn tuples(&self) -> &[Tuple] {
        self.tuples.as_slice()
    }

    /// Membership test.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.tuples.contains(tuple)
    }

    /// Inserts a tuple, ignoring exact duplicates (set semantics).
    ///
    /// Returns `true` when the tuple was new.
    pub fn insert(&mut self, tuple: Tuple) -> Result<bool> {
        if tuple.arity() != self.schema.arity() {
            return Err(DataError::ArityMismatch {
                relation: self.schema.name().to_owned(),
                expected: self.schema.arity(),
                actual: tuple.arity(),
            });
        }
        let position = self.tuples.len();
        if !self.tuples.insert(tuple) {
            return Ok(false);
        }
        let stored = &self.tuples.as_slice()[position];
        for index in self.indexes.values_mut() {
            index.insert(position, stored);
        }
        Ok(true)
    }

    /// Removes a tuple if present; returns `true` when something was removed.
    ///
    /// Removal rebuilds the affected index buckets lazily by re-indexing the
    /// relation, which keeps the code simple; deletions are rare in the
    /// workloads of the paper (updates are mostly insertions).
    pub fn remove(&mut self, tuple: &Tuple) -> bool {
        if !self.tuples.remove(tuple) {
            return false;
        }
        self.rebuild_indexes();
        true
    }

    /// Ensures a hash index exists on the given attribute names.
    pub fn ensure_index(&mut self, attributes: &[String]) -> Result<()> {
        let mut positions = self.schema.positions_of(attributes)?;
        positions.sort_unstable();
        positions.dedup();
        if !self.indexes.contains_key(&positions) {
            let index = HashIndex::build(positions.clone(), self.tuples.as_slice());
            self.indexes.insert(positions, index);
        }
        Ok(())
    }

    /// Returns the index on the given attribute names, if one was built.
    pub fn index_on(&self, attributes: &[String]) -> Option<&HashIndex> {
        let mut positions: Vec<usize> = attributes
            .iter()
            .map(|a| self.schema.position_of(a).ok())
            .collect::<Option<Vec<_>>>()?;
        positions.sort_unstable();
        positions.dedup();
        self.indexes.get(&positions)
    }

    /// Selects the tuples whose attributes `attributes` equal `key`
    /// (σ_{X=a̅}(R)), using an index when one is available and a scan
    /// otherwise.  Returns the matching tuples and whether an index was used.
    pub fn select_eq(&self, attributes: &[String], key: &[Value]) -> Result<(Vec<Tuple>, bool)> {
        let positions = self
            .schema
            .positions_of(&attributes.iter().map(|a| a.to_owned()).collect::<Vec<_>>())?;
        // An index stores its key positions sorted and deduplicated, so align
        // the probe key with that normalisation.
        let mut pairs: Vec<(usize, Value)> =
            positions.iter().cloned().zip(key.iter().cloned()).collect();
        pairs.sort_by_key(|(p, _)| *p);
        pairs.dedup_by(|a, b| a.0 == b.0);
        let sorted_positions: Vec<usize> = pairs.iter().map(|(p, _)| *p).collect();
        let sorted_key: Vec<Value> = pairs.iter().map(|(_, v)| *v).collect();

        if let Some(index) = self.indexes.get(&sorted_positions) {
            let matches = index
                .lookup(&sorted_key)
                .iter()
                .map(|&pos| self.tuples.as_slice()[pos].clone())
                // A probe key that repeats a position with conflicting values
                // can over-approximate after dedup; re-check the original
                // predicate to stay exact.
                .filter(|t| t.matches_on(&positions, key))
                .collect();
            Ok((matches, true))
        } else {
            let matches = self
                .tuples
                .iter()
                .filter(|t| t.matches_on(&positions, key))
                .cloned()
                .collect();
            Ok((matches, false))
        }
    }

    /// The maximum number of tuples sharing any single value combination on
    /// `attributes` — the tight cardinality bound `N` for an access
    /// constraint on those attributes.
    pub fn fanout_on(&self, attributes: &[String]) -> Result<usize> {
        let positions = self.schema.positions_of(attributes)?;
        let mut counts: BTreeMap<Vec<Value>, usize> = BTreeMap::new();
        for t in &self.tuples {
            let key: Vec<Value> = positions.iter().map(|&p| t[p]).collect();
            *counts.entry(key).or_insert(0) += 1;
        }
        Ok(counts.values().copied().max().unwrap_or(0))
    }

    /// Collects every value appearing in any tuple (contribution to the
    /// active domain).
    pub fn collect_adom(&self, into: &mut HashSet<Value>) {
        for t in &self.tuples {
            for v in t.iter() {
                into.insert(*v);
            }
        }
    }

    fn rebuild_indexes(&mut self) {
        let keys: Vec<Vec<usize>> = self.indexes.keys().cloned().collect();
        self.indexes.clear();
        for key in keys {
            let index = HashIndex::build(key.clone(), self.tuples.as_slice());
            self.indexes.insert(key, index);
        }
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} [{} tuples]", self.schema, self.len())?;
        for t in self.tuples.iter().take(20) {
            writeln!(f, "  {t}")?;
        }
        if self.len() > 20 {
            writeln!(f, "  … ({} more)", self.len() - 20)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn person() -> Relation {
        let schema = RelationSchema::new("person", &["id", "name", "city"]);
        Relation::with_tuples(
            schema,
            vec![
                tuple![1, "ann", "NYC"],
                tuple![2, "bob", "LA"],
                tuple![3, "cat", "NYC"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn insert_respects_set_semantics_and_arity() {
        let mut r = person();
        assert_eq!(r.len(), 3);
        assert!(!r.insert(tuple![1, "ann", "NYC"]).unwrap());
        assert_eq!(r.len(), 3);
        assert!(r.insert(tuple![4, "dan", "SF"]).unwrap());
        assert_eq!(r.len(), 4);
        let err = r.insert(tuple![5, "eve"]).unwrap_err();
        assert!(matches!(
            err,
            DataError::ArityMismatch {
                expected: 3,
                actual: 2,
                ..
            }
        ));
    }

    #[test]
    fn contains_and_remove() {
        let mut r = person();
        assert!(r.contains(&tuple![2, "bob", "LA"]));
        assert!(r.remove(&tuple![2, "bob", "LA"]));
        assert!(!r.contains(&tuple![2, "bob", "LA"]));
        assert!(!r.remove(&tuple![2, "bob", "LA"]));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn select_eq_without_index_scans() {
        let r = person();
        let (rows, used_index) = r.select_eq(&["city".into()], &[Value::str("NYC")]).unwrap();
        assert!(!used_index);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn select_eq_with_index_probes() {
        let mut r = person();
        r.ensure_index(&["city".into()]).unwrap();
        let (rows, used_index) = r.select_eq(&["city".into()], &[Value::str("NYC")]).unwrap();
        assert!(used_index);
        assert_eq!(rows.len(), 2);
        let (rows, _) = r
            .select_eq(&["city".into()], &[Value::str("Tokyo")])
            .unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn index_is_maintained_under_insert_and_remove() {
        let mut r = person();
        r.ensure_index(&["city".into()]).unwrap();
        r.insert(tuple![4, "dan", "NYC"]).unwrap();
        let (rows, used) = r.select_eq(&["city".into()], &[Value::str("NYC")]).unwrap();
        assert!(used);
        assert_eq!(rows.len(), 3);
        r.remove(&tuple![1, "ann", "NYC"]);
        let (rows, used) = r.select_eq(&["city".into()], &[Value::str("NYC")]).unwrap();
        assert!(used);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn multi_attribute_select_normalises_positions() {
        let mut r = person();
        r.ensure_index(&["city".into(), "id".into()]).unwrap();
        // Probe with attributes listed in a different order than the index key.
        let (rows, used) = r
            .select_eq(
                &["id".into(), "city".into()],
                &[Value::int(3), Value::str("NYC")],
            )
            .unwrap();
        assert!(used);
        assert_eq!(rows, vec![tuple![3, "cat", "NYC"]]);
    }

    #[test]
    fn fanout_reports_tight_bound() {
        let r = person();
        assert_eq!(r.fanout_on(&["city".into()]).unwrap(), 2);
        assert_eq!(r.fanout_on(&["id".into()]).unwrap(), 1);
        let empty = Relation::new(RelationSchema::new("e", &["a"]));
        assert_eq!(empty.fanout_on(&["a".into()]).unwrap(), 0);
    }

    #[test]
    fn collect_adom_gathers_all_values() {
        let r = person();
        let mut adom = HashSet::new();
        r.collect_adom(&mut adom);
        assert!(adom.contains(&Value::int(1)));
        assert!(adom.contains(&Value::str("NYC")));
        assert_eq!(adom.len(), 8); // 3 ids + 3 names + 2 distinct cities
    }

    #[test]
    fn index_on_returns_built_indexes_only() {
        let mut r = person();
        assert!(r.index_on(&["id".into()]).is_none());
        r.ensure_index(&["id".into()]).unwrap();
        assert!(r.index_on(&["id".into()]).is_some());
        assert!(r.index_on(&["nope".into()]).is_none());
    }

    #[test]
    fn unknown_attribute_errors_propagate() {
        let r = person();
        assert!(r.select_eq(&["zip".into()], &[Value::int(0)]).is_err());
        assert!(r.fanout_on(&["zip".into()]).is_err());
    }

    #[test]
    fn display_mentions_name_and_count() {
        let r = person();
        let s = r.to_string();
        assert!(s.contains("person"));
        assert!(s.contains("3 tuples"));
    }
}
