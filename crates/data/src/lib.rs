//! # `si-data` — relational data substrate
//!
//! This crate provides the storage layer used by the reproduction of
//! *"On Scale Independence for Querying Big Data"* (Fan, Geerts, Libkin,
//! PODS 2014).  It deliberately mirrors the paper's preliminaries
//! (Section 2): a relational schema is a collection of relation names with a
//! fixed set of attributes, an instance associates a finite relation over a
//! countable domain `U` with every relation name, and the *size* `|D|` of an
//! instance is the total number of tuples in its relations.
//!
//! ## The interned representation
//!
//! This crate is the bottom of the **copy-cheap data plane**: every string
//! constant is interned exactly once into the process-global
//! [`SymbolInterner`] and travels as a 4-byte [`Symbol`], making [`Value`] a
//! 16-byte `Copy` enum (`Null | Bool | Int | Sym`).  Tuples, join keys,
//! index buckets and the flat variable bindings of `si-query` therefore
//! clone with a `memcpy` and zero allocation; [`Symbol::as_str`] is the
//! resolve path for display and serialisation.  Relations store their tuples
//! once, in an insertion-ordered [`TupleSet`] (iteration order and O(1)
//! membership from a single structure), and [`HashIndex`] buckets are keyed
//! by interned values.
//!
//! The crate contains no query-processing logic; it only offers:
//!
//! * [`Value`], [`Tuple`], [`Symbol`] — the element domain `U`, tuples over
//!   it, and interned string handles,
//! * [`TupleSet`] — the shared insertion-ordered set used for relation
//!   storage and answer deduplication,
//! * [`RelationSchema`], [`DatabaseSchema`] — named relation signatures,
//! * [`Relation`], [`Database`] — set-semantics instances with size and
//!   active-domain accessors,
//! * [`HashIndex`] / [`IndexPool`] — the secondary-index subsystem: equality
//!   indexes on attribute subsets (the physical realisation of the paper's
//!   access constraints), declared cheaply, built lazily on first probe and
//!   maintained incrementally under updates,
//! * [`stats`] — per-relation row counts and per-column distinct counts, the
//!   statistics that drive the cost-based planner in `si-core`,
//! * [`Delta`] — insert/delete updates `∆D = (∆D, ∇D)` as used in Section 5,
//! * [`codec`] — the compact hand-rolled binary codec (`len ‖ crc32 ‖
//!   payload` frames, symbols serialised as resolved strings) used by
//!   `si-durability` for WAL records and checkpoints and reusable as the
//!   replication wire codec,
//! * [`snapshot`] — epoch-versioned, copy-on-write [`DatabaseSnapshot`]s and
//!   the [`SnapshotStore`] (pinning readers, one committing writer), the
//!   storage contract of the `si-engine` concurrent serving layer,
//! * [`shard`] — hash-partitioned sharded storage: [`PartitionMap`] routing
//!   over a declared partition column per relation, the
//!   [`ShardedSnapshotStore`] (N per-shard stores committing under one
//!   coherent global epoch) and pinned [`ShardedSnapshotView`]s with exact
//!   cross-shard merged statistics,
//! * [`meter`] — deterministic counters of tuples fetched ([`MeterSink`],
//!   with the single-threaded [`AccessMeter`] and the atomic
//!   [`SharedMeter`]), used by all experiments to measure the quantity that
//!   scale independence bounds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod database;
pub mod delta;
pub mod error;
pub mod index;
pub mod intern;
pub mod meter;
pub mod ordset;
pub mod relation;
pub mod schema;
pub mod shard;
pub mod snapshot;
pub mod stats;
pub mod tuple;
pub mod value;

pub use codec::{CodecError, RelationPage};
pub use database::Database;
pub use delta::{Delta, DeltaBase, DeltaBatch, RelationDelta};
pub use error::DataError;
pub use index::{HashIndex, IndexPool};
pub use intern::{interner, Symbol, SymbolInterner};
pub use meter::{AccessMeter, MeterSink, MeterSnapshot, SharedMeter};
pub use ordset::TupleSet;
pub use relation::Relation;
pub use schema::{DatabaseSchema, RelationSchema};
pub use shard::{
    shard_of_tuple, shard_of_value, PartitionMap, PartitionRouter, ShardStats,
    ShardedSnapshotStore, ShardedSnapshotView,
};
pub use snapshot::{DatabaseSnapshot, SnapshotStore};
pub use stats::{DatabaseStats, RelationStats};
pub use tuple::Tuple;
pub use value::Value;

/// Convenience result alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, DataError>;

/// Compile-time thread-safety audit.
///
/// The concurrent serving layer shares these types across worker threads
/// (snapshots by `Arc`, relations inside them, values and tuples by copy).
/// A future regression that sneaks an `Rc`/`Cell` into any of them must fail
/// to *compile*, not surface as a distant trait-bound error in `si-engine` —
/// hence these static assertions live next to the type definitions.
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    assert_send_sync::<Value>();
    assert_send_sync::<Symbol>();
    assert_send_sync::<Tuple>();
    assert_send_sync::<TupleSet>();
    assert_send_sync::<HashIndex>();
    assert_send_sync::<IndexPool>();
    assert_send_sync::<Relation>();
    assert_send_sync::<Database>();
    assert_send_sync::<DatabaseSchema>();
    assert_send_sync::<Delta>();
    assert_send_sync::<RelationPage>();
    assert_send_sync::<DatabaseStats>();
    assert_send_sync::<DatabaseSnapshot>();
    assert_send_sync::<SnapshotStore>();
    assert_send_sync::<PartitionMap>();
    assert_send_sync::<ShardedSnapshotView>();
    assert_send_sync::<ShardedSnapshotStore>();
    assert_send_sync::<SharedMeter>();
    assert_send_sync::<MeterSnapshot>();
    // AccessMeter is deliberately *not* Sync (Cell-based fast path); it only
    // needs to move with its worker thread.
    const fn assert_send<T: Send>() {}
    assert_send::<AccessMeter>();
};
