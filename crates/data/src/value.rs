//! The element domain `U` from which databases are populated.
//!
//! The paper assumes a countably infinite set `U`; we realise it as the
//! disjoint union of 64-bit integers, interned strings and booleans, plus a
//! `Null` marker used by some generators for "unknown".  Values are totally
//! ordered and hashable so that they can be used as index keys and set
//! elements.
//!
//! Since the interned-data-plane refactor, `Value` is a 16-byte **`Copy`**
//! enum: string constants are interned once into the process-global
//! [`SymbolInterner`](crate::SymbolInterner) and carried as a 4-byte
//! [`Symbol`].  Cloning a value — and therefore a tuple, a join key, an index
//! bucket entry or a variable binding — never allocates.  Display and
//! resolution go through [`Symbol::as_str`].

use crate::intern::Symbol;
use std::cmp::Ordering;
use std::fmt;

/// A single constant of the universe `U`.
///
/// `Value` is `Copy`: equality and hashing on the string variant compare the
/// interned symbol (a `u32`), which agrees with string equality because the
/// interner is injective.  Ordering on strings resolves the symbol and is
/// lexicographic, matching the pre-interning behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Value {
    /// Absent / unknown value.  Compares equal only to itself.
    Null,
    /// A boolean constant.
    Bool(bool),
    /// A 64-bit integer constant.
    Int(i64),
    /// An interned string constant.
    Sym(Symbol),
}

impl Value {
    /// Builds a string value from anything string-like, interning it.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Sym(Symbol::intern(s.as_ref()))
    }

    /// Builds an integer value.
    pub const fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Builds a boolean value.
    pub const fn bool(b: bool) -> Self {
        Value::Bool(b)
    }

    /// Returns the integer payload if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the resolved string payload if this is a [`Value::Sym`].
    pub fn as_str(&self) -> Option<&'static str> {
        match self {
            Value::Sym(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Returns the interned symbol if this is a [`Value::Sym`].
    pub fn as_symbol(&self) -> Option<Symbol> {
        match self {
            Value::Sym(s) => Some(*s),
            _ => None,
        }
    }

    /// Returns the boolean payload if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True iff this value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// A small integer tag used to order values of different variants.
    fn variant_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Sym(_) => 3,
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Sym(a), Sym(b)) => a.cmp(b),
            (a, b) => a.variant_rank().cmp(&b.variant_rank()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Sym(s) => write!(f, "{:?}", s.as_str()),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::str(s)
    }
}

impl From<Symbol> for Value {
    fn from(s: Symbol) -> Self {
        Value::Sym(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn value_is_small_and_copy() {
        // The whole point of interning: a Value (and an Option<Value>) is a
        // couple of machine words, and copying it is trivial.
        assert!(std::mem::size_of::<Value>() <= 16);
        let v = Value::str("copyable");
        let w = v; // Copy, not move
        assert_eq!(v, w);
    }

    #[test]
    fn accessors_return_payloads() {
        assert_eq!(Value::int(7).as_int(), Some(7));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::bool(true).as_bool(), Some(true));
        assert!(Value::Null.is_null());
        assert_eq!(Value::str("x").as_int(), None);
        assert_eq!(Value::int(7).as_str(), None);
        assert_eq!(Value::int(7).as_bool(), None);
        assert_eq!(Value::str("x").as_symbol(), Some(Symbol::intern("x")));
        assert_eq!(Value::int(7).as_symbol(), None);
    }

    #[test]
    fn conversions_from_primitives() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(3u32), Value::Int(3));
        assert_eq!(Value::from(3usize), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("abc"), Value::str("abc"));
        assert_eq!(Value::from(String::from("abc")), Value::str("abc"));
        assert_eq!(Value::from(Symbol::intern("abc")), Value::str("abc"));
    }

    #[test]
    fn ordering_is_total_and_variant_stratified() {
        let mut vs = vec![
            Value::str("b"),
            Value::Null,
            Value::int(10),
            Value::bool(false),
            Value::int(-1),
            Value::str("a"),
            Value::bool(true),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::Null,
                Value::bool(false),
                Value::bool(true),
                Value::int(-1),
                Value::int(10),
                Value::str("a"),
                Value::str("b"),
            ]
        );
    }

    #[test]
    fn equality_is_not_coercing() {
        assert_ne!(Value::Int(1), Value::str("1"));
        assert_ne!(Value::Bool(true), Value::Int(1));
        assert_ne!(Value::Null, Value::Int(0));
    }

    #[test]
    fn hashing_distinguishes_variants() {
        let mut set = HashSet::new();
        set.insert(Value::Int(1));
        set.insert(Value::str("1"));
        set.insert(Value::Bool(true));
        set.insert(Value::Null);
        assert_eq!(set.len(), 4);
        assert!(set.contains(&Value::Int(1)));
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(Value::int(5).to_string(), "5");
        assert_eq!(Value::str("nyc").to_string(), "\"nyc\"");
        assert_eq!(Value::bool(true).to_string(), "true");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn ordering_within_ints_and_strings_is_natural() {
        assert!(Value::int(2) < Value::int(10));
        assert!(Value::str("abc") < Value::str("abd"));
        assert!(Value::bool(false) < Value::bool(true));
        // Lexicographic even when interning order disagrees with id order.
        assert!(Value::str("zz-late") > Value::str("aa-later-interned"));
    }

    #[test]
    fn interning_makes_equal_strings_identical() {
        let a = Value::str("same");
        let b = Value::str(String::from("same"));
        assert_eq!(a, b);
        assert_eq!(a.as_symbol(), b.as_symbol());
    }
}
