//! The element domain `U` from which databases are populated.
//!
//! The paper assumes a countably infinite set `U`; we realise it as the
//! disjoint union of 64-bit integers, strings and booleans, plus a `Null`
//! marker used by some generators for "unknown".  Values are totally ordered
//! and hashable so that they can be used as index keys and set elements.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A single constant of the universe `U`.
///
/// `Value` is intentionally small and cheap to clone; strings are the only
/// heap-owning variant.  The derived equality is exact (no numeric coercion
/// between variants).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Value {
    /// Absent / unknown value.  Compares equal only to itself.
    Null,
    /// A boolean constant.
    Bool(bool),
    /// A 64-bit integer constant.
    Int(i64),
    /// A string constant.
    Str(String),
}

impl Value {
    /// Builds a string value from anything string-like.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Builds an integer value.
    pub const fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Builds a boolean value.
    pub const fn bool(b: bool) -> Self {
        Value::Bool(b)
    }

    /// Returns the integer payload if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the string payload if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the boolean payload if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True iff this value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// A small integer tag used to order values of different variants.
    fn variant_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Str(_) => 3,
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (a, b) => a.variant_rank().cmp(&b.variant_rank()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn accessors_return_payloads() {
        assert_eq!(Value::int(7).as_int(), Some(7));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::bool(true).as_bool(), Some(true));
        assert!(Value::Null.is_null());
        assert_eq!(Value::str("x").as_int(), None);
        assert_eq!(Value::int(7).as_str(), None);
        assert_eq!(Value::int(7).as_bool(), None);
    }

    #[test]
    fn conversions_from_primitives() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(3u32), Value::Int(3));
        assert_eq!(Value::from(3usize), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("abc"), Value::Str("abc".into()));
        assert_eq!(Value::from(String::from("abc")), Value::Str("abc".into()));
    }

    #[test]
    fn ordering_is_total_and_variant_stratified() {
        let mut vs = vec![
            Value::str("b"),
            Value::Null,
            Value::int(10),
            Value::bool(false),
            Value::int(-1),
            Value::str("a"),
            Value::bool(true),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::Null,
                Value::bool(false),
                Value::bool(true),
                Value::int(-1),
                Value::int(10),
                Value::str("a"),
                Value::str("b"),
            ]
        );
    }

    #[test]
    fn equality_is_not_coercing() {
        assert_ne!(Value::Int(1), Value::Str("1".into()));
        assert_ne!(Value::Bool(true), Value::Int(1));
        assert_ne!(Value::Null, Value::Int(0));
    }

    #[test]
    fn hashing_distinguishes_variants() {
        let mut set = HashSet::new();
        set.insert(Value::Int(1));
        set.insert(Value::Str("1".into()));
        set.insert(Value::Bool(true));
        set.insert(Value::Null);
        assert_eq!(set.len(), 4);
        assert!(set.contains(&Value::Int(1)));
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(Value::int(5).to_string(), "5");
        assert_eq!(Value::str("nyc").to_string(), "\"nyc\"");
        assert_eq!(Value::bool(true).to_string(), "true");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn ordering_within_ints_and_strings_is_natural() {
        assert!(Value::int(2) < Value::int(10));
        assert!(Value::str("abc") < Value::str("abd"));
        assert!(Value::bool(false) < Value::bool(true));
    }
}
