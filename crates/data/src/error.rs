//! Error type shared by the data substrate.

use std::fmt;

/// Errors raised by the relational substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A relation name was not found in the schema or database.
    UnknownRelation(String),
    /// An attribute name was not found in a relation schema.
    UnknownAttribute {
        /// Relation in which the lookup happened.
        relation: String,
        /// The attribute that could not be resolved.
        attribute: String,
    },
    /// A tuple's arity did not match the relation schema it was inserted into.
    ArityMismatch {
        /// Relation being modified.
        relation: String,
        /// Arity declared by the schema.
        expected: usize,
        /// Arity of the offending tuple.
        actual: usize,
    },
    /// A relation with the same name was declared twice.
    DuplicateRelation(String),
    /// An update violated the well-formedness conditions of Section 5 of the
    /// paper: deletions must be contained in `D` and insertions disjoint
    /// from `D`.
    InvalidUpdate(String),
    /// A generic invariant violation with a human-readable description.
    Invariant(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::UnknownRelation(name) => write!(f, "unknown relation `{name}`"),
            DataError::UnknownAttribute {
                relation,
                attribute,
            } => write!(f, "unknown attribute `{attribute}` in relation `{relation}`"),
            DataError::ArityMismatch {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "arity mismatch for relation `{relation}`: schema declares {expected} attributes, tuple has {actual}"
            ),
            DataError::DuplicateRelation(name) => {
                write!(f, "relation `{name}` declared more than once")
            }
            DataError::InvalidUpdate(msg) => write!(f, "invalid update: {msg}"),
            DataError::Invariant(msg) => write!(f, "invariant violation: {msg}"),
        }
    }
}

impl std::error::Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_offenders() {
        let e = DataError::UnknownRelation("friend".into());
        assert!(e.to_string().contains("friend"));

        let e = DataError::UnknownAttribute {
            relation: "person".into(),
            attribute: "zip".into(),
        };
        assert!(e.to_string().contains("person"));
        assert!(e.to_string().contains("zip"));

        let e = DataError::ArityMismatch {
            relation: "visit".into(),
            expected: 2,
            actual: 5,
        };
        assert!(e.to_string().contains('2'));
        assert!(e.to_string().contains('5'));

        let e = DataError::DuplicateRelation("person".into());
        assert!(e.to_string().contains("person"));

        let e = DataError::InvalidUpdate("insert not disjoint".into());
        assert!(e.to_string().contains("disjoint"));

        let e = DataError::Invariant("broken".into());
        assert!(e.to_string().contains("broken"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: std::error::Error>(_e: E) {}
        takes_error(DataError::UnknownRelation("r".into()));
    }
}
