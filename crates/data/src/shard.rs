//! Hash-partitioned sharded storage: N epoch-versioned stores behind one
//! routing function.
//!
//! The paper's bounded plans fetch a small, data-independent slice of `D` —
//! which means the slice can live anywhere.  This module partitions `D`
//! itself: a [`ShardedSnapshotStore`] holds `N` ordinary
//! [`SnapshotStore`]s, each owning a hash-partition of every relation, with
//! a [`PartitionMap`] declaring the *partition column* per relation.  A
//! tuple lives on the shard selected by the stable hash of its partition
//! column's value ([`shard_of_value`]); relations without a declared
//! partition column are spread by the hash of the whole tuple (they can
//! still be fetched, just never routed to a single shard).
//!
//! ## Commit / epoch contract
//!
//! A cross-shard [`ShardedSnapshotStore::commit`] splits the [`Delta`] by
//! route ([`ShardedSnapshotStore::split`]) and commits shard-locally —
//! **every** shard commits on every global commit, empty sub-deltas
//! included, so each shard's local epoch always equals the global epoch.
//! All sub-deltas are validated against the current shard versions *before*
//! any shard commits, so a bad delta leaves every shard untouched.  Readers
//! pin a [`ShardedSnapshotView`] — one coherent vector of per-shard
//! [`DatabaseSnapshot`]s at a common epoch — and keep answering against it
//! regardless of later commits, exactly like the single-store contract.
//!
//! ## Merge-order contract
//!
//! Consumers that fan a retrieval across shards (see
//! `si_access::ShardedAccess`) concatenate per-shard results **in shard
//! order** (shard 0 first).  Within a shard, insertion order follows the
//! global insertion order restricted to that shard, so the merged sequence
//! is a deterministic permutation of the unsharded one: answer/witness
//! *sets*, tuple counts and meters are identical to unsharded execution,
//! while sequence order may differ (compare sorted).
//!
//! ## Statistics
//!
//! Planning happens once, globally: [`ShardedSnapshotView::statistics`]
//! merges per-shard relations into exactly the [`DatabaseStats`] the
//! unsharded instance would produce (row counts summed, per-column distinct
//! counts deduplicated across shards), so the cost-based planner picks the
//! same plan either way.  [`ShardedSnapshotStore::shard_stats`] exposes the
//! per-shard balance.

use crate::database::Database;
use crate::delta::Delta;
use crate::error::DataError;
use crate::relation::Relation;
use crate::schema::DatabaseSchema;
use crate::snapshot::{DatabaseSnapshot, SnapshotStore};
use crate::stats::{DatabaseStats, RelationStats};
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Result;
use std::collections::{BTreeMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Stable 64-bit hash of a value (FNV-1a over a canonical byte encoding).
///
/// Symbols hash their *resolved string*, not their interner id, so routing
/// is independent of interning order and therefore stable across processes
/// and runs — a seeded test scenario shards identically every time.
fn value_hash(value: Value) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let fold = |mut h: u64, bytes: &[u8]| {
        for b in bytes {
            h ^= u64::from(*b);
            h = h.wrapping_mul(PRIME);
        }
        h
    };
    match value {
        Value::Null => fold(OFFSET, &[0]),
        Value::Bool(b) => fold(OFFSET, &[1, u8::from(b)]),
        Value::Int(i) => {
            let h = fold(OFFSET, &[2]);
            fold(h, &i.to_le_bytes())
        }
        Value::Sym(s) => {
            let h = fold(OFFSET, &[3]);
            fold(h, s.as_str().as_bytes())
        }
    }
}

/// The shard a partition-column value routes to, out of `shards`.
pub fn shard_of_value(value: Value, shards: usize) -> usize {
    debug_assert!(shards > 0);
    (value_hash(value) % shards as u64) as usize
}

/// The shard a whole tuple routes to when its relation has no declared
/// partition column (fold of the per-value hashes).
pub fn shard_of_tuple(tuple: &Tuple, shards: usize) -> usize {
    debug_assert!(shards > 0);
    let mut h = 0x9e37_79b9_7f4a_7c15u64;
    for v in tuple.iter() {
        h = h.rotate_left(5) ^ value_hash(*v);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// The declared partition column per relation: `relation → attribute`.
///
/// Relations absent from the map are spread by whole-tuple hash; relations
/// present route every tuple by the hash of the named attribute's value,
/// which is what makes exact-match probes on that attribute single-shard.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PartitionMap {
    columns: BTreeMap<String, String>,
}

impl PartitionMap {
    /// An empty map (every relation spreads by whole-tuple hash).
    pub fn new() -> Self {
        PartitionMap::default()
    }

    /// Declares `attribute` as the partition column of `relation` (builder).
    pub fn with(mut self, relation: impl Into<String>, attribute: impl Into<String>) -> Self {
        self.set(relation, attribute);
        self
    }

    /// Declares `attribute` as the partition column of `relation`.
    pub fn set(&mut self, relation: impl Into<String>, attribute: impl Into<String>) -> &mut Self {
        self.columns.insert(relation.into(), attribute.into());
        self
    }

    /// The declared partition column of `relation`, if any.
    pub fn attribute(&self, relation: &str) -> Option<&str> {
        self.columns.get(relation).map(String::as_str)
    }

    /// Iterates over `(relation, attribute)` pairs in relation order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &String)> {
        self.columns.iter()
    }

    /// Resolves every declared column against `schema`, failing on unknown
    /// relations or attributes.  Returns `relation → column position`.
    pub fn resolve(&self, schema: &DatabaseSchema) -> Result<BTreeMap<String, usize>> {
        self.columns
            .iter()
            .map(|(relation, attribute)| {
                let rel = schema.relation(relation)?;
                Ok((relation.clone(), rel.position_of(attribute)?))
            })
            .collect()
    }

    /// Builds a standalone [`PartitionRouter`] for this map, resolved
    /// against `schema`, routing across `shards` shards.  The router shares
    /// the exact routing code a [`ShardedSnapshotStore`] uses, so consumers
    /// that replay deltas outside a live store (WAL recovery) cannot drift
    /// from the store's placement.
    pub fn router(&self, schema: &DatabaseSchema, shards: usize) -> Result<PartitionRouter> {
        if shards == 0 {
            return Err(DataError::InvalidUpdate(
                "a partition router needs at least one shard".into(),
            ));
        }
        let positions = self.resolve(schema)?;
        Ok(PartitionRouter {
            state: PartitionState {
                map: self.clone(),
                positions,
                shards,
            },
        })
    }
}

/// The routing function of a sharded store, detached from any store: maps
/// `(relation, tuple)` to a shard index and splits [`Delta`]s accordingly.
/// Obtained from [`PartitionMap::router`].
#[derive(Debug)]
pub struct PartitionRouter {
    state: PartitionState,
}

impl PartitionRouter {
    /// Number of shards routed across.
    pub fn shards(&self) -> usize {
        self.state.shards
    }

    /// The shard `tuple` of `relation` routes to (total).
    pub fn route(&self, relation: &str, tuple: &Tuple) -> usize {
        self.state.route(relation, tuple)
    }

    /// The partition column of `relation`, if one was declared — the same
    /// answer a pinned [`ShardedSnapshotView`] over this map would give, so
    /// routing decisions made against a router (e.g. by a replicated access
    /// source) cannot drift from the store's.
    pub fn attribute(&self, relation: &str) -> Option<&str> {
        self.state.map.attribute(relation)
    }

    /// The partition column's position in `relation`, if one was declared.
    pub fn position(&self, relation: &str) -> Option<usize> {
        self.state.positions.get(relation).copied()
    }

    /// The shard a partition-column value of `relation` routes to, if the
    /// relation has a declared partition column (mirror of
    /// [`ShardedSnapshotView::route_value`]).
    pub fn route_value(&self, relation: &str, value: Value) -> Option<usize> {
        self.state
            .positions
            .contains_key(relation)
            .then(|| shard_of_value(value, self.state.shards))
    }

    /// Splits a delta into per-shard deltas by routing every tuple (index
    /// `i` of the result targets shard `i`).
    pub fn split(&self, delta: &Delta) -> Vec<Delta> {
        let mut parts = vec![Delta::new(); self.shards()];
        for (relation, rd) in delta.iter() {
            for t in &rd.insertions {
                parts[self.route(relation, t)].insert(relation.clone(), t.clone());
            }
            for t in &rd.deletions {
                parts[self.route(relation, t)].delete(relation.clone(), t.clone());
            }
        }
        parts
    }
}

/// Resolved routing state shared by the store and every pinned view.
#[derive(Debug)]
struct PartitionState {
    map: PartitionMap,
    /// Partition column position per relation (only declared relations).
    positions: BTreeMap<String, usize>,
    shards: usize,
}

impl PartitionState {
    fn route(&self, relation: &str, tuple: &Tuple) -> usize {
        match self.positions.get(relation) {
            Some(pos) => match tuple.get(*pos) {
                Some(v) => shard_of_value(*v, self.shards),
                // Arity mismatches are caught by validation; spreading keeps
                // routing total in the meantime.
                None => shard_of_tuple(tuple, self.shards),
            },
            None => shard_of_tuple(tuple, self.shards),
        }
    }
}

/// One coherent, epoch-stamped view of every shard: the sharded analogue of
/// a pinned [`DatabaseSnapshot`].
///
/// All per-shard snapshots carry the same epoch (the global epoch).  Cloning
/// the `Arc` handle pins the whole vector.
#[derive(Debug)]
pub struct ShardedSnapshotView {
    epoch: u64,
    partition: Arc<PartitionState>,
    shards: Vec<Arc<DatabaseSnapshot>>,
}

impl ShardedSnapshotView {
    /// The global epoch (equals every shard's local epoch).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The database schema (identical across shards and versions).
    pub fn schema(&self) -> &DatabaseSchema {
        self.shards[0].schema()
    }

    /// The pinned per-shard snapshots, in shard order.
    pub fn shards(&self) -> &[Arc<DatabaseSnapshot>] {
        &self.shards
    }

    /// One shard's pinned snapshot.
    pub fn shard(&self, i: usize) -> &Arc<DatabaseSnapshot> {
        &self.shards[i]
    }

    /// The partition declaration this view was sharded under.
    pub fn partition_map(&self) -> &PartitionMap {
        &self.partition.map
    }

    /// The partition column of `relation`, if one was declared.
    pub fn partition_attribute(&self, relation: &str) -> Option<&str> {
        self.partition.map.attribute(relation)
    }

    /// The partition column's position in `relation`, if one was declared.
    pub fn partition_position(&self, relation: &str) -> Option<usize> {
        self.partition.positions.get(relation).copied()
    }

    /// The shard a partition-column value of `relation` routes to, if the
    /// relation has a declared partition column.
    pub fn route_value(&self, relation: &str, value: Value) -> Option<usize> {
        self.partition
            .positions
            .contains_key(relation)
            .then(|| shard_of_value(value, self.shard_count()))
    }

    /// The shard `tuple` of `relation` lives on (total: falls back to the
    /// whole-tuple hash for relations without a partition column).
    pub fn route_tuple(&self, relation: &str, tuple: &Tuple) -> usize {
        self.partition.route(relation, tuple)
    }

    /// Splits a delta into per-shard deltas by routing every tuple.
    pub fn split(&self, delta: &Delta) -> Vec<Delta> {
        let mut parts = vec![Delta::new(); self.shard_count()];
        for (relation, rd) in delta.iter() {
            for t in &rd.insertions {
                parts[self.route_tuple(relation, t)].insert(relation.clone(), t.clone());
            }
            for t in &rd.deletions {
                parts[self.route_tuple(relation, t)].delete(relation.clone(), t.clone());
            }
        }
        parts
    }

    /// Total rows of `relation` across shards.
    pub fn relation_rows(&self, relation: &str) -> Result<usize> {
        let mut rows = 0;
        for shard in &self.shards {
            rows += shard.relation(relation)?.len();
        }
        Ok(rows)
    }

    /// Total number of tuples, `|D|` of this version across all shards.
    pub fn size(&self) -> usize {
        self.shards.iter().map(|s| s.size()).sum()
    }

    /// Live `(relation, total rows)` pairs — the cheap drift signal, summed
    /// across shards.
    pub fn row_counts(&self) -> Vec<(String, usize)> {
        self.schema()
            .relation_names()
            .into_iter()
            .map(|name| {
                let rows = self
                    .shards
                    .iter()
                    .map(|s| s.relation(&name).map(Relation::len).unwrap_or(0))
                    .sum();
                (name, rows)
            })
            .collect()
    }

    /// Collects *global* statistics: exactly what the unsharded instance
    /// would produce (rows summed, per-column distincts deduplicated across
    /// shards), so plans ranked against them are shard-count-independent.
    pub fn statistics(&self) -> DatabaseStats {
        let mut merged: BTreeMap<String, RelationStats> = BTreeMap::new();
        for rel_schema in self.schema().relations() {
            let arity = rel_schema.arity();
            let mut rows = 0usize;
            let mut distincts: Vec<HashSet<Value>> = vec![HashSet::new(); arity];
            for shard in &self.shards {
                if let Ok(rel) = shard.relation(rel_schema.name()) {
                    rows += rel.len();
                    for t in rel.iter() {
                        for (col, set) in distincts.iter_mut().enumerate() {
                            if let Some(v) = t.get(col) {
                                set.insert(*v);
                            }
                        }
                    }
                }
            }
            let columns = rel_schema
                .attributes()
                .iter()
                .cloned()
                .zip(distincts.iter().map(HashSet::len))
                .collect();
            merged.insert(
                rel_schema.name().to_owned(),
                RelationStats { rows, columns },
            );
        }
        DatabaseStats::from_relation_stats(merged)
    }

    /// Materialises the view as one owned [`Database`] (shard-order merge of
    /// every relation).  For single-threaded cross-checks and tests, not for
    /// the serving path.
    pub fn to_database(&self) -> Database {
        let mut db = Database::empty(self.schema().clone());
        for shard in &self.shards {
            for rel in shard.relations() {
                for t in rel.iter() {
                    db.insert(rel.name(), t.clone())
                        .expect("shards are disjoint partitions of one instance");
                }
            }
        }
        db
    }
}

impl fmt::Display for ShardedSnapshotView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sharded[epoch={} shards={} |D|={}]",
            self.epoch,
            self.shard_count(),
            self.size()
        )
    }
}

/// Per-shard balance numbers, for observability and the sharding bench.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// The shard index.
    pub shard: usize,
    /// The shard's local epoch (always the global epoch).
    pub epoch: u64,
    /// Tuples currently stored on the shard.
    pub rows: usize,
    /// Delta tuples routed to the shard over the store's lifetime.
    pub routed_tuples: u64,
}

/// `N` hash-partitioned [`SnapshotStore`]s behind one routing function and
/// one coherent global epoch.  See the module docs for the commit/epoch and
/// merge-order contracts.
#[derive(Debug)]
pub struct ShardedSnapshotStore {
    shards: Vec<SnapshotStore>,
    partition: Arc<PartitionState>,
    current: RwLock<Arc<ShardedSnapshotView>>,
    writer: Mutex<()>,
    routed: Vec<AtomicU64>,
    pins: AtomicU64,
}

impl ShardedSnapshotStore {
    /// Splits `db` into `shards` hash-partitions and wraps each in a
    /// [`SnapshotStore`] at epoch 0.
    ///
    /// Declared secondary indexes of `db` are re-declared on every shard
    /// (still lazily built), so access-schema-promised indexes keep working
    /// shard-locally.  Fails if the partition map names an unknown relation
    /// or attribute, or if `shards` is 0.
    pub fn new(db: Database, partition: PartitionMap, shards: usize) -> Result<Self> {
        if shards == 0 {
            return Err(DataError::InvalidUpdate(
                "a sharded store needs at least one shard".into(),
            ));
        }
        let positions = partition.resolve(db.schema())?;
        let state = Arc::new(PartitionState {
            map: partition,
            positions,
            shards,
        });

        // Split: same schema everywhere, declared indexes carried over,
        // tuples routed.  Per-shard insertion order follows the source
        // relation's order restricted to the shard.
        let mut parts: Vec<Database> = (0..shards)
            .map(|_| Database::empty(db.schema().clone()))
            .collect();
        for rel in db.relations() {
            let declared = rel.declared_indexes();
            for part in parts.iter_mut() {
                for attrs in &declared {
                    part.declare_index(rel.name(), attrs)?;
                }
            }
            for t in rel.iter() {
                let shard = state.route(rel.name(), t);
                parts[shard].insert(rel.name(), t.clone())?;
            }
        }

        let stores: Vec<SnapshotStore> = parts.into_iter().map(SnapshotStore::new).collect();
        let view = Arc::new(ShardedSnapshotView {
            epoch: 0,
            partition: Arc::clone(&state),
            shards: stores.iter().map(SnapshotStore::pin).collect(),
        });
        Ok(ShardedSnapshotStore {
            shards: stores,
            partition: state,
            current: RwLock::new(view),
            writer: Mutex::new(()),
            routed: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            pins: AtomicU64::new(0),
        })
    }

    /// Rebuilds a sharded store from already-partitioned shard contents
    /// **at** `epoch` — the crash-recovery constructor.  `parts[i]` becomes
    /// shard `i` verbatim (no re-routing), so the shard layout of the
    /// pre-crash store is preserved exactly.
    ///
    /// Validates what [`ShardedSnapshotStore::new`] makes true by
    /// construction: all parts share one schema, the partition map resolves
    /// against it, and every stored tuple lives on the shard the routing
    /// function assigns it — a checkpoint written under a different shard
    /// count or partition map is rejected rather than silently mis-routed.
    pub fn restore(parts: Vec<Database>, partition: PartitionMap, epoch: u64) -> Result<Self> {
        if parts.is_empty() {
            return Err(DataError::InvalidUpdate(
                "a sharded store needs at least one shard".into(),
            ));
        }
        let schema = parts[0].schema().clone();
        for (i, part) in parts.iter().enumerate() {
            if *part.schema() != schema {
                return Err(DataError::Invariant(format!(
                    "restore: shard {i} schema differs from shard 0"
                )));
            }
        }
        let positions = partition.resolve(&schema)?;
        let state = Arc::new(PartitionState {
            map: partition,
            positions,
            shards: parts.len(),
        });
        for (i, part) in parts.iter().enumerate() {
            for rel in part.relations() {
                for t in rel.iter() {
                    let home = state.route(rel.name(), t);
                    if home != i {
                        return Err(DataError::Invariant(format!(
                            "restore: {} tuple {t} stored on shard {i} but routes to {home}",
                            rel.name()
                        )));
                    }
                }
            }
        }
        let stores: Vec<SnapshotStore> = parts
            .into_iter()
            .map(|db| SnapshotStore::restore(db, epoch))
            .collect();
        let view = Arc::new(ShardedSnapshotView {
            epoch,
            partition: Arc::clone(&state),
            shards: stores.iter().map(SnapshotStore::pin).collect(),
        });
        let shards = stores.len();
        Ok(ShardedSnapshotStore {
            shards: stores,
            partition: state,
            current: RwLock::new(view),
            writer: Mutex::new(()),
            routed: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            pins: AtomicU64::new(0),
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The partition declaration.
    pub fn partition_map(&self) -> &PartitionMap {
        &self.partition.map
    }

    /// Pins the current coherent view: a cheap `Arc` clone.
    pub fn pin(&self) -> Arc<ShardedSnapshotView> {
        self.pins.fetch_add(1, Ordering::Relaxed);
        self.current.read().expect("sharded store poisoned").clone()
    }

    /// Number of [`ShardedSnapshotStore::pin`] calls over the store's
    /// lifetime — one read-lock acquisition each, pinning the whole
    /// coherent shard vector (see [`SnapshotStore::pins`]).
    pub fn pins(&self) -> u64 {
        self.pins.load(Ordering::Relaxed)
    }

    /// The current global epoch.
    pub fn epoch(&self) -> u64 {
        self.pin().epoch()
    }

    /// Splits a delta into per-shard deltas by routing every tuple (index
    /// `i` of the result targets shard `i`).
    pub fn split(&self, delta: &Delta) -> Vec<Delta> {
        self.pin().split(delta)
    }

    /// Commits `delta` across shards: splits it by route, validates every
    /// sub-delta against the current shard versions, then commits each shard
    /// locally (empty sub-deltas included, keeping every local epoch equal
    /// to the global epoch) and installs the next coherent view.
    ///
    /// On validation error no shard is touched.  Commits from multiple
    /// threads serialise; readers are only blocked for the pointer swap.
    pub fn commit(&self, delta: &Delta) -> Result<Arc<ShardedSnapshotView>> {
        let _writer = self.writer.lock().expect("sharded writer poisoned");
        let base = self.pin();
        let parts = base.split(delta);

        // Validate every sub-delta against its shard's current version
        // before any shard commits: a bad delta must leave all shards (and
        // their common epoch) untouched.
        for (part, shard) in parts.iter().zip(base.shards()) {
            part.validate_relations(|name| shard.relation(name))?;
        }

        let mut next_shards = Vec::with_capacity(self.shards.len());
        for (i, (store, part)) in self.shards.iter().zip(&parts).enumerate() {
            // Validated above against the same pinned versions (the writer
            // lock excludes interleaving commits), so this cannot fail.
            let snapshot = store
                .commit(part)
                .expect("pre-validated sub-delta must commit");
            self.routed[i].fetch_add(part.size() as u64, Ordering::Relaxed);
            next_shards.push(snapshot);
        }
        let view = Arc::new(ShardedSnapshotView {
            epoch: base.epoch() + 1,
            partition: Arc::clone(&self.partition),
            shards: next_shards,
        });
        *self.current.write().expect("sharded store poisoned") = Arc::clone(&view);
        Ok(view)
    }

    /// Per-shard balance: local epoch, stored rows, and delta tuples routed
    /// to the shard since the store was created.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        let view = self.pin();
        view.shards()
            .iter()
            .enumerate()
            .map(|(shard, snapshot)| ShardStats {
                shard,
                epoch: snapshot.epoch(),
                rows: snapshot.size(),
                routed_tuples: self.routed[shard].load(Ordering::Relaxed),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::social_schema;
    use crate::tuple;

    fn social_partition() -> PartitionMap {
        PartitionMap::new()
            .with("person", "id")
            .with("friend", "id1")
            .with("visit", "id")
            .with("restr", "rid")
    }

    fn base() -> Database {
        let mut db = Database::empty(social_schema());
        for i in 0..40i64 {
            db.insert("person", tuple![i, format!("p{i}"), "NYC"])
                .unwrap();
            db.insert("friend", tuple![i, (i + 1) % 40]).unwrap();
            db.insert("visit", tuple![i, 100 + i % 7]).unwrap();
        }
        for r in 0..7i64 {
            db.insert("restr", tuple![100 + r, format!("r{r}"), "NYC", "A"])
                .unwrap();
        }
        db
    }

    #[test]
    fn routing_is_stable_and_total() {
        let store = ShardedSnapshotStore::new(base(), social_partition(), 3).unwrap();
        let view = store.pin();
        for i in 0..40i64 {
            let t = tuple![i, (i + 1) % 40];
            let a = view.route_tuple("friend", &t);
            let b = view.route_tuple("friend", &t);
            assert_eq!(a, b);
            assert_eq!(Some(a), view.route_value("friend", Value::int(i)));
            assert!(a < 3);
        }
        // Partition metadata is exposed.
        assert_eq!(view.partition_attribute("friend"), Some("id1"));
        assert_eq!(view.partition_position("friend"), Some(0));
        assert_eq!(view.partition_attribute("nosuch"), None);
        assert_eq!(view.route_value("nosuch", Value::int(1)), None);
        assert_eq!(store.partition_map().attribute("visit"), Some("id"));
    }

    #[test]
    fn split_partitions_the_whole_instance() {
        let db = base();
        let total = db.size();
        let store = ShardedSnapshotStore::new(db.clone(), social_partition(), 3).unwrap();
        let view = store.pin();
        assert_eq!(view.size(), total);
        assert_eq!(view.shard_count(), 3);
        // Every tuple is on exactly its routed shard.
        for rel in db.relations() {
            for t in rel.iter() {
                let home = view.route_tuple(rel.name(), t);
                for (i, shard) in view.shards().iter().enumerate() {
                    let present = shard.relation(rel.name()).unwrap().contains(t);
                    assert_eq!(present, i == home, "{} {t} on shard {i}", rel.name());
                }
            }
        }
        // Merged view equals the original instance.
        let merged = view.to_database();
        assert_eq!(merged.size(), total);
        assert!(merged.contains_database(&db) && db.contains_database(&merged));
    }

    #[test]
    fn one_shard_degenerates_to_the_plain_store() {
        let db = base();
        let store = ShardedSnapshotStore::new(db.clone(), social_partition(), 1).unwrap();
        assert_eq!(store.pin().shard(0).size(), db.size());
        assert!(ShardedSnapshotStore::new(db, social_partition(), 0).is_err());
    }

    #[test]
    fn partition_map_validates_against_the_schema() {
        let bad_rel = PartitionMap::new().with("enemy", "id");
        assert!(matches!(
            ShardedSnapshotStore::new(base(), bad_rel, 2),
            Err(DataError::UnknownRelation(_))
        ));
        let bad_attr = PartitionMap::new().with("person", "zip");
        assert!(matches!(
            ShardedSnapshotStore::new(base(), bad_attr, 2),
            Err(DataError::UnknownAttribute { .. })
        ));
        assert_eq!(social_partition().iter().count(), 4);
    }

    #[test]
    fn commit_splits_by_route_and_keeps_epochs_coherent() {
        let store = ShardedSnapshotStore::new(base(), social_partition(), 3).unwrap();
        let pinned = store.pin();
        let mut delta = Delta::new();
        for i in 0..10i64 {
            delta.insert("visit", tuple![i, 200 + i]);
        }
        delta.delete("friend", tuple![0, 1]);
        let parts = store.split(&delta);
        assert_eq!(parts.iter().map(Delta::size).sum::<usize>(), delta.size());

        let v1 = store.commit(&delta).unwrap();
        assert_eq!(v1.epoch(), 1);
        // Every shard advanced, even ones with an empty sub-delta.
        for shard in v1.shards() {
            assert_eq!(shard.epoch(), 1);
        }
        assert_eq!(v1.size(), pinned.size() + 10 - 1);
        // The pinned view still sees epoch 0 in full.
        assert_eq!(pinned.epoch(), 0);
        assert_eq!(pinned.relation_rows("visit").unwrap(), 40);
        assert_eq!(v1.relation_rows("visit").unwrap(), 50);
        // Routed-tuple accounting sums to the delta size.
        let stats = store.shard_stats();
        assert_eq!(
            stats.iter().map(|s| s.routed_tuples).sum::<u64>(),
            delta.size() as u64
        );
        assert_eq!(stats.iter().map(|s| s.rows).sum::<usize>(), v1.size());
    }

    #[test]
    fn failed_commits_leave_every_shard_untouched() {
        let store = ShardedSnapshotStore::new(base(), social_partition(), 3).unwrap();
        // A batch whose *last* tuple is invalid: nothing may land.
        let mut delta = Delta::new();
        delta.insert("visit", tuple![0, 999]);
        delta.insert("friend", tuple![0, 1]); // already present
        assert!(store.commit(&delta).is_err());
        assert_eq!(store.epoch(), 0);
        assert_eq!(store.pin().size(), base().size());
        for shard in store.pin().shards() {
            assert_eq!(shard.epoch(), 0);
        }
    }

    #[test]
    fn merged_statistics_equal_the_unsharded_statistics() {
        let db = base();
        let unsharded = db.statistics();
        for shards in [1usize, 2, 3, 8] {
            let store = ShardedSnapshotStore::new(db.clone(), social_partition(), shards).unwrap();
            assert_eq!(store.pin().statistics(), unsharded, "shards={shards}");
        }
    }

    #[test]
    fn declared_indexes_survive_the_split() {
        let mut db = base();
        db.declare_index("friend", &["id1".into()]).unwrap();
        db.declare_index("person", &["city".into()]).unwrap();
        let store = ShardedSnapshotStore::new(db, social_partition(), 3).unwrap();
        for shard in store.pin().shards() {
            assert!(shard.relation("friend").unwrap().has_index(&["id1".into()]));
            assert!(shard
                .relation("person")
                .unwrap()
                .has_index(&["city".into()]));
            // Still lazy: nothing built yet.
            assert!(!shard
                .relation("friend")
                .unwrap()
                .has_built_index(&["id1".into()]));
        }
        // A shard-local probe builds and answers through the shard index.
        let view = store.pin();
        let home = view.route_value("friend", Value::int(7)).unwrap();
        let (rows, used) = view
            .shard(home)
            .relation("friend")
            .unwrap()
            .select_eq(&["id1".into()], &[Value::int(7)])
            .unwrap();
        assert!(used);
        assert_eq!(rows, vec![tuple![7, 8]]);
    }

    #[test]
    fn concurrent_commits_all_land_coherently() {
        let store = ShardedSnapshotStore::new(base(), social_partition(), 3).unwrap();
        std::thread::scope(|s| {
            for t in 0..4 {
                let store = &store;
                s.spawn(move || {
                    for i in 0..10i64 {
                        let tup = tuple![100 + t, 300 + t * 100 + i];
                        store.commit(Delta::new().insert("visit", tup)).unwrap();
                    }
                });
            }
        });
        assert_eq!(store.epoch(), 40);
        let view = store.pin();
        for shard in view.shards() {
            assert_eq!(shard.epoch(), 40);
        }
        assert_eq!(view.relation_rows("visit").unwrap(), 40 + 40);
    }

    #[test]
    fn detached_router_agrees_with_the_store() {
        let store = ShardedSnapshotStore::new(base(), social_partition(), 3).unwrap();
        let view = store.pin();
        let router = social_partition().router(view.schema(), 3).unwrap();
        assert_eq!(router.shards(), 3);
        let mut delta = Delta::new();
        for i in 0..10i64 {
            delta.insert("visit", tuple![i, 200 + i]);
        }
        delta.delete("friend", tuple![0, 1]);
        assert_eq!(router.split(&delta), view.split(&delta));
        for rel in base().relations() {
            for t in rel.iter() {
                assert_eq!(router.route(rel.name(), t), view.route_tuple(rel.name(), t));
            }
        }
        assert!(social_partition().router(view.schema(), 0).is_err());
    }

    #[test]
    fn restore_preserves_layout_and_rejects_misrouted_parts() {
        let store = ShardedSnapshotStore::new(base(), social_partition(), 3).unwrap();
        let view = store.pin();
        let parts: Vec<Database> = view.shards().iter().map(|s| s.to_database()).collect();

        let restored = ShardedSnapshotStore::restore(parts.clone(), social_partition(), 5).unwrap();
        assert_eq!(restored.epoch(), 5);
        for shard in restored.pin().shards() {
            assert_eq!(shard.epoch(), 5);
        }
        let merged = restored.pin().to_database();
        let orig = view.to_database();
        assert!(merged.contains_database(&orig) && orig.contains_database(&merged));
        // Same routing function as the original store.
        for rel in orig.relations() {
            for t in rel.iter() {
                assert_eq!(
                    restored.pin().route_tuple(rel.name(), t),
                    view.route_tuple(rel.name(), t)
                );
            }
        }

        // Parts laid out under a different shard count mis-route and are
        // rejected, as is an empty part vector.
        let two: Vec<Database> = parts.iter().take(2).cloned().collect();
        assert!(matches!(
            ShardedSnapshotStore::restore(two, social_partition(), 5),
            Err(DataError::Invariant(_))
        ));
        assert!(ShardedSnapshotStore::restore(vec![], social_partition(), 0).is_err());
    }

    #[test]
    fn display_summarises_the_view() {
        let store = ShardedSnapshotStore::new(base(), social_partition(), 2).unwrap();
        let text = store.pin().to_string();
        assert!(text.contains("epoch=0") && text.contains("shards=2"));
    }
}
