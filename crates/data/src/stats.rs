//! Per-relation statistics: the raw material of the cost-based planner.
//!
//! The planner in `si-core` chooses between access paths using *estimated*
//! cardinalities, while the access constraints of the paper provide
//! *worst-case* bounds.  The two are deliberately kept apart: a constraint
//! `(R, X, N, T)` must hold for every key (so `N` is the maximum fanout),
//! whereas the expected number of tuples matching a random key is
//! `|R| / |π_X(R)|` — often orders of magnitude smaller on skewed data.
//! [`DatabaseStats`] records, per relation, the row count and the number of
//! distinct values per column; `si_access::cost` turns these into fetch-cost
//! estimates.
//!
//! Statistics are a snapshot: collect them with [`DatabaseStats::collect`]
//! (one pass over the instance) and re-collect after bulk updates.  Estimates
//! degrade gracefully when stale — they only influence plan *choice*, never
//! correctness, because every enumerated plan answers the query exactly.
//!
//! ```
//! use si_data::stats::DatabaseStats;
//! use si_data::schema::social_schema;
//! use si_data::{tuple, Database};
//!
//! let mut db = Database::empty(social_schema());
//! db.insert_all("friend", vec![tuple![1, 2], tuple![1, 3], tuple![2, 3]]).unwrap();
//! let stats = DatabaseStats::collect(&db);
//! let friend = stats.relation("friend").unwrap();
//! assert_eq!(friend.rows, 3);
//! assert_eq!(friend.distinct("id1"), Some(2));
//! // Expected tuples matching a random id1: 3 rows / 2 distinct keys.
//! assert_eq!(friend.estimated_matches(&["id1".into()]), 1.5);
//! ```

use crate::database::Database;
use crate::relation::Relation;
use std::collections::BTreeMap;

/// Statistics of a single relation: row count and per-column distinct counts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RelationStats {
    /// Number of tuples in the relation.
    pub rows: usize,
    /// Distinct value count per column, keyed by attribute name.
    pub columns: BTreeMap<String, usize>,
}

impl RelationStats {
    /// Collects statistics from a relation in one pass.
    pub fn collect(relation: &Relation) -> Self {
        let distincts = relation.column_distincts();
        let columns = relation
            .schema()
            .attributes()
            .iter()
            .cloned()
            .zip(distincts)
            .collect();
        RelationStats {
            rows: relation.len(),
            columns,
        }
    }

    /// Distinct value count of `attribute`, if known.
    pub fn distinct(&self, attribute: &str) -> Option<usize> {
        self.columns.get(attribute).copied()
    }

    /// Expected number of tuples matching an equality selection on
    /// `attributes` with a *random* key, under the standard independence and
    /// uniformity assumptions: `rows · Π 1/distinct(a)`.
    ///
    /// Invariants: the estimate is `rows` for an empty attribute list, `0`
    /// for an empty relation, never negative and never above `rows`.
    /// Duplicate attributes are counted once; unknown attributes contribute
    /// no selectivity (factor 1) rather than failing, so stale statistics
    /// degrade estimates, not correctness.
    pub fn estimated_matches(&self, attributes: &[String]) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        let mut est = self.rows as f64;
        let mut seen: Vec<&str> = Vec::with_capacity(attributes.len());
        for a in attributes {
            if seen.contains(&a.as_str()) {
                continue;
            }
            seen.push(a);
            if let Some(d) = self.columns.get(a) {
                if *d > 0 {
                    est /= *d as f64;
                }
            }
        }
        est.min(self.rows as f64)
    }
}

/// Statistics for every relation of a database instance.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DatabaseStats {
    relations: BTreeMap<String, RelationStats>,
}

impl DatabaseStats {
    /// Collects statistics for every relation of `db` in one pass each.
    pub fn collect(db: &Database) -> Self {
        Self::collect_relations(db.relations())
    }

    /// Collects statistics from an iterator of relations — the entry point
    /// shared by [`Database::statistics`] and the versioned
    /// [`crate::snapshot::DatabaseSnapshot::statistics`].
    pub fn collect_relations<'a>(relations: impl Iterator<Item = &'a Relation>) -> Self {
        let relations = relations
            .map(|r| (r.name().to_owned(), RelationStats::collect(r)))
            .collect();
        DatabaseStats { relations }
    }

    /// Builds statistics from per-relation entries computed elsewhere — the
    /// entry point of the sharded store's exact cross-shard merge
    /// ([`crate::ShardedSnapshotView::statistics`]).
    pub fn from_relation_stats(relations: BTreeMap<String, RelationStats>) -> Self {
        DatabaseStats { relations }
    }

    /// Statistics of a single relation, if present.
    pub fn relation(&self, name: &str) -> Option<&RelationStats> {
        self.relations.get(name)
    }

    /// Iterates over `(relation name, stats)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &RelationStats)> {
        self.relations.iter()
    }

    /// Total number of tuples across relations (`|D|` as sampled).
    pub fn total_rows(&self) -> usize {
        self.relations.values().map(|s| s.rows).sum()
    }

    /// How far the live row counts have drifted from this snapshot: the
    /// maximum over relations of `|len − rows| / max(rows, 1)`.
    ///
    /// This is the cheap staleness signal the `si-engine` plan cache uses to
    /// decide when to re-collect statistics and invalidate prepared plans —
    /// it reads only relation lengths, never scans tuples.  Relations absent
    /// from the snapshot count with `rows = 0`.
    pub fn max_relative_row_drift<'a>(&self, relations: impl Iterator<Item = &'a Relation>) -> f64 {
        self.max_relative_row_drift_counts(relations.map(|r| (r.name().to_owned(), r.len())))
    }

    /// [`DatabaseStats::max_relative_row_drift`] over pre-summed
    /// `(relation, rows)` pairs — the form a sharded view reports, where a
    /// relation's live row count is the sum across shards.
    pub fn max_relative_row_drift_counts(
        &self,
        counts: impl IntoIterator<Item = (String, usize)>,
    ) -> f64 {
        let mut drift = 0.0f64;
        for (name, len) in counts {
            let sampled = self.relation(&name).map(|s| s.rows).unwrap_or(0);
            let delta = len.abs_diff(sampled) as f64;
            drift = drift.max(delta / sampled.max(1) as f64);
        }
        drift
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::social_schema;
    use crate::tuple;

    fn db() -> Database {
        let mut db = Database::empty(social_schema());
        db.insert_all(
            "person",
            vec![
                tuple![1, "ann", "NYC"],
                tuple![2, "bob", "NYC"],
                tuple![3, "cat", "LA"],
            ],
        )
        .unwrap();
        db.insert_all("friend", vec![tuple![1, 2], tuple![1, 3], tuple![2, 3]])
            .unwrap();
        db
    }

    #[test]
    fn collect_counts_rows_and_distincts() {
        let stats = DatabaseStats::collect(&db());
        let person = stats.relation("person").unwrap();
        assert_eq!(person.rows, 3);
        assert_eq!(person.distinct("id"), Some(3));
        assert_eq!(person.distinct("city"), Some(2));
        assert_eq!(person.distinct("zip"), None);
        let friend = stats.relation("friend").unwrap();
        assert_eq!(friend.distinct("id1"), Some(2));
        assert_eq!(stats.total_rows(), 6);
        assert_eq!(stats.iter().count(), 4);
        assert!(stats.relation("enemy").is_none());
    }

    #[test]
    fn estimated_matches_follows_the_uniformity_model() {
        let stats = DatabaseStats::collect(&db());
        let person = stats.relation("person").unwrap();
        // Key column: one expected match.
        assert_eq!(person.estimated_matches(&["id".into()]), 1.0);
        // Skewed column: 3 rows over 2 cities.
        assert_eq!(person.estimated_matches(&["city".into()]), 1.5);
        // Conjunction multiplies selectivities.
        assert_eq!(person.estimated_matches(&["id".into(), "city".into()]), 0.5);
        // Empty attribute list estimates the whole relation.
        assert_eq!(person.estimated_matches(&[]), 3.0);
        // Duplicates count once; unknown attributes are neutral.
        assert_eq!(
            person.estimated_matches(&["id".into(), "id".into(), "zip".into()]),
            1.0
        );
    }

    #[test]
    fn estimates_are_clamped() {
        let empty = RelationStats::default();
        assert_eq!(empty.estimated_matches(&["a".into()]), 0.0);
        let degenerate = RelationStats {
            rows: 4,
            columns: [("a".to_string(), 0usize)].into_iter().collect(),
        };
        // A zero distinct count (empty column snapshot) is neutral, and the
        // estimate never exceeds the row count.
        assert_eq!(degenerate.estimated_matches(&["a".into()]), 4.0);
    }
}
