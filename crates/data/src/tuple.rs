//! Tuples over the universe [`Value`].
//!
//! A [`Tuple`] is an ordered sequence of values.  Positions are resolved to
//! attribute names by the [`RelationSchema`](crate::RelationSchema) the tuple
//! belongs to; the tuple itself is schema-agnostic, which keeps joins and
//! projections cheap.

use crate::value::Value;
use std::fmt;
use std::ops::Index;

/// An ordered sequence of [`Value`]s, i.e. an element of `U^m`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Tuple(Vec<Value>);

impl Tuple {
    /// Creates a tuple from a vector of values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple(values)
    }

    /// Creates the empty (0-ary) tuple, the single answer of a Boolean query.
    pub fn empty() -> Self {
        Tuple(Vec::new())
    }

    /// Number of components (the arity of the tuple).
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// True iff this is the 0-ary tuple.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Returns the value at `position` if it exists.
    pub fn get(&self, position: usize) -> Option<&Value> {
        self.0.get(position)
    }

    /// Iterates over the components in order.
    pub fn iter(&self) -> impl Iterator<Item = &Value> {
        self.0.iter()
    }

    /// Returns the underlying values as a slice.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Consumes the tuple and returns its values.
    pub fn into_values(self) -> Vec<Value> {
        self.0
    }

    /// Projects the tuple onto the given positions, in the given order.
    ///
    /// Positions may repeat; out-of-range positions are an invariant
    /// violation of the caller and yield a panic in debug builds only.
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple(positions.iter().map(|&p| self.0[p]).collect())
    }

    /// Like [`Tuple::project`] but returns `None` when any position is out of
    /// range, for callers that cannot guarantee positions statically.
    pub fn try_project(&self, positions: &[usize]) -> Option<Tuple> {
        let mut out = Vec::with_capacity(positions.len());
        for &p in positions {
            out.push(*self.0.get(p)?);
        }
        Some(Tuple(out))
    }

    /// Concatenates two tuples (used when joining).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.arity() + other.arity());
        values.extend_from_slice(&self.0);
        values.extend_from_slice(&other.0);
        Tuple(values)
    }

    /// Returns `true` when the values at `positions` equal `key`
    /// component-wise.
    pub fn matches_on(&self, positions: &[usize], key: &[Value]) -> bool {
        positions.len() == key.len()
            && positions
                .iter()
                .zip(key.iter())
                .all(|(&p, v)| self.0.get(p) == Some(v))
    }
}

impl Index<usize> for Tuple {
    type Output = Value;

    fn index(&self, index: usize) -> &Value {
        &self.0[index]
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple(values)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple(iter.into_iter().collect())
    }
}

impl IntoIterator for Tuple {
    type Item = Value;
    type IntoIter = std::vec::IntoIter<Value>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl<'a> IntoIterator for &'a Tuple {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Builds a [`Tuple`] from a heterogeneous list of expressions convertible to
/// [`Value`].
///
/// ```
/// use si_data::{tuple, Value};
/// let t = tuple![1, "NYC", true];
/// assert_eq!(t.arity(), 3);
/// assert_eq!(t[1], Value::str("NYC"));
/// ```
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t123() -> Tuple {
        Tuple::new(vec![Value::int(1), Value::int(2), Value::int(3)])
    }

    #[test]
    fn arity_and_get() {
        let t = t123();
        assert_eq!(t.arity(), 3);
        assert_eq!(t.get(0), Some(&Value::int(1)));
        assert_eq!(t.get(3), None);
        assert_eq!(t[2], Value::int(3));
        assert!(!t.is_empty());
        assert!(Tuple::empty().is_empty());
    }

    #[test]
    fn project_reorders_and_repeats() {
        let t = t123();
        assert_eq!(
            t.project(&[2, 0, 0]),
            Tuple::new(vec![Value::int(3), Value::int(1), Value::int(1)])
        );
        assert_eq!(t.project(&[]), Tuple::empty());
    }

    #[test]
    fn try_project_handles_out_of_range() {
        let t = t123();
        assert_eq!(t.try_project(&[0, 2]), Some(t.project(&[0, 2])));
        assert_eq!(t.try_project(&[5]), None);
    }

    #[test]
    fn concat_appends_components() {
        let a = tuple![1, 2];
        let b = tuple!["x"];
        assert_eq!(a.concat(&b), tuple![1, 2, "x"]);
        assert_eq!(a, tuple![1, 2], "concat must not mutate its operands");
    }

    #[test]
    fn matches_on_compares_selected_positions() {
        let t = tuple![1, "NYC", 3];
        assert!(t.matches_on(&[1], &[Value::str("NYC")]));
        assert!(t.matches_on(&[0, 2], &[Value::int(1), Value::int(3)]));
        assert!(!t.matches_on(&[0], &[Value::int(9)]));
        assert!(!t.matches_on(&[0], &[Value::int(1), Value::int(3)]));
        assert!(!t.matches_on(&[7], &[Value::int(1)]));
    }

    #[test]
    fn macro_and_display() {
        let t = tuple![5, "a"];
        assert_eq!(t.to_string(), "(5, \"a\")");
        assert_eq!(Tuple::empty().to_string(), "()");
    }

    #[test]
    fn iteration_round_trips() {
        let t = t123();
        let vs: Vec<Value> = t.iter().cloned().collect();
        let t2: Tuple = vs.into_iter().collect();
        assert_eq!(t, t2);
        assert_eq!(t.clone().into_values().len(), 3);
    }
}
