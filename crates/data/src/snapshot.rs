//! Epoch-versioned, copy-on-write database snapshots.
//!
//! Concurrent query serving needs readers that never block on writers and a
//! writer that never waits for readers.  This module provides the storage
//! side of that contract:
//!
//! * [`DatabaseSnapshot`] — one immutable version of an instance.  Relations
//!   are held behind [`Arc`]s, so a snapshot is a name → `Arc<Relation>` map
//!   plus an epoch number; cloning a snapshot handle is a reference-count
//!   bump, never a data copy.
//! * [`SnapshotStore`] — the versioned store.  Readers *pin* the current
//!   version ([`SnapshotStore::pin`], a read-lock-and-`Arc`-clone) and keep
//!   answering against it for as long as they hold the `Arc`, regardless of
//!   what the writer does.  A writer *commits* a [`Delta`]
//!   ([`SnapshotStore::commit`]), which builds the next version **copy on
//!   write at relation granularity**: only relations the delta touches are
//!   cloned; untouched relations — including any secondary indexes already
//!   built inside their [`crate::IndexPool`]s — are shared with the previous
//!   version by `Arc`.
//!
//! The result is snapshot isolation in the database sense: every reader sees
//! exactly the version it pinned (the paper's `D` is fixed for the duration
//! of a bounded evaluation, which is what makes its fetch bound `M`
//! meaningful), and `D ⊕ ∆D` becomes the next version atomically.
//!
//! Lazily-declared indexes still work on a pinned snapshot: index
//! materialisation happens behind `&Relation` (see [`crate::IndexPool`]),
//! so the first probe of a declared index builds it *inside the shared
//! relation*, and every later version that does not touch the relation
//! reuses the built index for free.

use crate::database::Database;
use crate::delta::Delta;
use crate::error::DataError;
use crate::relation::Relation;
use crate::schema::DatabaseSchema;
use crate::stats::DatabaseStats;
use crate::Result;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// One immutable, epoch-stamped version of a database instance.
///
/// Obtained from a [`SnapshotStore`]; shared between readers as
/// `Arc<DatabaseSnapshot>`.  The relation map holds `Arc<Relation>`s so that
/// successive versions share every relation the intervening deltas did not
/// touch.
#[derive(Debug, Clone)]
pub struct DatabaseSnapshot {
    epoch: u64,
    schema: DatabaseSchema,
    relations: BTreeMap<String, Arc<Relation>>,
}

impl DatabaseSnapshot {
    /// Wraps a database as version 0, taking ownership of its relations
    /// without copying them.
    pub fn from_database(db: Database) -> Self {
        let (schema, relations) = db.into_parts();
        DatabaseSnapshot {
            epoch: 0,
            schema,
            relations: relations
                .into_iter()
                .map(|(name, rel)| (name, Arc::new(rel)))
                .collect(),
        }
    }

    /// Wraps a database as an arbitrary epoch — the crash-recovery path,
    /// where the replayed state must resume at its pre-crash version number
    /// rather than restart at 0.
    pub fn from_database_at(db: Database, epoch: u64) -> Self {
        let mut snap = DatabaseSnapshot::from_database(db);
        snap.epoch = epoch;
        snap
    }

    /// The version number: 0 for the initial snapshot, +1 per commit.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The database schema (identical across all versions of a store).
    pub fn schema(&self) -> &DatabaseSchema {
        &self.schema
    }

    /// Looks up a relation by name.
    pub fn relation(&self, name: &str) -> Result<&Relation> {
        self.relations
            .get(name)
            .map(Arc::as_ref)
            .ok_or_else(|| DataError::UnknownRelation(name.to_owned()))
    }

    /// Iterates over all relations in name order.
    pub fn relations(&self) -> impl Iterator<Item = &Relation> {
        self.relations.values().map(Arc::as_ref)
    }

    /// Total number of tuples, `|D|` of this version.
    pub fn size(&self) -> usize {
        self.relations().map(Relation::len).sum()
    }

    /// Collects fresh statistics for this version (planning-time work; see
    /// [`DatabaseStats`]).
    pub fn statistics(&self) -> DatabaseStats {
        DatabaseStats::collect_relations(self.relations())
    }

    /// True iff this version and `other` share the physical storage of
    /// `relation` (no intervening delta touched it).
    pub fn shares_relation(&self, other: &DatabaseSnapshot, relation: &str) -> bool {
        match (self.relations.get(relation), other.relations.get(relation)) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Materialises the snapshot as an owned [`Database`] (a deep copy of
    /// every relation).  Intended for single-threaded cross-checks and
    /// tests, not for the serving path.
    pub fn to_database(&self) -> Database {
        Database::from_parts(
            self.schema.clone(),
            self.relations
                .iter()
                .map(|(name, rel)| (name.clone(), Relation::clone(rel)))
                .collect(),
        )
    }

    /// Applies `delta`, producing the next version.
    ///
    /// Validation mirrors [`Delta::validate`] (deletions must be present,
    /// insertions absent, `∆D ∩ ∇D = ∅`), evaluated against *this* version.
    /// Only relations the delta touches are cloned; their built indexes are
    /// cloned with them and then maintained incrementally through the
    /// insert/remove paths, so no index is ever rebuilt from scratch.
    pub fn apply(&self, delta: &Delta) -> Result<DatabaseSnapshot> {
        // Validate against the current version first so that a bad delta
        // leaves nothing half-cloned.
        delta.validate_relations(|name| self.relation(name))?;

        let mut relations = self.relations.clone();
        for (name, rd) in delta.iter() {
            if rd.is_empty() {
                continue;
            }
            let entry = relations
                .get_mut(name)
                .expect("validated above: relation exists");
            // Copy-on-write: this is the only per-commit data copy, and it is
            // confined to the touched relation.
            let rel = Arc::make_mut(entry);
            for t in &rd.deletions {
                rel.remove(t);
            }
            for t in &rd.insertions {
                rel.insert(t.clone())?;
            }
        }
        Ok(DatabaseSnapshot {
            epoch: self.epoch + 1,
            schema: self.schema.clone(),
            relations,
        })
    }
}

impl fmt::Display for DatabaseSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snapshot[epoch={} |D|={}]", self.epoch, self.size())
    }
}

/// The epoch-versioned snapshot store: many pinning readers, one committing
/// writer at a time.
///
/// * [`SnapshotStore::pin`] is the reader path: a brief read lock to clone
///   the current `Arc`.  Readers then run entirely against their pinned
///   version — commits can neither block them nor change what they see.
/// * [`SnapshotStore::commit`] is the writer path: the (possibly expensive)
///   copy-on-write application runs under a dedicated writer mutex *without*
///   holding the readers' lock; only the final pointer swap takes the write
///   lock.  Concurrent committers serialise on the writer mutex, so no
///   update is ever lost.
#[derive(Debug)]
pub struct SnapshotStore {
    current: RwLock<Arc<DatabaseSnapshot>>,
    writer: Mutex<()>,
    pins: AtomicU64,
}

impl SnapshotStore {
    /// Creates a store whose version 0 is `db`.
    pub fn new(db: Database) -> Self {
        SnapshotStore {
            current: RwLock::new(Arc::new(DatabaseSnapshot::from_database(db))),
            writer: Mutex::new(()),
            pins: AtomicU64::new(0),
        }
    }

    /// Creates a store whose current version is `db` **at** `epoch` — the
    /// crash-recovery constructor ([`DatabaseSnapshot::from_database_at`]).
    /// Subsequent commits continue from `epoch + 1`.
    pub fn restore(db: Database, epoch: u64) -> Self {
        SnapshotStore {
            current: RwLock::new(Arc::new(DatabaseSnapshot::from_database_at(db, epoch))),
            writer: Mutex::new(()),
            pins: AtomicU64::new(0),
        }
    }

    /// Pins the current version: a cheap `Arc` clone the caller can hold for
    /// as long as it likes.
    pub fn pin(&self) -> Arc<DatabaseSnapshot> {
        self.pins.fetch_add(1, Ordering::Relaxed);
        self.current
            .read()
            .expect("snapshot store poisoned")
            .clone()
    }

    /// Number of [`SnapshotStore::pin`] calls over the store's lifetime —
    /// each is one read-lock acquisition on the serving path, the
    /// contention signal the batching experiments report (a shared-fetch
    /// group pins once for the whole group).
    pub fn pins(&self) -> u64 {
        self.pins.load(Ordering::Relaxed)
    }

    /// The current epoch (equals `self.pin().epoch()`).
    pub fn epoch(&self) -> u64 {
        self.pin().epoch()
    }

    /// Applies `delta` to the latest version and installs the result as the
    /// new current version, returning it.
    ///
    /// On error the store is left unchanged.  Commits from multiple threads
    /// are serialised; readers are only blocked for the pointer swap.
    pub fn commit(&self, delta: &Delta) -> Result<Arc<DatabaseSnapshot>> {
        let _writer = self.writer.lock().expect("snapshot writer poisoned");
        let base = self.pin();
        let next = Arc::new(base.apply(delta)?);
        *self.current.write().expect("snapshot store poisoned") = next.clone();
        Ok(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::social_schema;
    use crate::{tuple, Value};

    fn base() -> Database {
        let mut db = Database::empty(social_schema());
        db.insert_all(
            "person",
            vec![tuple![1, "ann", "NYC"], tuple![2, "bob", "LA"]],
        )
        .unwrap();
        db.insert_all("friend", vec![tuple![1, 2], tuple![2, 1]])
            .unwrap();
        db
    }

    #[test]
    fn version_zero_mirrors_the_database() {
        let snap = DatabaseSnapshot::from_database(base());
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.size(), 4);
        assert_eq!(snap.relation("friend").unwrap().len(), 2);
        assert!(snap.relation("enemy").is_err());
        assert_eq!(snap.statistics().total_rows(), 4);
        assert!(snap.to_string().contains("epoch=0"));
        assert_eq!(snap.to_database().size(), 4);
    }

    #[test]
    fn apply_is_copy_on_write_at_relation_granularity() {
        let v0 = DatabaseSnapshot::from_database(base());
        let mut delta = Delta::new();
        delta.insert("friend", tuple![1, 3]);
        let v1 = v0.apply(&delta).unwrap();
        assert_eq!(v1.epoch(), 1);
        // Touched relation diverges…
        assert!(!v0.shares_relation(&v1, "friend"));
        assert_eq!(v0.relation("friend").unwrap().len(), 2);
        assert_eq!(v1.relation("friend").unwrap().len(), 3);
        // …untouched relations are physically shared.
        assert!(v0.shares_relation(&v1, "person"));
    }

    #[test]
    fn built_indexes_carry_across_versions() {
        let mut db = base();
        db.ensure_index("person", &["city".into()]).unwrap();
        db.ensure_index("friend", &["id1".into()]).unwrap();
        let v0 = DatabaseSnapshot::from_database(db);
        let mut delta = Delta::new();
        delta
            .insert("friend", tuple![1, 3])
            .delete("friend", tuple![2, 1]);
        let v1 = v0.apply(&delta).unwrap();
        // The shared person index is still built (no copy happened)…
        assert!(v1
            .relation("person")
            .unwrap()
            .has_built_index(&["city".into()]));
        // …and the cloned friend index was maintained incrementally.
        let (rows, used) = v1
            .relation("friend")
            .unwrap()
            .select_eq(&["id1".into()], &[Value::int(1)])
            .unwrap();
        assert!(used);
        assert_eq!(rows, vec![tuple![1, 2], tuple![1, 3]]);
        let (rows, _) = v1
            .relation("friend")
            .unwrap()
            .select_eq(&["id1".into()], &[Value::int(2)])
            .unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn lazily_declared_index_built_on_a_snapshot_is_shared_forward() {
        let mut db = base();
        db.declare_index("person", &["city".into()]).unwrap();
        let v0 = DatabaseSnapshot::from_database(db);
        assert!(!v0
            .relation("person")
            .unwrap()
            .has_built_index(&["city".into()]));
        // First probe builds the index behind &Relation.
        v0.relation("person")
            .unwrap()
            .select_eq(&["city".into()], &[Value::str("NYC")])
            .unwrap();
        assert!(v0
            .relation("person")
            .unwrap()
            .has_built_index(&["city".into()]));
        // A commit that does not touch person reuses the built index.
        let v1 = v0
            .apply(Delta::new().insert("friend", tuple![1, 3]))
            .unwrap();
        assert!(v0.shares_relation(&v1, "person"));
        assert!(v1
            .relation("person")
            .unwrap()
            .has_built_index(&["city".into()]));
    }

    #[test]
    fn apply_validates_like_delta_validate() {
        let v0 = DatabaseSnapshot::from_database(base());
        // Insertion of an existing tuple.
        let dup = Delta::insertions_into("friend", vec![tuple![1, 2]]);
        assert!(matches!(v0.apply(&dup), Err(DataError::InvalidUpdate(_))));
        // Deletion of a missing tuple.
        let missing = Delta::deletions_from("friend", vec![tuple![9, 9]]);
        assert!(matches!(
            v0.apply(&missing),
            Err(DataError::InvalidUpdate(_))
        ));
        // Insert/delete overlap.
        let mut overlap = Delta::new();
        overlap.delete("friend", tuple![1, 2]);
        overlap.insert("friend", tuple![1, 2]);
        assert!(matches!(
            v0.apply(&overlap),
            Err(DataError::InvalidUpdate(_))
        ));
        // Arity and unknown relation errors propagate.
        let bad = Delta::insertions_into("friend", vec![tuple![1, 2, 3]]);
        assert!(matches!(
            v0.apply(&bad),
            Err(DataError::ArityMismatch { .. })
        ));
        let unknown = Delta::insertions_into("enemy", vec![tuple![1]]);
        assert!(matches!(
            v0.apply(&unknown),
            Err(DataError::UnknownRelation(_))
        ));
    }

    #[test]
    fn store_pins_are_isolated_from_commits() {
        let store = SnapshotStore::new(base());
        let pinned = store.pin();
        assert_eq!(store.epoch(), 0);
        store
            .commit(Delta::new().insert("friend", tuple![1, 3]))
            .unwrap();
        store
            .commit(Delta::new().delete("friend", tuple![2, 1]))
            .unwrap();
        assert_eq!(store.epoch(), 2);
        // The old pin still sees version 0.
        assert_eq!(pinned.epoch(), 0);
        assert_eq!(pinned.relation("friend").unwrap().len(), 2);
        assert!(pinned.relation("friend").unwrap().contains(&tuple![2, 1]));
        // A fresh pin sees both commits.
        let now = store.pin();
        assert_eq!(now.relation("friend").unwrap().len(), 2);
        assert!(now.relation("friend").unwrap().contains(&tuple![1, 3]));
        assert!(!now.relation("friend").unwrap().contains(&tuple![2, 1]));
    }

    #[test]
    fn restore_resumes_at_the_given_epoch() {
        let store = SnapshotStore::restore(base(), 7);
        assert_eq!(store.epoch(), 7);
        assert_eq!(store.pin().size(), 4);
        store
            .commit(Delta::new().insert("friend", tuple![1, 3]))
            .unwrap();
        assert_eq!(store.epoch(), 8);
    }

    #[test]
    fn failed_commit_leaves_the_store_unchanged() {
        let store = SnapshotStore::new(base());
        let err = store.commit(&Delta::insertions_into("friend", vec![tuple![1, 2]]));
        assert!(err.is_err());
        assert_eq!(store.epoch(), 0);
        assert_eq!(store.pin().size(), 4);
    }

    #[test]
    fn concurrent_commits_all_land() {
        let store = SnapshotStore::new(base());
        std::thread::scope(|s| {
            for t in 0..4 {
                let store = &store;
                s.spawn(move || {
                    for i in 0..10 {
                        let tup = tuple![100 + t, 200 + i];
                        store.commit(Delta::new().insert("friend", tup)).unwrap();
                    }
                });
            }
        });
        assert_eq!(store.epoch(), 40);
        assert_eq!(store.pin().relation("friend").unwrap().len(), 2 + 40);
    }
}
