//! String interning: the symbol side of the copy-cheap data plane.
//!
//! Every string constant entering the system is interned exactly once into a
//! process-wide [`SymbolInterner`], and from then on travels as a [`Symbol`]
//! — a `Copy` 4-byte handle.  Tuples, join keys, index buckets and variable
//! bindings therefore never touch the heap when they are cloned, which is
//! what makes assignment extension in the Theorem-4.2 executor and the
//! hash-join evaluator a plain `memcpy`.
//!
//! Design notes:
//!
//! * The interner is **process-global** (one symbol space), so values are
//!   comparable across databases, schemas, deltas and query constants without
//!   threading an interner handle through every API.  [`crate::Database`] and
//!   [`crate::DatabaseSchema`] expose it via [`crate::Database::interner`] as *the*
//!   resolve path for display/serialisation.  There is deliberately no way
//!   to construct a second interner: a `Symbol` is only meaningful in the
//!   symbol space that minted it, so independent instances would make
//!   resolution unsound.
//! * Interned strings are leaked (`Box::leak`) into an append-only chunked
//!   table, so resolution is **lock-free**: [`Symbol::as_str`] is two atomic
//!   loads, never a lock.  Only interning new text takes the write lock.
//!   The leak is bounded by the number of *distinct* strings, the same
//!   trade-off made by `rustc`'s `Symbol` and the `lasso`/`internment`
//!   crates.
//! * `Symbol` equality/hashing is `u32` equality/hashing; ordering resolves
//!   the text so that [`crate::Value`]'s lexicographic string order is
//!   preserved.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// Symbols per storage chunk (chunks are allocated lazily).
const CHUNK_SIZE: usize = 1 << 12;
/// Maximum number of chunks, bounding the symbol space at ~16.7M strings.
const MAX_CHUNKS: usize = 1 << 12;

/// An interned string: a `Copy` handle into the global [`SymbolInterner`].
///
/// Two symbols are equal iff their texts are equal; comparison is
/// lexicographic on the resolved text.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// Interns `text` in the global interner and returns its symbol.
    pub fn intern(text: &str) -> Symbol {
        interner().intern(text)
    }

    /// Resolves the symbol to its text.  Lock-free (two atomic loads); never
    /// fails, because symbols can only be created by interning.
    pub fn as_str(self) -> &'static str {
        interner().resolve(self)
    }

    /// The raw 32-bit id (stable within a process run only).
    pub fn id(self) -> u32 {
        self.0
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::intern(&s)
    }
}

/// One lazily-allocated block of the id → text table.
type Chunk = Box<[OnceLock<&'static str>]>;

/// The process-global string → symbol table.
///
/// Not constructible outside this module — use [`interner`],
/// [`Symbol::intern`] or [`crate::Database::interner`].  A single instance
/// guarantees that every [`Symbol`] resolves in the symbol space that minted
/// it.
pub struct SymbolInterner {
    /// Text → symbol id; also the only mutable state, guarded by the lock.
    ids: RwLock<HashMap<&'static str, u32>>,
    /// Symbol id → text, as an append-only chunked table.  Slots are written
    /// exactly once (under the `ids` write lock) and read lock-free.
    chunks: Box<[OnceLock<Chunk>]>,
}

impl SymbolInterner {
    fn new() -> Self {
        SymbolInterner {
            ids: RwLock::new(HashMap::new()),
            chunks: (0..MAX_CHUNKS).map(|_| OnceLock::new()).collect(),
        }
    }

    /// Interns `text`, returning the existing symbol when the text was seen
    /// before.
    pub fn intern(&self, text: &str) -> Symbol {
        if let Some(&id) = self.ids.read().expect("interner poisoned").get(text) {
            return Symbol(id);
        }
        let mut ids = self.ids.write().expect("interner poisoned");
        // Double-check: another thread may have interned between the locks.
        if let Some(&id) = ids.get(text) {
            return Symbol(id);
        }
        let id = ids.len();
        assert!(id < CHUNK_SIZE * MAX_CHUNKS, "symbol space exhausted");
        let leaked: &'static str = Box::leak(text.to_owned().into_boxed_str());
        let chunk = self.chunks[id / CHUNK_SIZE]
            .get_or_init(|| (0..CHUNK_SIZE).map(|_| OnceLock::new()).collect());
        chunk[id % CHUNK_SIZE]
            .set(leaked)
            .expect("symbol slot written twice");
        ids.insert(leaked, id as u32);
        Symbol(id as u32)
    }

    /// Resolves a symbol to its text.  Lock-free: two `OnceLock` reads.
    pub fn resolve(&self, symbol: Symbol) -> &'static str {
        let id = symbol.0 as usize;
        self.chunks[id / CHUNK_SIZE]
            .get()
            .and_then(|chunk| chunk[id % CHUNK_SIZE].get())
            .expect("symbol was interned, so its slot is initialised")
    }

    /// Number of distinct strings interned so far.
    pub fn len(&self) -> usize {
        self.ids.read().expect("interner poisoned").len()
    }

    /// True iff nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The process-global interner used by [`Symbol::intern`] and the `Value`
/// constructors.
pub fn interner() -> &'static SymbolInterner {
    static GLOBAL: OnceLock<SymbolInterner> = OnceLock::new();
    GLOBAL.get_or_init(SymbolInterner::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("hello");
        let b = Symbol::intern("hello");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_eq!(a.as_str(), "hello");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let a = Symbol::intern("sym-a");
        let b = Symbol::intern("sym-b");
        assert_ne!(a, b);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn ordering_is_lexicographic_not_id_order() {
        // Intern in reverse lexicographic order: ids go up, order must not.
        let z = Symbol::intern("zz-order");
        let a = Symbol::intern("aa-order");
        assert!(a < z);
        assert!(z > a);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn the_global_handle_interns_and_resolves() {
        let handle = interner();
        let s = handle.intern("via-handle");
        assert_eq!(handle.resolve(s), "via-handle");
        assert!(!handle.is_empty());
        // Re-interning yields the same symbol (other tests may intern
        // concurrently, so only monotonicity of len() is observable here).
        assert_eq!(handle.intern("via-handle"), s);
        // The handle and Symbol::intern share one symbol space.
        assert_eq!(Symbol::intern("via-handle"), s);
    }

    #[test]
    fn conversions_intern() {
        let a: Symbol = "conv".into();
        let b: Symbol = String::from("conv").into();
        assert_eq!(a, b);
        assert_eq!(format!("{a}"), "conv");
        assert!(format!("{a:?}").contains("conv"));
    }

    #[test]
    fn interning_crosses_chunk_boundaries() {
        // Force allocation past the first chunk and check resolution stays
        // exact (ids are dense, so this exercises chunk 1+).
        let mut last = None;
        for i in 0..(CHUNK_SIZE + 10) {
            last = Some(Symbol::intern(&format!("chunk-test-{i}")));
        }
        let last = last.unwrap();
        assert_eq!(last.as_str(), format!("chunk-test-{}", CHUNK_SIZE + 9));
        assert!(interner().len() > CHUNK_SIZE);
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let handles: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    (0..200)
                        .map(|i| Symbol::intern(&format!("conc-{}", (i + t) % 50)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let all: Vec<Vec<Symbol>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Equal strings got equal symbols across threads.
        for row in &all {
            for s in row {
                assert!(s.as_str().starts_with("conc-"));
            }
        }
        assert_eq!(Symbol::intern("conc-0"), all[0][0]);
    }
}
