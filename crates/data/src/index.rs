//! The secondary-index subsystem: equality hash indexes on attribute
//! subsets, with lazy construction and incremental maintenance.
//!
//! An access constraint `(R, X, N, T)` of the paper promises that
//! `σ_{X=a̅}(R)` can be retrieved via an index in at most `T` time and has at
//! most `N` tuples.  Two types realise that promise physically:
//!
//! * [`HashIndex`] — a single hash index over a fixed list of key positions,
//!   mapping the projection of each tuple onto those positions to the list
//!   of tuple positions carrying that key;
//! * [`IndexPool`] — the per-relation collection of indexes.  Indexes are
//!   *declared* cheaply (an access schema can demand dozens of them) and
//!   **built lazily on first probe**; once built they are maintained
//!   incrementally through every insertion and deletion, including the
//!   deletions arriving via [`crate::Delta`] updates.
//!
//! The pool also serves *subset probes*: a probe on positions `P` that has no
//! exact index can still run through any declared index on `P' ⊆ P`, with the
//! residual `P ∖ P'` equalities applied as a post-filter by the caller — this
//! is what keeps access paths index-backed instead of scan-backed when the
//! planner binds more attributes than the access constraint requires.
//!
//! ```
//! use si_data::index::IndexPool;
//! use si_data::{tuple, Value};
//!
//! let tuples = vec![tuple![1, "a"], tuple![1, "b"], tuple![2, "c"]];
//! let mut pool = IndexPool::new();
//! pool.declare(vec![0]);                       // cheap: nothing is built yet
//! assert!(!pool.is_built(&[0]));
//! // First probe builds the index, later probes reuse it.
//! let hits = pool.lookup(&[0], &[Value::int(1)], &tuples).unwrap();
//! assert_eq!(hits, vec![0, 1]);
//! assert!(pool.is_built(&[0]));
//! ```

use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::RwLock;

/// A hash index over a fixed list of key positions of a relation.
///
/// The index stores *positions* into the owning relation's tuple vector so
/// that the relation remains the single owner of tuple storage.
#[derive(Debug, Clone, Default)]
pub struct HashIndex {
    key_positions: Vec<usize>,
    buckets: HashMap<Vec<Value>, Vec<usize>>,
}

impl HashIndex {
    /// Builds an index on `key_positions` over the given tuples.
    pub fn build(key_positions: Vec<usize>, tuples: &[Tuple]) -> Self {
        let mut index = HashIndex {
            key_positions,
            buckets: HashMap::new(),
        };
        for (pos, tuple) in tuples.iter().enumerate() {
            index.insert(pos, tuple);
        }
        index
    }

    /// The key positions this index is built on.
    pub fn key_positions(&self) -> &[usize] {
        &self.key_positions
    }

    /// Registers `tuple`, stored at `position` in the relation, in the index.
    pub fn insert(&mut self, position: usize, tuple: &Tuple) {
        let key = self.key_of(tuple);
        self.buckets.entry(key).or_default().push(position);
    }

    /// Removes the entry for `tuple` previously stored at `position`.
    ///
    /// Removing a pair that was never inserted is a no-op.
    pub fn remove(&mut self, position: usize, tuple: &Tuple) {
        let key = self.key_of(tuple);
        if let Some(bucket) = self.buckets.get_mut(&key) {
            bucket.retain(|&p| p != position);
            if bucket.is_empty() {
                self.buckets.remove(&key);
            }
        }
    }

    /// Removes the entry for `tuple` at `position` and shifts every stored
    /// position greater than `position` down by one.
    ///
    /// This is the incremental-maintenance hook for order-preserving storage
    /// ([`crate::TupleSet`]), where deleting a tuple shifts all later tuples
    /// one slot to the left.  It touches every entry once but never re-hashes
    /// a key or re-projects a tuple, unlike a full rebuild.
    pub fn remove_shifted(&mut self, position: usize, tuple: &Tuple) {
        self.remove(position, tuple);
        for bucket in self.buckets.values_mut() {
            for p in bucket.iter_mut() {
                if *p > position {
                    *p -= 1;
                }
            }
        }
    }

    /// Returns the positions of all tuples whose key equals `key`.
    pub fn lookup(&self, key: &[Value]) -> &[usize] {
        self.buckets.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of tuples matching `key` without materialising them.
    pub fn bucket_size(&self, key: &[Value]) -> usize {
        self.buckets.get(key).map(Vec::len).unwrap_or(0)
    }

    /// The largest bucket size, i.e. the smallest `N` for which the indexed
    /// relation satisfies the cardinality half of an access constraint on
    /// these key positions.
    pub fn max_bucket_size(&self) -> usize {
        self.buckets.values().map(Vec::len).max().unwrap_or(0)
    }

    /// Number of distinct keys currently present.
    pub fn distinct_keys(&self) -> usize {
        self.buckets.len()
    }

    /// Iterates over `(key, positions)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<Value>, &Vec<usize>)> {
        self.buckets.iter()
    }

    /// Extracts the key of `tuple` for this index.
    fn key_of(&self, tuple: &Tuple) -> Vec<Value> {
        self.key_positions.iter().map(|&p| tuple[p]).collect()
    }
}

/// A relation's collection of secondary indexes, keyed by their (sorted,
/// deduplicated) key positions.
///
/// The pool distinguishes **declared** from **built** indexes.  Declaring is
/// O(1) and records intent — typically every `(R, X)` an access schema
/// promises.  The physical [`HashIndex`] is built the first time a probe
/// actually needs it (paying one pass over the relation) and from then on is
/// maintained incrementally by [`IndexPool::tuple_inserted`] /
/// [`IndexPool::tuple_removed`] as the owning relation changes — including
/// changes applied through [`crate::Delta`] updates, which reach the pool via
/// the relation's insert/remove paths.
///
/// Lazy construction happens behind a shared reference (probes take `&self`),
/// so the built map sits behind an [`RwLock`]; steady-state probes only take
/// the read lock.
#[derive(Debug, Default)]
pub struct IndexPool {
    declared: BTreeSet<Vec<usize>>,
    built: RwLock<BTreeMap<Vec<usize>, HashIndex>>,
}

impl Clone for IndexPool {
    fn clone(&self) -> Self {
        IndexPool {
            declared: self.declared.clone(),
            built: RwLock::new(self.read_built().clone()),
        }
    }
}

impl IndexPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        IndexPool::default()
    }

    fn read_built(&self) -> std::sync::RwLockReadGuard<'_, BTreeMap<Vec<usize>, HashIndex>> {
        self.built.read().expect("index pool lock poisoned")
    }

    /// Declares an index on `positions` without building it.  The positions
    /// are normalised (sorted, deduplicated).  Returns `true` when the
    /// declaration was new.
    pub fn declare(&mut self, mut positions: Vec<usize>) -> bool {
        positions.sort_unstable();
        positions.dedup();
        if self.read_built().contains_key(&positions) {
            return false;
        }
        self.declared.insert(positions)
    }

    /// True iff an index on exactly `positions` was declared or built.
    pub fn is_declared(&self, positions: &[usize]) -> bool {
        let key = normalise(positions);
        self.declared.contains(&key) || self.read_built().contains_key(&key)
    }

    /// True iff the index on exactly `positions` has been materialised.
    pub fn is_built(&self, positions: &[usize]) -> bool {
        self.read_built().contains_key(&normalise(positions))
    }

    /// The normalised key positions of every declared-or-built index — what
    /// a hash-partition split re-declares on each shard so access-schema
    /// promises keep holding shard-locally.
    pub fn declared_positions(&self) -> Vec<Vec<usize>> {
        let mut keys: Vec<Vec<usize>> = self
            .declared
            .iter()
            .cloned()
            .chain(self.read_built().keys().cloned())
            .collect();
        keys.sort();
        keys.dedup();
        keys
    }

    /// Builds the index on `positions` now (declaring it if necessary).
    pub fn build_now(&mut self, positions: Vec<usize>, tuples: &[Tuple]) {
        let key = normalise(&positions);
        self.declared.remove(&key);
        let built = self.built.get_mut().expect("index pool lock poisoned");
        built
            .entry(key.clone())
            .or_insert_with(|| HashIndex::build(key, tuples));
    }

    /// Probes the index on exactly `positions` with `key`, building it first
    /// if it is declared but not yet materialised.  `key` must be aligned
    /// with the *normalised* (sorted, deduplicated) positions.  Returns the
    /// matching tuple positions, or `None` when no index on `positions` is
    /// declared.
    pub fn lookup(
        &self,
        positions: &[usize],
        key: &[Value],
        tuples: &[Tuple],
    ) -> Option<Vec<usize>> {
        let norm = normalise(positions);
        if let Some(index) = self.read_built().get(&norm) {
            return Some(index.lookup(key).to_vec());
        }
        if !self.declared.contains(&norm) {
            return None;
        }
        // First probe of a declared index: materialise it under the write
        // lock, then answer from it.
        let mut built = self.built.write().expect("index pool lock poisoned");
        let index = built
            .entry(norm.clone())
            .or_insert_with(|| HashIndex::build(norm, tuples));
        Some(index.lookup(key).to_vec())
    }

    /// The best declared-or-built index usable for a probe on `positions`:
    /// the one covering the most probe positions (ties broken towards
    /// already-built indexes, then deterministically by key).  Returns the
    /// index's normalised key positions; the caller supplies the residual
    /// `positions ∖ result` equalities as a post-filter.
    pub fn best_subset(&self, positions: &[usize]) -> Option<Vec<usize>> {
        let target: BTreeSet<usize> = positions.iter().copied().collect();
        let built = self.read_built();
        let candidates = self
            .declared
            .iter()
            .map(|k| (k, false))
            .chain(built.keys().map(|k| (k, true)));
        candidates
            .filter(|(k, _)| !k.is_empty() && k.iter().all(|p| target.contains(p)))
            .max_by(|(a, a_built), (b, b_built)| {
                (a.len(), *a_built)
                    .cmp(&(b.len(), *b_built))
                    // On ties, prefer the lexicographically smaller key (the
                    // smaller key must compare greater to win `max_by`).
                    .then_with(|| b.cmp(a))
            })
            .map(|(k, _)| k.clone())
    }

    /// Maintains every built index after `tuple` was appended at `position`.
    pub fn tuple_inserted(&mut self, position: usize, tuple: &Tuple) {
        let built = self.built.get_mut().expect("index pool lock poisoned");
        for index in built.values_mut() {
            index.insert(position, tuple);
        }
    }

    /// Maintains every built index after `tuple` was removed from `position`
    /// of an order-preserving store (later positions shift down by one).
    pub fn tuple_removed(&mut self, position: usize, tuple: &Tuple) {
        let built = self.built.get_mut().expect("index pool lock poisoned");
        for index in built.values_mut() {
            index.remove_shifted(position, tuple);
        }
    }

    /// Runs `f` over the built index on `positions`, if there is one.
    ///
    /// The closure indirection keeps the [`RwLock`] read guard from escaping;
    /// use [`IndexPool::lookup`] for plain probes.
    pub fn with_built<R>(&self, positions: &[usize], f: impl FnOnce(&HashIndex) -> R) -> Option<R> {
        self.read_built().get(&normalise(positions)).map(f)
    }

    /// Number of declared-but-unbuilt plus built indexes.
    pub fn len(&self) -> usize {
        self.declared.len() + self.read_built().len()
    }

    /// True iff nothing is declared or built.
    pub fn is_empty(&self) -> bool {
        self.declared.is_empty() && self.read_built().is_empty()
    }
}

fn normalise(positions: &[usize]) -> Vec<usize> {
    let mut key = positions.to_vec();
    key.sort_unstable();
    key.dedup();
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn friend_tuples() -> Vec<Tuple> {
        vec![
            tuple![1, 2],
            tuple![1, 3],
            tuple![2, 3],
            tuple![3, 1],
            tuple![1, 4],
        ]
    }

    #[test]
    fn build_and_lookup() {
        let tuples = friend_tuples();
        let idx = HashIndex::build(vec![0], &tuples);
        assert_eq!(idx.key_positions(), &[0]);
        assert_eq!(idx.lookup(&[Value::int(1)]), &[0, 1, 4]);
        assert_eq!(idx.lookup(&[Value::int(2)]), &[2]);
        assert_eq!(idx.lookup(&[Value::int(9)]), &[] as &[usize]);
        assert_eq!(idx.bucket_size(&[Value::int(1)]), 3);
        assert_eq!(idx.bucket_size(&[Value::int(9)]), 0);
        assert_eq!(idx.max_bucket_size(), 3);
        assert_eq!(idx.distinct_keys(), 3);
    }

    #[test]
    fn multi_attribute_keys() {
        let tuples = friend_tuples();
        let idx = HashIndex::build(vec![0, 1], &tuples);
        assert_eq!(idx.lookup(&[Value::int(1), Value::int(3)]), &[1]);
        assert_eq!(idx.max_bucket_size(), 1);
        assert_eq!(idx.distinct_keys(), 5);
    }

    #[test]
    fn empty_key_positions_bucket_everything_together() {
        let tuples = friend_tuples();
        let idx = HashIndex::build(vec![], &tuples);
        assert_eq!(idx.lookup(&[]).len(), 5);
        assert_eq!(idx.distinct_keys(), 1);
    }

    #[test]
    fn insert_and_remove_maintain_buckets() {
        let tuples = friend_tuples();
        let mut idx = HashIndex::build(vec![0], &tuples);
        idx.insert(5, &tuple![1, 9]);
        assert_eq!(idx.lookup(&[Value::int(1)]), &[0, 1, 4, 5]);
        idx.remove(1, &tuple![1, 3]);
        assert_eq!(idx.lookup(&[Value::int(1)]), &[0, 4, 5]);
        // removing an entry twice is a no-op
        idx.remove(1, &tuple![1, 3]);
        assert_eq!(idx.lookup(&[Value::int(1)]), &[0, 4, 5]);
        // removing the last entry for a key drops the bucket
        idx.remove(2, &tuple![2, 3]);
        assert_eq!(idx.lookup(&[Value::int(2)]), &[] as &[usize]);
        assert_eq!(idx.distinct_keys(), 2);
    }

    #[test]
    fn remove_shifted_mirrors_vec_removal() {
        let mut tuples = friend_tuples();
        let mut idx = HashIndex::build(vec![0], &tuples);
        // Remove the tuple at position 1 the way an ordered store would.
        let removed = tuples.remove(1);
        idx.remove_shifted(1, &removed);
        // Every remaining entry must point at the tuple it indexed.
        for (key, positions) in idx.iter() {
            for &p in positions {
                assert_eq!(&vec![tuples[p][0]], key);
            }
        }
        assert_eq!(idx.lookup(&[Value::int(1)]), &[0, 3]);
    }

    #[test]
    fn iter_exposes_all_buckets() {
        let tuples = friend_tuples();
        let idx = HashIndex::build(vec![0], &tuples);
        let total: usize = idx.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, tuples.len());
    }

    #[test]
    fn pool_builds_lazily_on_first_probe() {
        let tuples = friend_tuples();
        let mut pool = IndexPool::new();
        assert!(pool.declare(vec![0]));
        assert!(!pool.declare(vec![0]));
        assert!(pool.is_declared(&[0]));
        assert!(!pool.is_built(&[0]));
        assert_eq!(pool.len(), 1);
        let hits = pool.lookup(&[0], &[Value::int(1)], &tuples).unwrap();
        assert_eq!(hits, vec![0, 1, 4]);
        assert!(pool.is_built(&[0]));
        // Undeclared probes return None rather than scanning.
        assert!(pool.lookup(&[1], &[Value::int(3)], &tuples).is_none());
    }

    #[test]
    fn pool_maintains_built_indexes_incrementally() {
        let mut tuples = friend_tuples();
        let mut pool = IndexPool::new();
        pool.build_now(vec![0], &tuples);
        tuples.push(tuple![1, 9]);
        pool.tuple_inserted(5, &tuple![1, 9]);
        assert_eq!(
            pool.lookup(&[0], &[Value::int(1)], &tuples).unwrap(),
            vec![0, 1, 4, 5]
        );
        let removed = tuples.remove(0);
        pool.tuple_removed(0, &removed);
        assert_eq!(
            pool.lookup(&[0], &[Value::int(1)], &tuples).unwrap(),
            vec![0, 3, 4]
        );
        for p in pool.lookup(&[0], &[Value::int(2)], &tuples).unwrap() {
            assert_eq!(tuples[p][0], Value::int(2));
        }
    }

    #[test]
    fn pool_best_subset_prefers_widest_cover() {
        let mut pool = IndexPool::new();
        pool.declare(vec![0]);
        pool.declare(vec![0, 1]);
        assert_eq!(pool.best_subset(&[0, 1, 2]), Some(vec![0, 1]));
        assert_eq!(pool.best_subset(&[0, 2]), Some(vec![0]));
        assert_eq!(pool.best_subset(&[2]), None);
        // The empty-key index never serves subset probes.
        pool.declare(vec![]);
        assert_eq!(pool.best_subset(&[2]), None);
    }

    #[test]
    fn pool_clone_carries_declarations_and_builds() {
        let tuples = friend_tuples();
        let mut pool = IndexPool::new();
        pool.declare(vec![0]);
        pool.build_now(vec![1], &tuples);
        let clone = pool.clone();
        assert!(clone.is_declared(&[0]));
        assert!(clone.is_built(&[1]));
        assert!(!clone.is_empty());
        assert_eq!(clone.with_built(&[1], |idx| idx.distinct_keys()), Some(4));
        assert_eq!(clone.with_built(&[0], |idx| idx.distinct_keys()), None);
    }
}
