//! Equality hash indexes on attribute subsets.
//!
//! An access constraint `(R, X, N, T)` of the paper promises that
//! `σ_{X=a̅}(R)` can be retrieved via an index in at most `T` time and has at
//! most `N` tuples.  [`HashIndex`] is the physical structure that realises
//! the retrieval: it maps the projection of each tuple onto the key
//! positions `X` to the list of tuple positions carrying that key.

use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashMap;

/// A hash index over a fixed list of key positions of a relation.
///
/// The index stores *positions* into the owning relation's tuple vector so
/// that the relation remains the single owner of tuple storage.
#[derive(Debug, Clone, Default)]
pub struct HashIndex {
    key_positions: Vec<usize>,
    buckets: HashMap<Vec<Value>, Vec<usize>>,
}

impl HashIndex {
    /// Builds an index on `key_positions` over the given tuples.
    pub fn build(key_positions: Vec<usize>, tuples: &[Tuple]) -> Self {
        let mut index = HashIndex {
            key_positions,
            buckets: HashMap::new(),
        };
        for (pos, tuple) in tuples.iter().enumerate() {
            index.insert(pos, tuple);
        }
        index
    }

    /// The key positions this index is built on.
    pub fn key_positions(&self) -> &[usize] {
        &self.key_positions
    }

    /// Registers `tuple`, stored at `position` in the relation, in the index.
    pub fn insert(&mut self, position: usize, tuple: &Tuple) {
        let key = self.key_of(tuple);
        self.buckets.entry(key).or_default().push(position);
    }

    /// Removes the entry for `tuple` previously stored at `position`.
    ///
    /// Removing a pair that was never inserted is a no-op.
    pub fn remove(&mut self, position: usize, tuple: &Tuple) {
        let key = self.key_of(tuple);
        if let Some(bucket) = self.buckets.get_mut(&key) {
            bucket.retain(|&p| p != position);
            if bucket.is_empty() {
                self.buckets.remove(&key);
            }
        }
    }

    /// Returns the positions of all tuples whose key equals `key`.
    pub fn lookup(&self, key: &[Value]) -> &[usize] {
        self.buckets.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of tuples matching `key` without materialising them.
    pub fn bucket_size(&self, key: &[Value]) -> usize {
        self.buckets.get(key).map(Vec::len).unwrap_or(0)
    }

    /// The largest bucket size, i.e. the smallest `N` for which the indexed
    /// relation satisfies the cardinality half of an access constraint on
    /// these key positions.
    pub fn max_bucket_size(&self) -> usize {
        self.buckets.values().map(Vec::len).max().unwrap_or(0)
    }

    /// Number of distinct keys currently present.
    pub fn distinct_keys(&self) -> usize {
        self.buckets.len()
    }

    /// Iterates over `(key, positions)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<Value>, &Vec<usize>)> {
        self.buckets.iter()
    }

    /// Extracts the key of `tuple` for this index.
    fn key_of(&self, tuple: &Tuple) -> Vec<Value> {
        self.key_positions.iter().map(|&p| tuple[p]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn friend_tuples() -> Vec<Tuple> {
        vec![
            tuple![1, 2],
            tuple![1, 3],
            tuple![2, 3],
            tuple![3, 1],
            tuple![1, 4],
        ]
    }

    #[test]
    fn build_and_lookup() {
        let tuples = friend_tuples();
        let idx = HashIndex::build(vec![0], &tuples);
        assert_eq!(idx.key_positions(), &[0]);
        assert_eq!(idx.lookup(&[Value::int(1)]), &[0, 1, 4]);
        assert_eq!(idx.lookup(&[Value::int(2)]), &[2]);
        assert_eq!(idx.lookup(&[Value::int(9)]), &[] as &[usize]);
        assert_eq!(idx.bucket_size(&[Value::int(1)]), 3);
        assert_eq!(idx.bucket_size(&[Value::int(9)]), 0);
        assert_eq!(idx.max_bucket_size(), 3);
        assert_eq!(idx.distinct_keys(), 3);
    }

    #[test]
    fn multi_attribute_keys() {
        let tuples = friend_tuples();
        let idx = HashIndex::build(vec![0, 1], &tuples);
        assert_eq!(idx.lookup(&[Value::int(1), Value::int(3)]), &[1]);
        assert_eq!(idx.max_bucket_size(), 1);
        assert_eq!(idx.distinct_keys(), 5);
    }

    #[test]
    fn empty_key_positions_bucket_everything_together() {
        let tuples = friend_tuples();
        let idx = HashIndex::build(vec![], &tuples);
        assert_eq!(idx.lookup(&[]).len(), 5);
        assert_eq!(idx.distinct_keys(), 1);
    }

    #[test]
    fn insert_and_remove_maintain_buckets() {
        let tuples = friend_tuples();
        let mut idx = HashIndex::build(vec![0], &tuples);
        idx.insert(5, &tuple![1, 9]);
        assert_eq!(idx.lookup(&[Value::int(1)]), &[0, 1, 4, 5]);
        idx.remove(1, &tuple![1, 3]);
        assert_eq!(idx.lookup(&[Value::int(1)]), &[0, 4, 5]);
        // removing an entry twice is a no-op
        idx.remove(1, &tuple![1, 3]);
        assert_eq!(idx.lookup(&[Value::int(1)]), &[0, 4, 5]);
        // removing the last entry for a key drops the bucket
        idx.remove(2, &tuple![2, 3]);
        assert_eq!(idx.lookup(&[Value::int(2)]), &[] as &[usize]);
        assert_eq!(idx.distinct_keys(), 2);
    }

    #[test]
    fn iter_exposes_all_buckets() {
        let tuples = friend_tuples();
        let idx = HashIndex::build(vec![0], &tuples);
        let total: usize = idx.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, tuples.len());
    }
}
